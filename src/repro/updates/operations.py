"""Atomic update operations on binary trees (Section III / V-C).

The three operations the paper evaluates, defined on first-child/
next-sibling binary encodings:

* ``rename(t, u, σ)`` -- relabel node ``u`` (``u`` and ``σ`` non-``⊥``),
* ``insert(t, u, s)`` -- insert the encoded forest ``s`` *before* ``u``
  (formally ``t[u/s]`` if ``u`` is a null node, else ``t[u/s']`` with
  ``s' = s[v/t_u]`` for ``v`` the right-most null leaf of ``s``),
* ``delete(t, u)`` -- delete the subtree rooted at ``u``
  (``t[u/t_{u.2}]``: the next-sibling chain moves up).

These tree-level functions are the *reference semantics*: the grammar-level
updates in :mod:`repro.updates.grammar_updates` are property-tested against
them.  Operations return the (possibly new) tree root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.trees.node import Node, deep_copy, replace_node
from repro.trees.symbols import Alphabet, Symbol
from repro.trees.traversal import node_at_preorder

__all__ = [
    "UpdateError",
    "RenameOp",
    "InsertOp",
    "DeleteOp",
    "UpdateOp",
    "rename_node",
    "insert_before",
    "splice_before",
    "delete_subtree",
    "rightmost_null",
    "apply_op_to_tree",
]


class UpdateError(ValueError):
    """Raised on invalid update operations."""


@dataclass(frozen=True)
class RenameOp:
    """Relabel the node at binary preorder ``position`` to ``new_label``."""

    position: int
    new_label: str


@dataclass(frozen=True)
class InsertOp:
    """Insert the encoded forest ``fragment`` before ``position``.

    The fragment is a binary tree whose right-most leaf is ``⊥`` (as
    produced by :func:`repro.trees.binary.encode_forest`).  It is copied on
    every application, so one op can be replayed many times.
    """

    position: int
    fragment: Node


@dataclass(frozen=True)
class DeleteOp:
    """Delete the subtree rooted at binary preorder ``position``."""

    position: int


UpdateOp = Union[RenameOp, InsertOp, DeleteOp]


def rightmost_null(fragment: Node) -> Node:
    """The right-most leaf of an encoded forest (necessarily ``⊥``)."""
    current = fragment
    while current.children:
        current = current.children[-1]
    if not current.symbol.is_bottom:
        raise UpdateError(
            f"fragment's right-most leaf is {current.symbol!r}, expected ⊥"
        )
    return current


def rename_node(node: Node, new_symbol: Symbol) -> None:
    """``rename``: relabel in place; ranks must agree and ``⊥`` is immutable."""
    if node.symbol.is_bottom:
        raise UpdateError("cannot rename the empty node ⊥")
    if new_symbol.is_bottom:
        raise UpdateError("cannot rename a node to ⊥")
    if new_symbol.rank != node.symbol.rank:
        raise UpdateError(
            f"rename must preserve rank: {node.symbol!r} -> {new_symbol!r}"
        )
    node.symbol = new_symbol


def insert_before(root: Node, target: Node, fragment: Node) -> Node:
    """``insert``: splice a copied fragment before ``target``.

    Returns the (possibly new) root.
    """
    spliced = deep_copy(fragment)
    if spliced.symbol.is_bottom:
        return root  # inserting the empty forest is the identity
    return splice_before(root, target, spliced)[0]


def splice_before(
    root: Node, target: Node, spliced: Node
) -> Tuple[Node, Optional[Node]]:
    """The non-copying core of :func:`insert_before`.

    ``spliced`` (an encoded forest, consumed by this call) replaces
    ``target``; a non-``⊥`` target moves into the fragment's right-most
    null slot.  Returns ``(new_root, terminator)`` where ``terminator``
    is the fragment's right-most ``⊥`` when the target was a null node --
    i.e. the node that *replaces* the consumed ``⊥`` as the child-list
    terminator.  The batch executor threads this through so a later
    operation aimed at the same terminator (an append-append chain on one
    parent) can retarget it; for non-``⊥`` targets it is ``None`` (the
    target itself fills the slot and remains addressable).
    """
    hole = rightmost_null(spliced)
    parent = target.parent
    slot = target.child_index() if parent is not None else 0
    terminator: Optional[Node] = None
    if target.symbol.is_bottom:
        # t[u/s]: the ⊥ leaf is simply discarded; the fragment's own
        # right-most ⊥ terminates the list from now on.
        terminator = hole
    else:
        # t[u/s'] with s' = s[v/t_u]: the target subtree moves into the
        # fragment's right-most null slot.
        target.parent = None
        replace_node(hole, target)
    # Install the fragment at the target's old position.
    if parent is None:
        spliced.parent = None
        return spliced, terminator
    parent.children[slot - 1] = spliced
    spliced.parent = parent
    return root, terminator


def delete_subtree(root: Node, target: Node) -> Node:
    """``delete``: replace ``target``'s subtree by its next-sibling chain.

    Returns the (possibly new) root.  The deleted first-child chain is
    detached; callers interested in garbage (e.g. rule references inside)
    must inspect it before dropping.
    """
    if target.symbol.is_bottom:
        raise UpdateError("cannot delete the empty node ⊥")
    if target.symbol.rank != 2:
        raise UpdateError(
            f"delete needs a binary-encoded element, got {target.symbol!r}"
        )
    sibling_chain = target.children[1]
    sibling_chain.parent = None
    parent = target.parent
    if parent is None:
        return sibling_chain
    slot = target.child_index()
    target.parent = None
    parent.set_child(slot, sibling_chain)
    return root


def apply_op_to_tree(root: Node, op: UpdateOp, alphabet: Alphabet) -> Node:
    """Apply one update to a plain binary tree (reference semantics)."""
    target = node_at_preorder(root, op.position)
    if isinstance(op, RenameOp):
        rename_node(target, alphabet.terminal(op.new_label, target.symbol.rank))
        return root
    if isinstance(op, InsertOp):
        return insert_before(root, target, op.fragment)
    if isinstance(op, DeleteOp):
        return delete_subtree(root, target)
    raise UpdateError(f"unknown update operation {op!r}")
