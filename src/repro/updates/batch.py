"""Batch updates: plan many element-index operations as one program.

The paper's update algorithm isolates one derivation path per operation.
Real workloads arrive in bursts that hit nearby preorder indices, and a
per-op loop pays three times for their proximity: every operation
re-isolates (and, after an interleaved recompression, *re-inlines*) the
rule prefix the paths share, every operation dirties the start rule so
the next one recomputes the structural index's start tables, and the
automatic maintenance policy may recompress mid-burst several times.
Following FLUX's view of updates as composite programs, this module
plans a whole list of operations first and executes it in few strokes:

1. **Validate and index-adjust** (:func:`execute_batch`).  Operations
   use *sequential* semantics -- each element index is interpreted
   against the document as left by the operations before it, exactly as
   if the caller had invoked the single-op API in a loop.  The planner
   translates every index back into the coordinates of the unmodified
   document by undoing the shifts of the earlier operations: an insert
   of ``m`` elements before index *i* shifts later targets at ``>= i``
   up by ``m``; a delete at *i* removes its whole subtree's ``s``
   indices (``s`` from :meth:`GrammarIndex.element_subtree_extent`,
   adjusted for batch content that earlier operations put inside or
   took out of that subtree); an append lands at ``parent + extent``,
   *one past* the parent's subtree -- the off-the-end position that is
   exactly ``element_count`` when the parent is the last element.

2. **Group.**  A target that falls *inside* content created earlier in
   the same batch has no pre-batch coordinate; the planner then flushes
   the group collected so far and starts a new one, so the batch
   degrades gracefully to the sequential loop in the worst case and
   stays a single group on the common burst of distinct targets.

3. **Isolate the union** (:func:`~repro.updates.path_isolation.isolate_many`).
   All derivation paths of a group are resolved against the same
   unmodified grammar and replayed as one trie: shared path prefixes
   are inlined once, not once per operation.

4. **Edit the spine** (:func:`~repro.updates.grammar_updates.apply_isolated_batch`).
   Tree-level edits run in operation order against the isolated start
   rule; one ``set_rule`` ends the mutation epoch, so observers (the
   structural index, the dirty-rule recorder) see a single coherent
   change and the caller settles with a single recompression check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING, Container, Iterable, List, Optional, Sequence, Tuple,
    Union,
)

from repro.grammar.index import check_element_index
from repro.grammar.slcf import Grammar
from repro.trees.binary import encode_forest
from repro.trees.symbols import Symbol
from repro.trees.unranked import XmlNode, xml_node_count
from repro.updates.operations import UpdateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.grammar.index import GrammarIndex

__all__ = [
    "BatchRename",
    "BatchInsert",
    "BatchAppend",
    "BatchDelete",
    "BatchOp",
    "BatchStats",
    "BatchBuilder",
    "execute_batch",
]


def _normalize_content(
    content: Union[XmlNode, Sequence[XmlNode]]
) -> Tuple[XmlNode, ...]:
    """Coerce insert/append content to a validated tuple of elements."""
    siblings = (content,) if isinstance(content, XmlNode) else tuple(content)
    for item in siblings:
        if not isinstance(item, XmlNode):
            raise UpdateError(
                f"batch content must be XmlNode elements, got {item!r}"
            )
    return siblings


def _check_index(index: int, what: str) -> int:
    # Error parity with the single-op API: the shared check raises
    # TypeError for non-ints (bools included) and IndexError for negative
    # indices, exactly as GrammarIndex._locate_element does.
    return check_element_index(index, what)


class BatchRename:
    """Relabel the element at (sequential-semantics) ``index``."""

    __slots__ = ("index", "new_tag")

    def __init__(self, index: int, new_tag: str) -> None:
        self.index = _check_index(index, "rename index")
        if not isinstance(new_tag, str) or not new_tag:
            raise UpdateError(f"rename tag must be a non-empty str, got {new_tag!r}")
        self.new_tag = new_tag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchRename({self.index}, {self.new_tag!r})"


class BatchInsert:
    """Insert ``content`` before the element at ``index``."""

    __slots__ = ("index", "content")

    def __init__(
        self, index: int, content: Union[XmlNode, Sequence[XmlNode]]
    ) -> None:
        self.index = _check_index(index, "insert index")
        self.content = _normalize_content(content)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchInsert({self.index}, {list(self.content)!r})"


class BatchAppend:
    """Append ``content`` as the last children of element ``parent_index``."""

    __slots__ = ("parent_index", "content")

    def __init__(
        self, parent_index: int, content: Union[XmlNode, Sequence[XmlNode]]
    ) -> None:
        self.parent_index = _check_index(parent_index, "append parent index")
        self.content = _normalize_content(content)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchAppend({self.parent_index}, {list(self.content)!r})"


class BatchDelete:
    """Delete the element at ``index`` together with its subtree."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = _check_index(index, "delete index")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchDelete({self.index})"


BatchOp = Union[BatchRename, BatchInsert, BatchAppend, BatchDelete]


@dataclass
class BatchStats:
    """Instrumentation of one :func:`execute_batch` run.

    ``inlined_rules`` counts the rule applications the shared isolation
    actually performed; ``per_path_inlines`` what isolating every path
    separately would have performed (the sum of each path's rule
    entries) -- their difference is the amortization the batch bought.
    ``groups`` is 1 plus the number of forced flushes (a flush happens
    when an operation targets content created earlier in the batch).
    """

    operations: int = 0
    groups: int = 0
    isolations: int = 0
    inlined_rules: int = 0
    per_path_inlines: int = 0
    #: Spine rules (start rule / shards) whose bodies the batch actually
    #: rewrote, summed over groups.  With a sharded spine a clustered
    #: burst touches ~``ops / width`` shards instead of one giant RHS.
    rules_touched: int = 0
    #: Grammar epoch the batch resolved against / the epoch it published
    #: (filled in by :meth:`repro.api.CompressedXml.apply_batch`): a
    #: writer's edits are planned at ``base_epoch`` and become visible to
    #: new snapshots exactly at ``commit_epoch``.
    base_epoch: int = 0
    commit_epoch: int = 0
    #: Where the batch spent its time (seconds): planning / index
    #: adjustment, shared-path isolation, and spine edits.  The caller
    #: (``apply_batch``) adds a fourth "settle" stage -- resharding and
    #: the auto-recompression check -- to its own metrics.
    plan_seconds: float = 0.0
    isolate_seconds: float = 0.0
    apply_seconds: float = 0.0

    @property
    def inlines_saved(self) -> int:
        return self.per_path_inlines - self.inlined_rules

    def to_dict(self) -> dict:
        """Flat numeric view (the shared stats-object protocol)."""
        return {
            "operations": self.operations,
            "groups": self.groups,
            "isolations": self.isolations,
            "inlined_rules": self.inlined_rules,
            "per_path_inlines": self.per_path_inlines,
            "inlines_saved": self.inlines_saved,
            "rules_touched": self.rules_touched,
            "base_epoch": self.base_epoch,
            "commit_epoch": self.commit_epoch,
            "plan_seconds": self.plan_seconds,
            "isolate_seconds": self.isolate_seconds,
            "apply_seconds": self.apply_seconds,
        }


class BatchBuilder:
    """Collects operations for :meth:`repro.api.CompressedXml.apply_batch`.

    Returned by :meth:`CompressedXml.batch`; usable as a context manager
    (the batch is applied on a clean exit, and :attr:`stats` holds the
    resulting :class:`BatchStats`)::

        with doc.batch() as b:
            b.rename(3, "seen")
            b.append_child(3, XmlNode("mark"))
            b.delete(9)
    """

    def __init__(self, doc) -> None:
        self._doc = doc
        self._ops: List[BatchOp] = []
        self.stats: Optional[BatchStats] = None

    def rename(self, element_index: int, new_tag: str) -> "BatchBuilder":
        self._ops.append(BatchRename(element_index, new_tag))
        return self

    def insert(
        self, element_index: int, content: Union[XmlNode, Sequence[XmlNode]]
    ) -> "BatchBuilder":
        self._ops.append(BatchInsert(element_index, content))
        return self

    def append_child(
        self, parent_element_index: int, content: Union[XmlNode, Sequence[XmlNode]]
    ) -> "BatchBuilder":
        self._ops.append(BatchAppend(parent_element_index, content))
        return self

    def delete(self, element_index: int) -> "BatchBuilder":
        self._ops.append(BatchDelete(element_index))
        return self

    @property
    def operations(self) -> List[BatchOp]:
        return list(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __enter__(self) -> "BatchBuilder":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.stats = self._doc.apply_batch(self._ops)
        return False


class _Shift:
    """One earlier operation's effect on later element indices.

    ``position``/``delta`` live in the coordinates of the moment the
    operation applies (that is what later indices must be translated
    through); ``pre_anchor``/``pre_span``/``parent_pre`` are the same
    facts in pre-group coordinates, used to adjust the apply-time
    extent of later deletes and appends whose subtrees absorbed or lost
    batch content.
    """

    __slots__ = ("position", "delta", "pre_anchor", "pre_span", "parent_pre")

    def __init__(
        self,
        position: int,
        delta: int,
        pre_anchor: Optional[int] = None,
        pre_span: Optional[Tuple[int, int]] = None,
        parent_pre: Optional[int] = None,
    ) -> None:
        self.position = position
        self.delta = delta
        self.pre_anchor = pre_anchor
        self.pre_span = pre_span
        self.parent_pre = parent_pre


def _to_pre_group(index: int, records: List[_Shift]) -> Optional[int]:
    """Translate an apply-time element index to pre-group coordinates.

    Walks the earlier operations' shifts newest-first, undoing each.
    Returns ``None`` when the index denotes an element created earlier
    in the batch (it has no pre-group coordinate; the caller flushes).
    """
    current = index
    for record in reversed(records):
        if record.delta >= 0:
            if current < record.position:
                continue
            if current < record.position + record.delta:
                return None
            current -= record.delta
        else:
            if current >= record.position:
                current -= record.delta  # delta is negative: shift up
    return current


def _apply_time_extent(
    pre_position: int, pre_extent: int, records: List[_Shift]
) -> int:
    """Apply-time element count of the subtree at pre-group ``pre_position``.

    Starts from the unmodified document's extent and accounts for batch
    content earlier operations put inside the subtree (inserts anchored
    strictly within it, appends whose parent lies within it -- including
    the subtree root itself) or removed from it (deletes of nested
    subtrees).  Subtree element intervals nest or are disjoint, so a
    nested delete is recognized by its span start alone.
    """
    extent = pre_extent
    high = pre_position + pre_extent
    for record in records:
        if record.delta >= 0:
            if record.parent_pre is not None:  # append
                if pre_position <= record.parent_pre < high:
                    extent += record.delta
            elif record.pre_anchor is not None:  # insert before an element
                if pre_position < record.pre_anchor < high:
                    extent += record.delta
        elif record.pre_span is not None:  # delete of a nested subtree
            if pre_position < record.pre_span[0] < high:
                extent += record.delta  # delta is negative
    return extent


def execute_batch(
    grammar: Grammar,
    grammar_index: "GrammarIndex",
    ops: Iterable[BatchOp],
    spine: Optional[Container[Symbol]] = None,
) -> BatchStats:
    """Plan and apply a batch of element-index operations.

    Observationally equivalent to applying ``ops`` one by one through
    the single-op API (the property the batch tests pin down), including
    error behavior: an out-of-range index or a root deletion raises
    (``IndexError`` / ``UpdateError``) *after* the operations before it
    have been applied, exactly as the sequential loop would leave the
    document.
    """
    from repro.updates.grammar_updates import PlannedEdit, apply_isolated_batch

    started = time.perf_counter()
    ops = list(ops)
    for position, op in enumerate(ops):
        if not isinstance(op, (BatchRename, BatchInsert, BatchAppend, BatchDelete)):
            raise UpdateError(f"op #{position} is not a batch operation: {op!r}")
    stats = BatchStats(operations=len(ops))

    planned: List[PlannedEdit] = []
    records: List[_Shift] = []
    renamed_pre: set = set()  # pre-group positions renamed in this group
    current_count = grammar_index.element_count

    def flush() -> None:
        nonlocal current_count
        if not planned:
            return
        stats.groups += 1
        stats.isolations += len(planned)
        stats.per_path_inlines += sum(p.enter_steps for p in planned)
        timings: dict = {}
        group_started = time.perf_counter()
        inlined, touched = apply_isolated_batch(
            grammar, planned, spine=spine, timings=timings
        )
        group_elapsed = time.perf_counter() - group_started
        isolate_s = timings.get("isolate_seconds", 0.0)
        stats.isolate_seconds += isolate_s
        stats.apply_seconds += max(0.0, group_elapsed - isolate_s)
        stats.inlined_rules += inlined
        stats.rules_touched += touched
        planned.clear()
        records.clear()
        renamed_pre.clear()
        current_count = grammar_index.element_count

    for op in ops:
        if isinstance(op, BatchAppend):
            target = op.parent_index
        else:
            target = op.index
        # Apply-time validation, sequential parity: the index must be valid
        # for the document as the earlier operations leave it.
        if target >= current_count:
            flush()
            raise IndexError(
                f"element index {target} out of range "
                f"({current_count} elements at this point of the batch)"
            )
        if isinstance(op, BatchDelete) and target == 0:
            flush()
            raise UpdateError("deleting the document root is not allowed")
        if isinstance(op, BatchInsert) and target == 0:
            # Error parity with CompressedXml.insert: a sibling before
            # the document root would make the document a forest.
            flush()
            raise UpdateError(
                "inserting before the document root would create a forest"
            )

        pre = _to_pre_group(target, records)
        if pre is None:
            # The target was created earlier in this batch: it has no
            # coordinate on the unmodified document, so everything planned
            # so far is applied first and planning restarts.
            flush()
            pre = target

        if isinstance(op, BatchRename):
            position, steps = grammar_index.resolve_element(pre)
            # The single-op no-op fast path: renaming to the label the
            # element already carries plans nothing (no isolation, no
            # start-rule growth).  Only sound when no earlier rename in
            # this group targets the same element -- the resolution shows
            # pre-group labels, not the group's pending relabelings.
            current_symbol = steps[-1].node.symbol
            if (current_symbol.name == op.new_tag
                    and not current_symbol.is_bottom
                    and pre not in renamed_pre):
                continue
            renamed_pre.add(pre)
            planned.append(PlannedEdit("rename", position, steps, label=op.new_tag))
            continue

        if isinstance(op, BatchDelete):
            position, steps, pre_extent, _end = \
                grammar_index.resolve_element_with_extent(pre)
            planned.append(PlannedEdit("delete", position, steps))
            removed = _apply_time_extent(pre, pre_extent, records)
            records.append(
                _Shift(target, -removed, pre_span=(pre, pre + pre_extent))
            )
            current_count -= removed
            continue

        added = sum(xml_node_count(element) for element in op.content)
        if added == 0:
            continue  # inserting the empty forest is the identity
        fragment = encode_forest(list(op.content), grammar.alphabet)
        if isinstance(op, BatchInsert):
            position, steps = grammar_index.resolve_element(pre)
            planned.append(PlannedEdit("insert", position, steps, fragment=fragment))
            records.append(_Shift(target, added, pre_anchor=pre))
        else:  # BatchAppend: the target is the parent's child-list terminator
            _parent_pos, _parent_steps, pre_extent, position = \
                grammar_index.resolve_element_with_extent(pre)
            steps = grammar_index.resolve_preorder(position)
            planned.append(PlannedEdit("insert", position, steps, fragment=fragment))
            # The appended elements land one past the parent's subtree --
            # at apply-time index target + extent, which is exactly the
            # current element count when the parent is the last element.
            insert_at = target + _apply_time_extent(pre, pre_extent, records)
            records.append(_Shift(insert_at, added, parent_pre=pre))
        current_count += added

    flush()
    total = time.perf_counter() - started
    stats.plan_seconds = max(
        0.0, total - stats.isolate_seconds - stats.apply_seconds
    )
    return stats
