"""Update workload generation (Section V-C).

The paper's protocol: *"The sequences are obtained by starting from a given
document, and then applying the inverse of the operations until a seed
document is derived.  In this way, each update sequence starts with a seed
document and ends up with an original document"* -- 90% inserts, 10%
deletes.

:func:`generate_update_workload` implements exactly that reverse
derivation on the binary encoding; replaying the returned operations on
the seed reproduces the original document bit for bit (a property the
tests assert).  :func:`generate_rename_workload` builds Figure 6's
workload: renames of random nodes to fresh labels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.trees.node import Node, deep_copy, node_count
from repro.trees.symbols import Alphabet
from repro.trees.traversal import preorder, preorder_index_of
from repro.updates.operations import (
    DeleteOp,
    InsertOp,
    RenameOp,
    UpdateOp,
    delete_subtree,
    insert_before,
)

__all__ = [
    "UpdateWorkload",
    "generate_update_workload",
    "generate_rename_workload",
    "generate_clustered_element_ops",
]


@dataclass
class UpdateWorkload:
    """A seed tree plus the forward operation sequence.

    Replaying ``operations`` on ``seed`` (tree- or grammar-level) yields
    the document the workload was generated from.
    """

    seed: Node
    operations: List[UpdateOp] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.operations)


def _element_nodes(root: Node) -> List[Node]:
    return [n for n in preorder(root) if not n.symbol.is_bottom]


def _detached_chain_copy(node: Node, alphabet: Alphabet) -> Node:
    """Copy of ``node``'s subtree with its next-sibling slot emptied.

    This is the single-element fragment whose insertion before ``node``'s
    position inverts a deletion there.
    """
    copy = deep_copy(node)
    bottom = Node(alphabet.bottom())
    copy.set_child(2, bottom)
    return copy


def generate_update_workload(
    document: Node,
    n_updates: int,
    alphabet: Alphabet,
    insert_fraction: float = 0.9,
    rng: Optional[random.Random] = None,
    max_fragment_nodes: int = 64,
) -> UpdateWorkload:
    """Reverse-derive a workload ending at ``document``.

    ``document`` is a binary-encoded tree (it is not modified).  Working
    backwards from it, each forward *insert* is inverted by deleting a
    random element, each forward *delete* by inserting a copy of a random
    existing subtree; the forward sequence is returned reversed, with
    positions valid at forward application time.
    """
    if not 0.0 <= insert_fraction <= 1.0:
        raise ValueError("insert_fraction must be within [0, 1]")
    rng = rng or random.Random(0)
    current = deep_copy(document)
    reverse_ops: List[UpdateOp] = []

    for _ in range(n_updates):
        elements = _element_nodes(current)
        want_insert = rng.random() < insert_fraction
        non_root = [n for n in elements if n.parent is not None]
        if want_insert and non_root:
            # Forward op: insert.  Reverse: delete a random element.
            victim = rng.choice(non_root)
            position = preorder_index_of(current, victim)
            fragment = _detached_chain_copy(victim, alphabet)
            reverse_ops.append(InsertOp(position, fragment))
            current = delete_subtree(current, victim)
        else:
            # Forward op: delete.  Reverse: insert a small random fragment
            # modeled on existing content.
            source = rng.choice(elements)
            fragment = _detached_chain_copy(source, alphabet)
            if node_count(fragment) > max_fragment_nodes:
                # Too bulky: strip to a single element.
                fragment = Node(
                    source.symbol,
                    [Node(alphabet.bottom()), Node(alphabet.bottom())],
                )
            targets = list(preorder(current))
            target = rng.choice(targets[1:] or targets)
            position = preorder_index_of(current, target)
            current = insert_before(current, target, fragment)
            reverse_ops.append(DeleteOp(position))

    reverse_ops.reverse()
    return UpdateWorkload(seed=current, operations=reverse_ops)


def generate_clustered_element_ops(
    element_count: int,
    n_ops: int,
    rng: Optional[random.Random] = None,
    cluster_width: int = 200,
    tags: Tuple[str, ...] = ("a", "b", "c", "d"),
    max_delete_extent: int = 64,
):
    """A burst of element-index operations hitting nearby preorder indices.

    This is the batch-update workload (ROADMAP "Batch updates"): real
    traffic arrives in bursts whose targets cluster in document order, so
    their derivation paths share long rule prefixes -- the sharing
    :meth:`repro.api.CompressedXml.apply_batch` amortizes.  Returns a list
    of batch ops with *sequential semantics* (each index valid for the
    document as the previous ops leave it), drawn around a random cluster
    center: mostly renames, some single-element inserts and appends, a few
    deletes.

    Index validity is guaranteed without simulating the document: the
    generator tracks a conservative lower bound on the live element count
    (every delete is charged ``max_delete_extent`` elements -- the subtree
    a delete removes is not knowable from the count alone), clamps every
    index below that bound, and stops drawing deletes once the budget
    would dip near the cluster (they degrade to renames).  Documents whose
    subtrees can exceed ``max_delete_extent`` within the cluster should
    raise it -- ``apply_batch`` validates every index and fails loudly
    otherwise.
    """
    from repro.trees.unranked import XmlNode
    from repro.updates.batch import (
        BatchAppend,
        BatchDelete,
        BatchInsert,
        BatchRename,
    )

    if element_count < 3:
        raise ValueError("document too small for a clustered workload")
    rng = rng or random.Random(0)
    cluster_width = max(1, min(cluster_width, element_count - 2))
    center = rng.randint(1, max(1, element_count - cluster_width - 1))
    ops = []
    kinds = ("rename", "rename", "rename", "rename",
             "insert", "insert", "append", "append", "delete")
    safe_count = element_count  # lower bound on the live element count
    for step in range(n_ops):
        index = center + rng.randrange(cluster_width)
        index = max(1, min(index, safe_count - 1))
        kind = rng.choice(kinds)
        if kind == "delete" and \
                safe_count - max_delete_extent < cluster_width + 2:
            kind = "rename"  # delete budget exhausted: stay read-mostly
        tag = rng.choice(tags)
        if kind == "rename":
            ops.append(BatchRename(index, f"{tag}{step % 7}"))
        elif kind == "insert":
            ops.append(BatchInsert(index, XmlNode(tag)))
            safe_count += 1
        elif kind == "append":
            ops.append(BatchAppend(index, XmlNode(tag)))
            safe_count += 1
        else:
            ops.append(BatchDelete(index))
            safe_count -= max_delete_extent
    return ops


def generate_rename_workload(
    document: Node,
    n_renames: int,
    alphabet: Alphabet,
    rng: Optional[random.Random] = None,
    fresh_labels: bool = True,
) -> List[RenameOp]:
    """Figure 6's workload: rename random nodes to fresh labels.

    Renames never move nodes, so all positions are computed against the
    unchanged document structure.
    """
    rng = rng or random.Random(0)
    elements = _element_nodes(document)
    operations: List[RenameOp] = []
    for k in range(n_renames):
        victim = rng.choice(elements)
        if fresh_labels:
            label = alphabet.fresh_terminal(victim.symbol.rank, "fresh").name
        else:
            label = rng.choice(elements).symbol.name
        operations.append(
            RenameOp(preorder_index_of(document, victim), label)
        )
    return operations
