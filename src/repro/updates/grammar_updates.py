"""Updates on grammar-compressed trees (Section III / V-C).

Each operation isolates the target node into a mutable spine rule (path
isolation), applies the tree-level edit there, and garbage-collects rules
that lost their last reference.  *No recompression happens here* -- this is
the paper's "naive update"; callers interleave
:class:`repro.core.GrammarRePair` runs to keep the grammar small
(Figures 4 and 5) or decompress-and-recompress for the udc baseline.

Every operation accepts an optional shared
:class:`~repro.grammar.index.GrammarIndex`: its cached ``size(A, i)``
tables replace the per-call ``parameter_segments`` rebuild, and the
grammar's observer channel keeps the index correct across the mutations
performed here.

With a sharded spine (``spine=`` carries the shard heads of a
:class:`repro.grammar.sharding.ShardManager`), the edit lands in the
deepest shard the derivation path descends into -- only that shard's
``O(width)`` body is isolated and re-indexed, which is what keeps updates
O(depth · width) when the start rule would otherwise have grown with the
whole update history (see :mod:`repro.updates.path_isolation`).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Container, Iterable, List, Optional, Set, Tuple

from repro.grammar.navigation import PathStep, resolve_preorder_path
from repro.grammar.properties import collect_garbage
from repro.grammar.slcf import Grammar
from repro.trees.node import Node, deep_copy
from repro.trees.symbols import BOTTOM_NAME, Symbol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.grammar.index import GrammarIndex
from repro.updates.operations import (
    DeleteOp,
    InsertOp,
    RenameOp,
    UpdateError,
    UpdateOp,
    delete_subtree,
    insert_before,
    rename_node,
    rightmost_null,
    splice_before,
)
from repro.updates.path_isolation import isolate, isolate_many

__all__ = [
    "rename",
    "insert",
    "delete",
    "apply_op",
    "apply_ops",
    "PlannedEdit",
    "apply_isolated_batch",
]


def _resolve(
    grammar: Grammar,
    index: int,
    grammar_index: Optional["GrammarIndex"],
) -> List[PathStep]:
    """Derivation path to preorder ``index``: through the structural
    index's cached per-node subtree sizes when one is shared (O(depth ·
    rule-width)), else the self-contained segment walk."""
    if grammar_index is not None:
        return grammar_index.resolve_preorder(index)
    return resolve_preorder_path(grammar, index)


def rename(
    grammar: Grammar,
    index: int,
    new_label: str,
    grammar_index: Optional["GrammarIndex"] = None,
    steps: Optional[list] = None,
    spine: Optional[Container[Symbol]] = None,
) -> int:
    """Relabel the (non-``⊥``) node at preorder ``index`` of ``valG(S)``.

    Renaming a node to the label it already carries is a no-op: the target
    is located by a read-only path resolution and, when the labels
    coincide, no terminal is interned and no path isolation (i.e. no
    spine rule growth) happens at all.

    ``steps`` may carry a derivation path already resolved for ``index``
    (e.g. by :meth:`GrammarIndex.resolve_element`), saving the descent.

    Returns the number of rule inlines the isolation performed.
    """
    if steps is None:
        steps = _resolve(grammar, index, grammar_index)
    current_symbol = steps[-1].node.symbol
    if current_symbol.name == new_label and not current_symbol.is_bottom:
        return 0
    # Validate fully before mutating anything: the target and the new
    # label are both known from the read-only resolution, so every way
    # this operation can fail -- a ⊥ target, renaming *to* ⊥, an
    # alphabet rank clash on the new label -- is rejected here, and a
    # raising rename leaves the grammar exactly as it was (no isolation
    # bloat, no half-applied relabel).
    if current_symbol.is_bottom:
        raise UpdateError("cannot rename the empty node ⊥")
    if new_label == BOTTOM_NAME:
        raise UpdateError("cannot rename a node to ⊥")
    symbol = grammar.alphabet.terminal(new_label, current_symbol.rank)
    result = isolate(grammar, index, steps=steps, spine=spine)
    grammar.preserve_for_write(result.rule)
    rename_node(result.node, symbol)
    # Relabeling changes no structural count, but label censuses and
    # dirty-rule recorders listen on the observer channel and must see
    # it; isolation alone may not have notified at all when the target
    # already sat explicit in the mutated rule.  The relabel-specific
    # event lets size-only caches (GrammarIndex) keep their tables.
    grammar.notify_rule_relabeled(result.rule)
    return result.inlined_rules


def insert(
    grammar: Grammar,
    index: int,
    fragment: Node,
    grammar_index: Optional["GrammarIndex"] = None,
    steps: Optional[list] = None,
    spine: Optional[Container[Symbol]] = None,
) -> int:
    """Insert an encoded forest before the node at preorder ``index``.

    ``fragment`` must be built over the grammar's alphabet (e.g. by
    :func:`repro.trees.binary.encode_forest`); its right-most leaf must be
    ``⊥``.  The fragment is copied, so it can be reused.

    Returns the number of rule inlines the isolation performed.
    """
    # Validate the fragment before isolating (a forest root that *is* ⊥
    # passes trivially -- it splices as the identity): a malformed
    # fragment must not cost the spine rule any isolation bloat.
    rightmost_null(fragment)
    result = isolate(grammar, index, grammar_index=grammar_index,
                     steps=steps, spine=spine)
    new_root = insert_before(grammar.rhs(result.rule), result.node, fragment)
    grammar.set_rule(result.rule, new_root)
    return result.inlined_rules


def delete(
    grammar: Grammar,
    index: int,
    grammar_index: Optional["GrammarIndex"] = None,
    steps: Optional[list] = None,
    spine: Optional[Container[Symbol]] = None,
) -> int:
    """Delete the subtree rooted at the node at preorder ``index``.

    Rules referenced only from the deleted subtree are collected.
    Deleting the document root is rejected with an
    :class:`~repro.updates.operations.UpdateError` (a ``ValueError``):
    the result -- the root's next-sibling chain, i.e. a bare ``⊥`` for a
    well-formed document -- would not encode an XML document.

    Returns the number of rule inlines the isolation performed.
    """
    if steps is None:
        steps = _resolve(grammar, index, grammar_index)
    target_symbol = steps[-1].node.symbol
    # Reject undeletable targets before isolating (same errors
    # ``delete_subtree`` would raise, moved ahead of any mutation).
    if target_symbol.is_bottom:
        raise UpdateError("cannot delete the empty node ⊥")
    if target_symbol.rank != 2:
        raise UpdateError(
            f"delete needs a binary-encoded element, got {target_symbol!r}"
        )
    result = isolate(grammar, index, grammar_index=grammar_index,
                     steps=steps, spine=spine)
    target = result.node
    if index == 0 and target.children:
        # Preorder 0 is the document root; with a sharded spine its
        # terminal may sit inside a chunk shard's body (the start rule's
        # decomposition moves it there), so the root is recognized by
        # its index, not by being the start RHS root.  A preorder-0 node
        # with a real next-sibling chain is not a document root (general
        # SLCF trees) and stays deletable.
        sibling = target.children[1]
        if sibling.symbol.is_bottom:
            raise UpdateError("deleting the document root is not allowed")
    new_root = delete_subtree(grammar.rhs(result.rule), target)
    grammar.set_rule(result.rule, new_root)
    collect_garbage(grammar)
    _repair_spine_ranks(spine)
    return result.inlined_rules


def _repair_spine_ranks(spine) -> None:
    """After deletes: restore shard ranks when a delete consumed a
    chunk's continuation parameter (see
    :meth:`repro.grammar.sharding.ShardManager.repair_ranks`).  A plain
    set of shard heads (tests, direct callers) has no repair hook and is
    skipped -- only deletes that cross a shard's continuation boundary
    need it."""
    repair = getattr(spine, "repair_ranks", None)
    if repair is not None:
        repair()


class PlannedEdit:
    """One grammar-level edit of a batch group, ready for execution.

    ``steps`` is the derivation path to the target (resolved against the
    grammar *before* any of the group's mutations); ``position`` the
    target's binary preorder index, kept for diagnostics.  ``kind`` is
    ``"rename"`` (with ``label``), ``"insert"`` (with ``fragment``; an
    append is an insert targeting the parent's child-list terminator), or
    ``"delete"``.  Planning lives in :mod:`repro.updates.batch`.
    """

    __slots__ = ("kind", "position", "steps", "fragment", "label")

    def __init__(
        self,
        kind: str,
        position: int,
        steps: List[PathStep],
        fragment: Optional[Node] = None,
        label: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.position = position
        self.steps = steps
        self.fragment = fragment
        self.label = label

    @property
    def enter_steps(self) -> int:
        """Rule entries on the path: what a solo isolation would inline."""
        return sum(1 for step in self.steps if step.enters_rule)


def apply_isolated_batch(
    grammar: Grammar,
    planned: List[PlannedEdit],
    spine: Optional[Container[Symbol]] = None,
    timings: Optional[dict] = None,
) -> Tuple[int, int]:
    """Execute one batch group against the isolated spine rules.

    The union of the planned derivation paths is isolated in one pass
    (shared prefixes inlined once, see
    :func:`~repro.updates.path_isolation.isolate_many`), then the
    tree-level edits run in operation order against the explicit target
    nodes.  Node identity makes this equivalent to the sequential loop:
    a rename relabels in place, a delete splices the target's sibling
    chain up wherever the target now sits, and an insert moves the (still
    addressable) target element into its fragment's right-most null slot.
    The one target that *is* consumed by an edit -- the child-list
    terminator ``⊥`` of an append -- is threaded to later operations
    aimed at it through the replacement terminator returned by
    :func:`~repro.updates.operations.splice_before`, so append chains on
    one parent keep their order.

    Observers see one mutation epoch per *touched* spine rule: isolation
    defers all notifications, and one final ``set_rule`` per rule that
    was actually inlined into or edited reports the change (with
    ``spine`` shard heads, a burst of ``k`` clustered ops touches about
    ``k / width`` shards); garbage collection after deletes reports
    removed rules as usual.  Returns ``(rule inlines performed, spine
    rules mutated)``.
    """
    if not planned:
        return 0, 0
    isolate_started = time.perf_counter()
    iso = isolate_many(
        grammar, [edit.steps for edit in planned], spine=spine
    )
    if timings is not None:
        timings["isolate_seconds"] = time.perf_counter() - isolate_started
    roots = iso.roots
    # Rules whose bodies *structurally* changed: an inline landed in
    # them, or (tracked below) a tree-level edit does.  Shards merely
    # descended through must not fire spurious epochs.  Rules touched
    # only by renames are kept apart: the relabel already happened in
    # place on the installed body (``roots[rule]`` is the live RHS when
    # no inline replaced it), so they take the relabel-specific
    # notification -- same as the single-op path -- and size-only caches
    # (GrammarIndex) keep their structural tables instead of recomputing
    # them after every rename-only batch.
    mutated: Set[Symbol] = set(iso.mutated)
    relabeled: Set[Symbol] = set()

    def flush(error: Optional[UpdateError] = None) -> None:
        for rule in mutated:
            grammar.set_rule(rule, roots[rule])
        for rule in relabeled - mutated:
            grammar.notify_rule_relabeled(rule)
        if deleted or error is not None:
            collect_garbage(grammar)
            # Before the planner's next index descent: a delete may have
            # consumed a chunk shard's continuation parameter.
            _repair_spine_ranks(spine)
        if error is not None:
            raise error

    terminator_remap: dict = {}
    deleted = False
    for edit, target, rule in zip(planned, iso.nodes, iso.rules):
        if edit.kind == "rename":
            symbol = grammar.alphabet.terminal(edit.label, target.symbol.rank)
            if target.symbol is not symbol:
                grammar.preserve_for_write(rule)
                rename_node(target, symbol)
                relabeled.add(rule)
        elif edit.kind == "insert":
            while id(target) in terminator_remap:
                target = terminator_remap[id(target)]
            spliced = deep_copy(edit.fragment)
            if spliced.symbol.is_bottom:
                continue
            grammar.preserve_for_write(rule)
            new_root, terminator = splice_before(roots[rule], target, spliced)
            roots[rule] = new_root
            mutated.add(rule)
            if terminator is not None:
                terminator_remap[id(target)] = terminator
        elif edit.kind == "delete":
            if edit.position == 0 and target.children:
                # Preorder 0 = the document root, wherever its terminal
                # now sits (start rule or a chunk shard's body).
                sibling = target.children[1]
                if sibling.symbol.is_bottom:
                    # Unreachable through the batch planner (it rejects
                    # apply-time index 0), but keep the grammar coherent
                    # before refusing, mirroring the sequential loop's
                    # state after its earlier operations.
                    flush(UpdateError(
                        "deleting the document root is not allowed"
                    ))
            grammar.preserve_for_write(rule)
            roots[rule] = delete_subtree(roots[rule], target)
            mutated.add(rule)
            deleted = True
        else:  # pragma: no cover - planner emits only the kinds above
            raise UpdateError(f"unknown planned edit kind {edit.kind!r}")
    flush()
    return iso.inlined_rules, len(mutated | relabeled)


def apply_op(
    grammar: Grammar,
    op: UpdateOp,
    grammar_index: Optional["GrammarIndex"] = None,
) -> None:
    """Apply one :class:`~repro.updates.operations.UpdateOp`."""
    if isinstance(op, RenameOp):
        rename(grammar, op.position, op.new_label, grammar_index=grammar_index)
    elif isinstance(op, InsertOp):
        insert(grammar, op.position, op.fragment, grammar_index=grammar_index)
    elif isinstance(op, DeleteOp):
        delete(grammar, op.position, grammar_index=grammar_index)
    else:
        raise UpdateError(f"unknown update operation {op!r}")


def apply_ops(
    grammar: Grammar,
    ops: Iterable[UpdateOp],
    grammar_index: Optional["GrammarIndex"] = None,
) -> int:
    """Apply a sequence of updates; returns how many were applied."""
    count = 0
    for op in ops:
        apply_op(grammar, op, grammar_index=grammar_index)
        count += 1
    return count
