"""Updates on grammar-compressed trees (Section III / V-C).

Each operation isolates the target node into the start rule (path
isolation), applies the tree-level edit there, and garbage-collects rules
that lost their last reference.  *No recompression happens here* -- this is
the paper's "naive update"; callers interleave
:class:`repro.core.GrammarRePair` runs to keep the grammar small
(Figures 4 and 5) or decompress-and-recompress for the udc baseline.

Every operation accepts an optional shared
:class:`~repro.grammar.index.GrammarIndex`: its cached ``size(A, i)``
tables replace the per-call ``parameter_segments`` rebuild, and the
grammar's observer channel keeps the index correct across the mutations
performed here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.grammar.navigation import resolve_preorder_path
from repro.grammar.properties import collect_garbage
from repro.grammar.slcf import Grammar
from repro.trees.node import Node
from repro.trees.symbols import Symbol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.grammar.index import GrammarIndex
from repro.updates.operations import (
    DeleteOp,
    InsertOp,
    RenameOp,
    UpdateError,
    UpdateOp,
    delete_subtree,
    insert_before,
    rename_node,
)
from repro.updates.path_isolation import isolate

__all__ = [
    "rename",
    "insert",
    "delete",
    "apply_op",
    "apply_ops",
]


def rename(
    grammar: Grammar,
    index: int,
    new_label: str,
    grammar_index: Optional["GrammarIndex"] = None,
    steps: Optional[list] = None,
) -> None:
    """Relabel the (non-``⊥``) node at preorder ``index`` of ``valG(S)``.

    Renaming a node to the label it already carries is a no-op: the target
    is located by a read-only path resolution and, when the labels
    coincide, no terminal is interned and no path isolation (i.e. no start
    rule growth) happens at all.

    ``steps`` may carry a derivation path already resolved for ``index``
    (e.g. by :meth:`GrammarIndex.resolve_element`), saving the descent.
    """
    if steps is None:
        segments = (grammar_index.segments()
                    if grammar_index is not None else None)
        steps = resolve_preorder_path(grammar, index, segments=segments)
    current_symbol = steps[-1].node.symbol
    if current_symbol.name == new_label and not current_symbol.is_bottom:
        return
    target = isolate(grammar, index, steps=steps).node
    symbol = grammar.alphabet.terminal(new_label, target.symbol.rank)
    # Relabeling changes no structure and no count any index caches, so no
    # further invalidation beyond what isolate() already reported.
    rename_node(target, symbol)


def insert(
    grammar: Grammar,
    index: int,
    fragment: Node,
    grammar_index: Optional["GrammarIndex"] = None,
    steps: Optional[list] = None,
) -> None:
    """Insert an encoded forest before the node at preorder ``index``.

    ``fragment`` must be built over the grammar's alphabet (e.g. by
    :func:`repro.trees.binary.encode_forest`); its right-most leaf must be
    ``⊥``.  The fragment is copied, so it can be reused.
    """
    target = isolate(grammar, index, grammar_index=grammar_index,
                     steps=steps).node
    new_root = insert_before(grammar.rhs(grammar.start), target, fragment)
    grammar.set_rule(grammar.start, new_root)


def delete(
    grammar: Grammar,
    index: int,
    grammar_index: Optional["GrammarIndex"] = None,
    steps: Optional[list] = None,
) -> None:
    """Delete the subtree rooted at the node at preorder ``index``.

    Rules referenced only from the deleted subtree are collected.
    """
    target = isolate(grammar, index, grammar_index=grammar_index,
                     steps=steps).node
    if target is grammar.rhs(grammar.start) and target.children:
        # Deleting the document root: the tree becomes the sibling chain,
        # which for a well-formed document is just ⊥ -- refuse, as the
        # result would not encode an XML document.
        sibling = target.children[1]
        if sibling.symbol.is_bottom:
            raise UpdateError("deleting the document root is not allowed")
    new_root = delete_subtree(grammar.rhs(grammar.start), target)
    grammar.set_rule(grammar.start, new_root)
    collect_garbage(grammar)


def apply_op(
    grammar: Grammar,
    op: UpdateOp,
    grammar_index: Optional["GrammarIndex"] = None,
) -> None:
    """Apply one :class:`~repro.updates.operations.UpdateOp`."""
    if isinstance(op, RenameOp):
        rename(grammar, op.position, op.new_label, grammar_index=grammar_index)
    elif isinstance(op, InsertOp):
        insert(grammar, op.position, op.fragment, grammar_index=grammar_index)
    elif isinstance(op, DeleteOp):
        delete(grammar, op.position, grammar_index=grammar_index)
    else:
        raise UpdateError(f"unknown update operation {op!r}")


def apply_ops(
    grammar: Grammar,
    ops: Iterable[UpdateOp],
    grammar_index: Optional["GrammarIndex"] = None,
) -> int:
    """Apply a sequence of updates; returns how many were applied."""
    count = 0
    for op in ops:
        apply_op(grammar, op, grammar_index=grammar_index)
        count += 1
    return count
