"""Updates on grammar-compressed trees (Section III / V-C).

Each operation isolates the target node into the start rule (path
isolation), applies the tree-level edit there, and garbage-collects rules
that lost their last reference.  *No recompression happens here* -- this is
the paper's "naive update"; callers interleave
:class:`repro.core.GrammarRePair` runs to keep the grammar small
(Figures 4 and 5) or decompress-and-recompress for the udc baseline.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.grammar.properties import collect_garbage
from repro.grammar.slcf import Grammar
from repro.trees.node import Node
from repro.trees.symbols import Symbol
from repro.updates.operations import (
    DeleteOp,
    InsertOp,
    RenameOp,
    UpdateError,
    UpdateOp,
    delete_subtree,
    insert_before,
    rename_node,
)
from repro.updates.path_isolation import isolate

__all__ = [
    "rename",
    "insert",
    "delete",
    "apply_op",
    "apply_ops",
]


def rename(grammar: Grammar, index: int, new_label: str) -> None:
    """Relabel the (non-``⊥``) node at preorder ``index`` of ``valG(S)``."""
    target = isolate(grammar, index).node
    symbol = grammar.alphabet.terminal(new_label, target.symbol.rank)
    rename_node(target, symbol)


def insert(grammar: Grammar, index: int, fragment: Node) -> None:
    """Insert an encoded forest before the node at preorder ``index``.

    ``fragment`` must be built over the grammar's alphabet (e.g. by
    :func:`repro.trees.binary.encode_forest`); its right-most leaf must be
    ``⊥``.  The fragment is copied, so it can be reused.
    """
    target = isolate(grammar, index).node
    new_root = insert_before(grammar.rhs(grammar.start), target, fragment)
    grammar.set_rule(grammar.start, new_root)


def delete(grammar: Grammar, index: int) -> None:
    """Delete the subtree rooted at the node at preorder ``index``.

    Rules referenced only from the deleted subtree are collected.
    """
    target = isolate(grammar, index).node
    if target is grammar.rhs(grammar.start) and target.children:
        # Deleting the document root: the tree becomes the sibling chain,
        # which for a well-formed document is just ⊥ -- refuse, as the
        # result would not encode an XML document.
        sibling = target.children[1]
        if sibling.symbol.is_bottom:
            raise UpdateError("deleting the document root is not allowed")
    new_root = delete_subtree(grammar.rhs(grammar.start), target)
    grammar.set_rule(grammar.start, new_root)
    collect_garbage(grammar)


def apply_op(grammar: Grammar, op: UpdateOp) -> None:
    """Apply one :class:`~repro.updates.operations.UpdateOp`."""
    if isinstance(op, RenameOp):
        rename(grammar, op.position, op.new_label)
    elif isinstance(op, InsertOp):
        insert(grammar, op.position, op.fragment)
    elif isinstance(op, DeleteOp):
        delete(grammar, op.position)
    else:
        raise UpdateError(f"unknown update operation {op!r}")


def apply_ops(grammar: Grammar, ops: Iterable[UpdateOp]) -> int:
    """Apply a sequence of updates; returns how many were applied."""
    count = 0
    for op in ops:
        apply_op(grammar, op)
        count += 1
    return count
