"""Path isolation (Section III-A).

To update the node at preorder index ``u`` of ``valG(S)``, the grammar is
partially unfolded until a terminal node *uniquely representing* ``u`` sits
in the start rule's right-hand side.  The derivation path is found with the
precomputed ``size(A, i)`` segments (no decompression), then replayed with
one inlining per entered rule -- which yields Lemma 1:
``|iso(G, u)| <= 2 * |G|``.

Only the start rule grows; every other rule is shared and untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.grammar.derivation import inline_at
from repro.grammar.navigation import PathStep, resolve_preorder_path
from repro.grammar.properties import parameter_segments
from repro.grammar.slcf import Grammar
from repro.trees.node import Node
from repro.trees.symbols import Symbol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.grammar.index import GrammarIndex

__all__ = ["isolate", "isolate_many", "IsolationResult", "MultiIsolationResult"]


class IsolationResult:
    """Outcome of a path isolation.

    ``node`` is the now-explicit terminal node in the start rule's RHS that
    corresponds to the requested preorder index; ``inlined_rules`` counts
    the rule applications performed (at most one per rule, Lemma 1).
    """

    __slots__ = ("node", "inlined_rules")

    def __init__(self, node: Node, inlined_rules: int) -> None:
        self.node = node
        self.inlined_rules = inlined_rules


def isolate(
    grammar: Grammar,
    index: int,
    segments: Optional[Dict[Symbol, List[int]]] = None,
    grammar_index: Optional["GrammarIndex"] = None,
    steps: Optional[List[PathStep]] = None,
) -> IsolationResult:
    """Make the node at preorder ``index`` of ``valG(S)`` explicit.

    Mutates only the start rule.  Returns the isolated node, which after
    this call is a terminal node whose subtree in the start rule generates
    exactly the subtree of ``valG(S)`` rooted at the target.

    ``segments`` may be a precomputed ``parameter_segments`` table.  When a
    :class:`~repro.grammar.index.GrammarIndex` is passed instead, its lazy
    segment view is used, so nothing is rebuilt between updates.  ``steps``
    short-circuits path resolution entirely for callers that already ran
    :func:`resolve_preorder_path` (and have not mutated the grammar since).
    """
    if steps is None:
        if segments is None and grammar_index is not None:
            segments = grammar_index.segments()
        steps = resolve_preorder_path(grammar, index, segments=segments)
    inlined = 0
    # Replay: each "enter" step names a node inside the *rule template* of
    # the previously entered nonterminal; inlining copies templates, so the
    # concrete node to inline at is tracked through the copy maps.
    current: Optional[Dict[int, Node]] = None  # template id -> concrete node
    concrete_target: Optional[Node] = None
    for step in steps:
        node = step.node if current is None else current[id(step.node)]
        if not step.enters_rule:
            concrete_target = node
            break
        was_root = node is grammar.rhs(grammar.start)
        new_root, copy_map = inline_at(grammar, node)
        if was_root:
            grammar.set_rule(grammar.start, new_root)
        current = copy_map
        inlined += 1
    assert concrete_target is not None
    assert concrete_target.symbol.is_terminal
    if inlined:
        # Inlining below the RHS root splices nodes in place, bypassing
        # set_rule: tell registered indexes the start rule changed.
        grammar.notify_rule_changed(grammar.start)
    return IsolationResult(concrete_target, inlined)


class MultiIsolationResult:
    """Outcome of a multi-target isolation.

    ``nodes[i]`` is the explicit terminal node for the ``i``-th requested
    path (paths to the same target share one node); ``inlined_rules``
    counts the rule applications performed over the whole union --
    shared path prefixes are inlined exactly once; ``root`` is the
    (possibly replaced) start-rule right-hand-side root, which the caller
    must install via ``set_rule`` once its edits are applied
    (:func:`isolate_many` itself fires *no* observer notifications, so a
    batch of updates forms a single mutation epoch).
    """

    __slots__ = ("nodes", "inlined_rules", "root")

    def __init__(self, nodes: List[Node], inlined_rules: int, root: Node) -> None:
        self.nodes = nodes
        self.inlined_rules = inlined_rules
        self.root = root


def isolate_many(
    grammar: Grammar,
    paths: List[List[PathStep]],
) -> MultiIsolationResult:
    """Make the targets of many derivation paths explicit in one pass.

    ``paths`` are derivation paths resolved against the *current* grammar
    (e.g. by :meth:`GrammarIndex.resolve_element` or
    :func:`resolve_preorder_path`) -- all of them before any mutation, so
    their steps reference live template nodes.  The union of the paths is
    replayed as a trie keyed on the referenced rule-template nodes: an
    "enter" step shared by several paths is inlined exactly **once** and
    every path below it continues through the same copy map.  This is how
    a batch of updates hitting nearby preorder indices shares the rule
    inlines of their common derivation prefix instead of re-isolating it
    per operation.

    Sibling branches are independent even when one references a node
    inside another's argument subtree: :func:`inline_at` *moves* argument
    subtrees (it never copies them), so nodes referenced by other paths
    survive an adjacent inline by object identity.

    Unlike :func:`isolate`, no observer notifications are fired and the
    grammar's start rule is **not** re-installed when its root is
    replaced -- the caller applies its edits against the returned
    ``root`` and installs it with ``set_rule`` afterwards, producing one
    coherent mutation epoch for the whole batch.
    """
    root = grammar.rhs(grammar.start)
    nodes: List[Optional[Node]] = [None] * len(paths)
    inlined = 0
    # Explicit stack of trie levels: (path indices at this level, depth,
    # copy map of the inline that produced this level -- None at the top,
    # where steps reference the start RHS directly).
    stack: List[Tuple[List[int], int, Optional[Dict[int, Node]]]] = [
        (list(range(len(paths))), 0, None)
    ]
    while stack:
        indices, depth, current = stack.pop()
        # Group the paths by the template node their next step references:
        # identical targets collapse to one leaf, shared prefixes to one
        # branch (and hence one inline).
        branches: Dict[int, Tuple[PathStep, List[int]]] = {}
        for i in indices:
            step = paths[i][depth]
            node = step.node if current is None else current[id(step.node)]
            if not step.enters_rule:
                assert node.symbol.is_terminal
                nodes[i] = node
                continue
            entry = branches.get(id(step.node))
            if entry is None:
                branches[id(step.node)] = (step, [i])
            else:
                entry[1].append(i)
        for step, members in branches.values():
            node = step.node if current is None else current[id(step.node)]
            was_root = node is root
            new_root, copy_map = inline_at(grammar, node)
            if was_root:
                root = new_root
            inlined += 1
            stack.append((members, depth + 1, copy_map))
    assert all(node is not None for node in nodes)
    return MultiIsolationResult(nodes, inlined, root)
