"""Path isolation (Section III-A).

To update the node at preorder index ``u`` of ``valG(S)``, the grammar is
partially unfolded until a terminal node *uniquely representing* ``u`` sits
in the start rule's right-hand side.  The derivation path is found with the
precomputed ``size(A, i)`` segments (no decompression), then replayed with
one inlining per entered rule -- which yields Lemma 1:
``|iso(G, u)| <= 2 * |G|``.

Only the start rule grows; every other rule is shared and untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.grammar.derivation import inline_at
from repro.grammar.navigation import PathStep, resolve_preorder_path
from repro.grammar.properties import parameter_segments
from repro.grammar.slcf import Grammar
from repro.trees.node import Node
from repro.trees.symbols import Symbol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.grammar.index import GrammarIndex

__all__ = ["isolate", "IsolationResult"]


class IsolationResult:
    """Outcome of a path isolation.

    ``node`` is the now-explicit terminal node in the start rule's RHS that
    corresponds to the requested preorder index; ``inlined_rules`` counts
    the rule applications performed (at most one per rule, Lemma 1).
    """

    __slots__ = ("node", "inlined_rules")

    def __init__(self, node: Node, inlined_rules: int) -> None:
        self.node = node
        self.inlined_rules = inlined_rules


def isolate(
    grammar: Grammar,
    index: int,
    segments: Optional[Dict[Symbol, List[int]]] = None,
    grammar_index: Optional["GrammarIndex"] = None,
    steps: Optional[List[PathStep]] = None,
) -> IsolationResult:
    """Make the node at preorder ``index`` of ``valG(S)`` explicit.

    Mutates only the start rule.  Returns the isolated node, which after
    this call is a terminal node whose subtree in the start rule generates
    exactly the subtree of ``valG(S)`` rooted at the target.

    ``segments`` may be a precomputed ``parameter_segments`` table.  When a
    :class:`~repro.grammar.index.GrammarIndex` is passed instead, its lazy
    segment view is used, so nothing is rebuilt between updates.  ``steps``
    short-circuits path resolution entirely for callers that already ran
    :func:`resolve_preorder_path` (and have not mutated the grammar since).
    """
    if steps is None:
        if segments is None and grammar_index is not None:
            segments = grammar_index.segments()
        steps = resolve_preorder_path(grammar, index, segments=segments)
    inlined = 0
    # Replay: each "enter" step names a node inside the *rule template* of
    # the previously entered nonterminal; inlining copies templates, so the
    # concrete node to inline at is tracked through the copy maps.
    current: Optional[Dict[int, Node]] = None  # template id -> concrete node
    concrete_target: Optional[Node] = None
    for step in steps:
        node = step.node if current is None else current[id(step.node)]
        if not step.enters_rule:
            concrete_target = node
            break
        was_root = node is grammar.rhs(grammar.start)
        new_root, copy_map = inline_at(grammar, node)
        if was_root:
            grammar.set_rule(grammar.start, new_root)
        current = copy_map
        inlined += 1
    assert concrete_target is not None
    assert concrete_target.symbol.is_terminal
    if inlined:
        # Inlining below the RHS root splices nodes in place, bypassing
        # set_rule: tell registered indexes the start rule changed.
        grammar.notify_rule_changed(grammar.start)
    return IsolationResult(concrete_target, inlined)
