"""Path isolation (Section III-A), shard-aware.

To update the node at preorder index ``u`` of ``valG(S)``, the grammar is
partially unfolded until a terminal node *uniquely representing* ``u`` sits
in a mutable rule's right-hand side.  The derivation path is found with the
precomputed ``size(A, i)`` segments (no decompression), then replayed with
one inlining per entered rule -- which yields Lemma 1:
``|iso(G, u)| <= 2 * |G|``.

Without sharding, the mutable rule is the start rule and only it grows.
With a sharded spine (``spine=`` carries the shard heads of a
:class:`repro.grammar.sharding.ShardManager`), the replay *descends
through* shard rules instead of inlining them: a shard is referenced
exactly once, so making the target explicit inside the deepest shard on
the path is just as unique -- and only that shard's ``O(width)`` body is
rewritten, not an unboundedly grown start RHS.  Every shared
(multi-reference) rule entered below the deepest shard is inlined into
that shard's body exactly as before.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Container, Dict, List, Optional, Set, Tuple

from repro.grammar.derivation import inline_at
from repro.grammar.navigation import PathStep, resolve_preorder_path
from repro.grammar.slcf import Grammar
from repro.trees.node import Node
from repro.trees.symbols import Symbol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.grammar.index import GrammarIndex

__all__ = ["isolate", "isolate_many", "IsolationResult", "MultiIsolationResult"]


class IsolationResult:
    """Outcome of a path isolation.

    ``node`` is the now-explicit terminal node corresponding to the
    requested preorder index; ``rule`` the head of the rule whose
    right-hand side contains it -- the start rule, or the deepest shard
    the derivation path descended into; ``inlined_rules`` counts the rule
    applications performed (at most one per rule, Lemma 1).
    """

    __slots__ = ("node", "inlined_rules", "rule")

    def __init__(self, node: Node, inlined_rules: int, rule: Symbol) -> None:
        self.node = node
        self.inlined_rules = inlined_rules
        self.rule = rule


def isolate(
    grammar: Grammar,
    index: int,
    segments: Optional[Dict[Symbol, List[int]]] = None,
    grammar_index: Optional["GrammarIndex"] = None,
    steps: Optional[List[PathStep]] = None,
    spine: Optional[Container[Symbol]] = None,
) -> IsolationResult:
    """Make the node at preorder ``index`` of ``valG(S)`` explicit.

    Mutates only one spine rule: the start rule, or -- when ``spine``
    names shard heads and the path passes through them -- the deepest
    shard on the path.  Returns the isolated node, which after this call
    is a terminal node whose subtree generates exactly the subtree of
    ``valG(S)`` rooted at the target.

    ``segments`` may be a precomputed ``parameter_segments`` table.  When a
    :class:`~repro.grammar.index.GrammarIndex` is passed instead, its lazy
    segment view is used, so nothing is rebuilt between updates.  ``steps``
    short-circuits path resolution entirely for callers that already ran
    :func:`resolve_preorder_path` (and have not mutated the grammar since).
    """
    if steps is None:
        if grammar_index is not None and segments is None:
            # The index's per-node subtree sizes resolve each descent
            # step in O(rule width); the segment walk below re-derives
            # subtree sizes by walking them.
            steps = grammar_index.resolve_preorder(index)
        else:
            steps = resolve_preorder_path(grammar, index, segments=segments)
    inlined = 0
    rule = grammar.start
    # Replay: each "enter" step names a node inside the *rule template* of
    # the previously entered nonterminal; inlining copies templates, so the
    # concrete node to inline at is tracked through the copy maps.  Shard
    # entries reset the tracking: the walk continues directly on the
    # shard's own (mutable) right-hand side, no copy made.
    current: Optional[Dict[int, Node]] = None  # template id -> concrete node
    concrete_target: Optional[Node] = None
    for step in steps:
        node = step.node if current is None else current[id(step.node)]
        if not step.enters_rule:
            concrete_target = node
            break
        symbol = node.symbol
        if spine is not None and symbol in spine:
            # Descend into the shard instead of inlining it: the shard
            # is referenced exactly once, so its body is as unique a
            # place for the target as the start rule is.  All shard
            # entries precede all inlines on a resolved path (shared
            # rule bodies never reference shards), so the copy-map reset
            # is safe.
            rule = symbol
            current = None
            continue
        was_root = node is grammar.rhs(rule)
        grammar.preserve_for_write(rule)
        new_root, copy_map = inline_at(grammar, node)
        if was_root:
            grammar.set_rule(rule, new_root)
        current = copy_map
        inlined += 1
    assert concrete_target is not None
    assert concrete_target.symbol.is_terminal
    if inlined:
        # Inlining below the RHS root splices nodes in place, bypassing
        # set_rule: tell registered indexes the mutated rule changed.
        grammar.notify_rule_changed(rule)
    return IsolationResult(concrete_target, inlined, rule)


class MultiIsolationResult:
    """Outcome of a multi-target isolation.

    ``nodes[i]`` is the explicit terminal node for the ``i``-th requested
    path (paths to the same target share one node) and ``rules[i]`` the
    head of the spine rule containing it; ``inlined_rules`` counts the
    rule applications performed over the whole union -- shared path
    prefixes are inlined exactly once.  ``roots`` maps every *mutated*
    spine rule to its (possibly replaced) right-hand-side root; the
    caller must install each via ``set_rule`` once its edits are applied
    (:func:`isolate_many` itself fires *no* observer notifications, so a
    batch of updates forms one mutation epoch per touched spine rule).
    With sharding, a burst of ``k`` clustered ops touches about
    ``k / width`` shards -- each of ``O(width)`` body -- instead of one
    unboundedly grown start RHS.

    ``mutated`` lists the spine rules an inline actually rewrote (a rule
    merely descended through stays clean); ``root`` is kept as the start
    rule's root for backward compatibility.
    """

    __slots__ = ("nodes", "inlined_rules", "rules", "roots", "mutated",
                 "root")

    def __init__(
        self,
        nodes: List[Node],
        inlined_rules: int,
        rules: List[Symbol],
        roots: Dict[Symbol, Node],
        mutated: Set[Symbol],
        root: Node,
    ) -> None:
        self.nodes = nodes
        self.inlined_rules = inlined_rules
        self.rules = rules
        self.roots = roots
        self.mutated = mutated
        self.root = root


def isolate_many(
    grammar: Grammar,
    paths: List[List[PathStep]],
    spine: Optional[Container[Symbol]] = None,
) -> MultiIsolationResult:
    """Make the targets of many derivation paths explicit in one pass.

    ``paths`` are derivation paths resolved against the *current* grammar
    (e.g. by :meth:`GrammarIndex.resolve_element` or
    :func:`resolve_preorder_path`) -- all of them before any mutation, so
    their steps reference live template nodes.  The union of the paths is
    replayed as a trie keyed on the referenced rule-template nodes: an
    "enter" step shared by several paths is inlined exactly **once** and
    every path below it continues through the same copy map.  This is how
    a batch of updates hitting nearby preorder indices shares the rule
    inlines of their common derivation prefix instead of re-isolating it
    per operation.  Steps entering a ``spine`` rule (a shard) are not
    inlined at all: every path through the shard continues inside its
    right-hand side, so the trie naturally groups the batch by shard.

    Sibling branches are independent even when one references a node
    inside another's argument subtree: :func:`inline_at` *moves* argument
    subtrees (it never copies them), so nodes referenced by other paths
    survive an adjacent inline by object identity.

    Unlike :func:`isolate`, no observer notifications are fired and no
    mutated rule is re-installed when its root is replaced -- the caller
    applies its edits against the returned ``roots`` and installs them
    with ``set_rule`` afterwards, producing one coherent mutation epoch
    per touched spine rule.
    """
    nodes: List[Optional[Node]] = [None] * len(paths)
    rules: List[Optional[Symbol]] = [None] * len(paths)
    # Every spine rule whose body the replay walked; a rule appears here
    # even when, in the end, only deeper shards were mutated -- the caller
    # filters by its own edits (see ``apply_isolated_batch``).
    roots: Dict[Symbol, Node] = {grammar.start: grammar.rhs(grammar.start)}
    mutated: Set[Symbol] = set()
    inlined = 0
    # Explicit stack of trie levels: (path indices at this level, depth,
    # copy map of the inline that produced this level -- None at the top
    # of a spine rule, where steps reference its RHS directly -- and the
    # spine rule being mutated).
    stack: List[
        Tuple[List[int], int, Optional[Dict[int, Node]], Symbol]
    ] = [(list(range(len(paths))), 0, None, grammar.start)]
    while stack:
        indices, depth, current, rule = stack.pop()
        # Group the paths by the template node their next step references:
        # identical targets collapse to one leaf, shared prefixes to one
        # branch (and hence one inline).
        branches: Dict[int, Tuple[PathStep, List[int]]] = {}
        for i in indices:
            step = paths[i][depth]
            node = step.node if current is None else current[id(step.node)]
            if not step.enters_rule:
                assert node.symbol.is_terminal
                nodes[i] = node
                rules[i] = rule
                continue
            entry = branches.get(id(step.node))
            if entry is None:
                branches[id(step.node)] = (step, [i])
            else:
                entry[1].append(i)
        for step, members in branches.values():
            node = step.node if current is None else current[id(step.node)]
            symbol = node.symbol
            if spine is not None and symbol in spine:
                # Enter the shard: all members continue on its RHS.
                if symbol not in roots:
                    roots[symbol] = grammar.rhs(symbol)
                stack.append((members, depth + 1, None, symbol))
                continue
            was_root = node is roots[rule]
            grammar.preserve_for_write(rule)
            new_root, copy_map = inline_at(grammar, node)
            if was_root:
                roots[rule] = new_root
            mutated.add(rule)
            inlined += 1
            stack.append((members, depth + 1, copy_map, rule))
    assert all(node is not None for node in nodes)
    return MultiIsolationResult(
        nodes, inlined, rules, roots, mutated, roots[grammar.start]
    )
