"""The update-decompress-compress (udc) baseline (Section V-C).

The best previously known way to keep an updated grammar small: apply the
(naive) updates, *decompress the grammar to the tree*, and compress that
tree from scratch.  Decompression can be exponential in the grammar size --
the very cost GrammarRePair avoids.

Both from-scratch compressors are supported: TreeRePair (the paper's gray
line in Figure 6) and GrammarRePair applied to the tree (green boxes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.grammar_repair import GrammarRePair
from repro.grammar.derivation import DEFAULT_EXPAND_BUDGET, expand
from repro.grammar.slcf import Grammar
from repro.repair.tree_repair import TreeRePair
from repro.trees.node import Node, node_count

__all__ = ["UdcResult", "udc_recompress"]


@dataclass
class UdcResult:
    """Outcome and cost split of one udc run."""

    grammar: Grammar
    tree_nodes: int
    decompress_seconds: float
    compress_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.decompress_seconds + self.compress_seconds


def udc_recompress(
    grammar: Grammar,
    compressor: str = "tree_repair",
    kin: int = 4,
    budget: int = DEFAULT_EXPAND_BUDGET,
) -> UdcResult:
    """Decompress ``grammar`` and compress the tree from scratch.

    ``compressor`` selects the from-scratch tool: ``"tree_repair"`` or
    ``"grammar_repair"`` (GrammarRePair applied to the tree).  The input
    grammar is not modified.
    """
    started = time.perf_counter()
    tree = expand(grammar, budget=budget)
    decompressed = time.perf_counter()
    tree_nodes = node_count(tree)  # before compression mutates the tree

    if compressor == "tree_repair":
        result = TreeRePair(kin=kin).compress(
            tree, grammar.alphabet, copy_input=False
        )
    elif compressor == "grammar_repair":
        result = GrammarRePair(kin=kin).compress_tree(
            tree, grammar.alphabet, copy_input=False
        )
    else:
        raise ValueError(f"unknown compressor {compressor!r}")
    finished = time.perf_counter()

    return UdcResult(
        grammar=result,
        tree_nodes=tree_nodes,
        decompress_seconds=decompressed - started,
        compress_seconds=finished - decompressed,
    )
