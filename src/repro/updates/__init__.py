"""Updates on grammar-compressed XML: isolation, operations, workloads."""

from repro.updates.batch import (
    BatchAppend,
    BatchBuilder,
    BatchDelete,
    BatchInsert,
    BatchOp,
    BatchRename,
    BatchStats,
    execute_batch,
)
from repro.updates.grammar_updates import (
    PlannedEdit,
    apply_isolated_batch,
    apply_op,
    apply_ops,
    delete,
    insert,
    rename,
)
from repro.updates.operations import (
    DeleteOp,
    InsertOp,
    RenameOp,
    UpdateError,
    UpdateOp,
    apply_op_to_tree,
    delete_subtree,
    insert_before,
    rename_node,
    rightmost_null,
    splice_before,
)
from repro.updates.path_isolation import (
    IsolationResult,
    MultiIsolationResult,
    isolate,
    isolate_many,
)
from repro.updates.udc import UdcResult, udc_recompress
from repro.updates.workload import (
    UpdateWorkload,
    generate_rename_workload,
    generate_update_workload,
)

__all__ = [
    "rename",
    "insert",
    "delete",
    "apply_op",
    "apply_ops",
    "RenameOp",
    "InsertOp",
    "DeleteOp",
    "UpdateOp",
    "UpdateError",
    "apply_op_to_tree",
    "rename_node",
    "insert_before",
    "splice_before",
    "delete_subtree",
    "rightmost_null",
    "isolate",
    "isolate_many",
    "IsolationResult",
    "MultiIsolationResult",
    "BatchRename",
    "BatchInsert",
    "BatchAppend",
    "BatchDelete",
    "BatchOp",
    "BatchStats",
    "BatchBuilder",
    "execute_batch",
    "PlannedEdit",
    "apply_isolated_batch",
    "udc_recompress",
    "UdcResult",
    "UpdateWorkload",
    "generate_update_workload",
    "generate_rename_workload",
]
