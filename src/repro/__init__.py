"""repro -- grammar-compressed XML with incremental updates.

A from-scratch reproduction of Böttcher, Hartel, Jacobs & Maneth,
*Incremental Updates on Compressed XML* (ICDE 2016): SLCF tree grammars,
the TreeRePair and GrammarRePair compressors, path-isolation updates, and
the full experimental harness.

Typical use::

    from repro import CompressedXml

    doc = CompressedXml.from_xml("<a><b/><b/></a>")
    doc.rename(1, "c")            # relabel the first <b>
    doc.recompress()              # GrammarRePair keeps the grammar small
    print(doc.to_xml())
"""

__version__ = "1.0.0"

from repro.api import CompressedXml
from repro.core.grammar_repair import GrammarRePair, grammar_repair
from repro.grammar.slcf import Grammar
from repro.repair.tree_repair import TreeRePair, tree_repair

__all__ = [
    "CompressedXml",
    "DurableXml",
    "GrammarRePair",
    "grammar_repair",
    "TreeRePair",
    "tree_repair",
    "Grammar",
    "__version__",
]


def __getattr__(name: str):
    # Lazy: the durability layer pulls in the storage file formats, which
    # plain in-memory use never needs.
    if name == "DurableXml":
        from repro.storage.durable import DurableXml

        return DurableXml
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
