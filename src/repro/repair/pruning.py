"""The pruning phase shared by TreeRePair and GrammarRePair (Section IV-D).

A rule ``R -> tR`` is *unproductive* when

    ``savG(R) = |refG(R)| * (size(tR) - rank(R)) - size(tR) < 0``

with ``size`` counting edges.  Unproductive rules are removed by inlining.
Following TreeRePair's greedy strategy, rules referenced exactly once are
inlined first, then the grammar is scanned in anti-SL order (callees first,
so a caller's size already reflects earlier inlinings when it is judged).

Historically the setup cost one ``reference_counts`` walk, two DFS passes
for the anti-SL order, and one ``edge_count`` walk per judged rule --
O(|G|) per recompression even when nothing is prunable.
:func:`prune_grammar` therefore accepts the cached structure maps of a
:class:`repro.core.occurrence_index.GrammarOccurrenceIndex` (reference
counts, referencer sets, per-rule edge counts, topological order): with
them, pruning performs **no whole-grammar walk at all** -- inlining is
scoped to the actual referencers, and counts/sizes are maintained by
dict arithmetic exactly as the occurrence index maintains them between
rounds.  Without hints the historical self-contained walks are used.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set

from repro.grammar.derivation import inline_all_references, inline_at
from repro.grammar.properties import anti_sl_order, reference_counts
from repro.grammar.slcf import Grammar
from repro.trees.node import Node, edge_count
from repro.trees.symbols import Symbol

__all__ = ["saving", "prune_grammar"]


def saving(grammar: Grammar, head: Symbol, ref_count: int) -> int:
    """``savG(R)`` for the rule as it currently stands."""
    size = edge_count(grammar.rhs(head))
    return ref_count * (size - head.rank) - size


def _callee_histogram(rhs: Node) -> Counter:
    histogram: Counter = Counter()
    stack = [rhs]
    while stack:
        node = stack.pop()
        if node.symbol.is_nonterminal:
            histogram[node.symbol] += 1
        stack.extend(node.children)
    return histogram


def _inline_references_scoped(
    grammar: Grammar,
    nonterminal: Symbol,
    heads: Iterable[Symbol],
) -> Dict[Symbol, int]:
    """Inline ``nonterminal`` at its references inside ``heads`` only and
    drop its rule -- :func:`~repro.grammar.derivation.inline_all_references`
    without the full-grammar reference scan.  Returns the number of
    references inlined per head (for size maintenance)."""
    template = grammar.rhs(nonterminal)
    per_head: Dict[Symbol, int] = {}
    for head in heads:
        if head is nonterminal or not grammar.has_rule(head):
            continue
        rhs = grammar.rules[head]
        # Collect references first: inlining mutates the tree under us.
        targets = [
            candidate
            for candidate in _preorder(rhs)
            if candidate.symbol is nonterminal
        ]
        for target in targets:
            is_rule_root = target.parent is None
            new_root, _ = inline_at(grammar, target, rhs_override=template)
            if is_rule_root:
                grammar.set_rule(head, new_root)
        if targets:
            per_head[head] = len(targets)
            grammar.notify_rule_changed(head)
    grammar.remove_rule(nonterminal)
    return per_head


def _preorder(root: Node):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def prune_grammar(
    grammar: Grammar,
    protected: Iterable[Symbol] = (),
    counts: Optional[Dict[Symbol, int]] = None,
    order: Optional[List[Symbol]] = None,
    referencers: Optional[Dict[Symbol, Set[Symbol]]] = None,
    sizes: Optional[Dict[Symbol, int]] = None,
) -> int:
    """Remove unproductive rules by inlining; returns how many were removed.

    ``protected`` rules (besides the start rule, which is always kept) are
    never inlined away -- :class:`repro.api.CompressedXml` passes the
    spine shard heads here (a shard is referenced exactly once, which
    phase 1 would otherwise always inline).

    ``counts`` / ``order`` / ``referencers`` / ``sizes`` are the cached
    structure maps of a :class:`~repro.core.occurrence_index.GrammarOccurrenceIndex`
    (reference counts, anti-SL order, referencer sets, RHS edge counts).
    When *all four* are supplied, pruning performs no whole-grammar walks:
    counts and sizes are maintained by dict arithmetic across inlinings,
    and each inlining visits only the rules that actually reference the
    pruned head.  When any is missing, the historical self-contained
    recomputation runs instead (``TreeRePair`` and direct callers).
    """
    keep: Set[Symbol] = {grammar.start, *protected}
    hinted = (counts is not None and order is not None
              and referencers is not None and sizes is not None)
    if hinted:
        # Private copies, restricted to live rules: the maps are
        # maintained in place below.
        counts = {head: counts.get(head, 0) for head in grammar.rules}
        sizes = {head: sizes.get(head, 0) for head in grammar.rules}
        referencers = {
            symbol: set(heads) for symbol, heads in referencers.items()
        }
        order = list(order)
    else:
        counts = reference_counts(grammar)
    removed = 0

    def rule_size(head: Symbol) -> int:
        if hinted:
            return sizes[head]
        return edge_count(grammar.rhs(head))

    def inline_away(head: Symbol) -> None:
        nonlocal removed
        histogram = _callee_histogram(grammar.rhs(head))
        n = counts.pop(head)
        if n == 0:
            # Dead rule: just account for the disappearing references.
            for callee, occurrences in histogram.items():
                counts[callee] -= occurrences
            if hinted:
                for callee in histogram:
                    refs = referencers.get(callee)
                    if refs is not None:
                        refs.discard(head)
                sizes.pop(head, None)
            grammar.remove_rule(head)
        elif hinted:
            hosts = referencers.pop(head, set())
            body_edges = sizes.pop(head)
            per_head = _inline_references_scoped(grammar, head, hosts)
            # Every inlined reference replaces one reference node by the
            # body: the host gains ``body_edges - rank`` edges, and the
            # body's own references once per inline (minus the ones the
            # removed rule carried).
            for host, inlined in per_head.items():
                sizes[host] += inlined * (body_edges - head.rank)
            for callee, occurrences in histogram.items():
                counts[callee] += (n - 1) * occurrences
                refs = referencers.setdefault(callee, set())
                refs.discard(head)
                refs.update(per_head)
        else:
            inline_all_references(grammar, head)
            for callee, occurrences in histogram.items():
                counts[callee] += (n - 1) * occurrences
        removed += 1

    # Phase 0: drop rules unreachable via references (cascading).
    worklist: List[Symbol] = [
        head for head, count in counts.items()
        if count == 0 and head not in keep
    ]
    while worklist:
        head = worklist.pop()
        if not grammar.has_rule(head) or counts.get(head) != 0:
            continue
        inline_away(head)
        worklist.extend(
            callee for callee, count in counts.items()
            if count == 0 and callee not in keep and grammar.has_rule(callee)
        )

    if not hinted:
        order = anti_sl_order(grammar)

    # Phase 1: rules referenced exactly once never pay for themselves.
    for head in order:
        if head in keep or not grammar.has_rule(head):
            continue
        if counts.get(head) == 1:
            inline_away(head)

    # Phase 2: anti-SL saving scan.
    if not hinted:
        order = anti_sl_order(grammar)
    for head in order:
        if head in keep or not grammar.has_rule(head):
            continue
        size = rule_size(head)
        if counts[head] * (size - head.rank) - size < 0:
            inline_away(head)

    return removed
