"""The pruning phase shared by TreeRePair and GrammarRePair (Section IV-D).

A rule ``R -> tR`` is *unproductive* when

    ``savG(R) = |refG(R)| * (size(tR) - rank(R)) - size(tR) < 0``

with ``size`` counting edges.  Unproductive rules are removed by inlining.
Following TreeRePair's greedy strategy, rules referenced exactly once are
inlined first, then the grammar is scanned in anti-SL order (callees first,
so a caller's size already reflects earlier inlinings when it is judged).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set

from repro.grammar.derivation import inline_all_references
from repro.grammar.properties import anti_sl_order, reference_counts
from repro.grammar.slcf import Grammar
from repro.trees.node import Node, edge_count
from repro.trees.symbols import Symbol

__all__ = ["saving", "prune_grammar"]


def saving(grammar: Grammar, head: Symbol, ref_count: int) -> int:
    """``savG(R)`` for the rule as it currently stands."""
    size = edge_count(grammar.rhs(head))
    return ref_count * (size - head.rank) - size


def _callee_histogram(rhs: Node) -> Counter:
    histogram: Counter = Counter()
    stack = [rhs]
    while stack:
        node = stack.pop()
        if node.symbol.is_nonterminal:
            histogram[node.symbol] += 1
        stack.extend(node.children)
    return histogram


def prune_grammar(
    grammar: Grammar,
    protected: Iterable[Symbol] = (),
) -> int:
    """Remove unproductive rules by inlining; returns how many were removed.

    ``protected`` rules (besides the start rule, which is always kept) are
    never inlined away.
    """
    keep: Set[Symbol] = {grammar.start, *protected}
    counts: Dict[Symbol, int] = reference_counts(grammar)
    removed = 0

    def inline_away(head: Symbol) -> None:
        nonlocal removed
        histogram = _callee_histogram(grammar.rhs(head))
        n = counts.pop(head)
        if n == 0:
            # Dead rule: just account for the disappearing references.
            for callee, occurrences in histogram.items():
                counts[callee] -= occurrences
            grammar.remove_rule(head)
        else:
            inline_all_references(grammar, head)
            for callee, occurrences in histogram.items():
                counts[callee] += (n - 1) * occurrences
        removed += 1

    # Phase 0: drop rules unreachable via references (cascading).
    worklist: List[Symbol] = [
        head for head, count in counts.items()
        if count == 0 and head not in keep
    ]
    while worklist:
        head = worklist.pop()
        if not grammar.has_rule(head) or counts.get(head) != 0:
            continue
        inline_away(head)
        worklist.extend(
            callee for callee, count in counts.items()
            if count == 0 and callee not in keep and grammar.has_rule(callee)
        )

    # Phase 1: rules referenced exactly once never pay for themselves.
    for head in anti_sl_order(grammar):
        if head in keep or not grammar.has_rule(head):
            continue
        if counts.get(head) == 1:
            inline_away(head)

    # Phase 2: anti-SL saving scan.
    for head in anti_sl_order(grammar):
        if head in keep or not grammar.has_rule(head):
            continue
        if saving(grammar, head, counts[head]) < 0:
            inline_away(head)

    return removed
