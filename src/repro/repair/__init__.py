"""RePair substrate: digrams, occurrence tracking, TreeRePair, pruning."""

from repro.repair.digram import (
    Digram,
    digram_pattern,
    replace_occurrence_in_tree,
)
from repro.repair.occurrences import (
    TreeOccurrence,
    TreeOccurrenceIndex,
    count_tree_digrams,
)
from repro.repair.priority import DigramPriorityQueue
from repro.repair.pruning import prune_grammar, saving
from repro.repair.tree_repair import (
    DEFAULT_KIN,
    RePairStats,
    TreeRePair,
    tree_repair,
)

__all__ = [
    "Digram",
    "digram_pattern",
    "replace_occurrence_in_tree",
    "TreeOccurrence",
    "TreeOccurrenceIndex",
    "count_tree_digrams",
    "DigramPriorityQueue",
    "prune_grammar",
    "saving",
    "TreeRePair",
    "tree_repair",
    "RePairStats",
    "DEFAULT_KIN",
]
