"""Digrams and their replacement patterns (Section II).

A digram ``α = (a, i, b)`` denotes an edge from an ``a``-labeled node to its
``i``-th child labeled ``b``.  Its *pattern* is the tree

    ``a(y1, ..., y(i-1), b(yi, ..., y(i+n-1)), y(i+n), ..., y(m+n-1))``

for ``m = rank(a)``, ``n = rank(b)``; replacing an occurrence by a fresh
nonterminal ``X`` with rule ``X -> pattern`` is the inverse of inlining.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from repro.trees.node import Node
from repro.trees.symbols import Alphabet, Symbol, parameter_symbol

__all__ = ["Digram", "digram_pattern", "replace_occurrence_in_tree"]


class Digram(NamedTuple):
    """``(a, i, b)``: ``b`` is the ``i``-th (1-based) child of ``a``."""

    parent: Symbol
    index: int
    child: Symbol

    @property
    def rank(self) -> int:
        """Rank of the replacement nonterminal: ``rank(a) + rank(b) - 1``."""
        return self.parent.rank + self.child.rank - 1

    @property
    def is_equal_label(self) -> bool:
        """Occurrences of equal-label digrams may overlap (Section II)."""
        return self.parent is self.child

    def is_appropriate(self, kin: int, occurrence_weight: int) -> bool:
        """Appropriateness (Section II): bounded rank, >= 2 occurrences."""
        return self.rank <= kin and occurrence_weight > 1

    def sort_key(self) -> Tuple[str, int, str]:
        """Deterministic tie-break ordering for digram selection."""
        return (self.parent.name, self.index, self.child.name)

    def __repr__(self) -> str:
        return f"({self.parent.name},{self.index},{self.child.name})"


def digram_pattern(digram: Digram) -> Node:
    """Build the pattern tree ``tX`` representing ``digram``."""
    m = digram.parent.rank
    n = digram.child.rank
    i = digram.index
    if not 1 <= i <= m:
        raise ValueError(f"child index {i} out of range for rank {m}")
    inner = Node(
        digram.child,
        [Node(parameter_symbol(i + k)) for k in range(n)],
    )
    outer_children = []
    for position in range(1, m + 1):
        if position < i:
            outer_children.append(Node(parameter_symbol(position)))
        elif position == i:
            outer_children.append(inner)
        else:
            outer_children.append(Node(parameter_symbol(position + n - 1)))
    return Node(digram.parent, outer_children)


def replace_occurrence_in_tree(
    parent_node: Node,
    index: int,
    child_node: Node,
    replacement_symbol: Symbol,
) -> Node:
    """Replace one digram occurrence by an ``X``-node, as TreeRePair does.

    The new node's children are
    ``v.1, ..., v.(i-1), w.1, ..., w.rank(b), v.(i+1), ..., v.rank(a)``
    (Section IV-B).  Returns the new node; the caller must have verified
    that ``child_node`` is the ``index``-th child of ``parent_node``.
    """
    if parent_node.children[index - 1] is not child_node:
        raise ValueError("occurrence is stale: child moved away from parent")
    gathered = (
        parent_node.children[: index - 1]
        + child_node.children
        + parent_node.children[index:]
    )
    for grandchild in gathered:
        grandchild.parent = None
    replacement = Node(replacement_symbol, gathered)

    outer = parent_node.parent
    if outer is not None:
        slot = parent_node.child_index()
        parent_node.parent = None
        outer.set_child(slot, replacement)
    return replacement
