"""Digram occurrence tracking on plain trees.

TreeRePair needs, at every round, the most frequent digram together with a
maximal set of non-overlapping occurrences.  :class:`TreeOccurrenceIndex`
maintains exactly that *incrementally*: the initial postorder count is done
once, and each replacement only touches the occurrences overlapping the
replaced edge (Section IV-C: "only the occurrences that overlap with an
occurrence of the replaced digram have to be adapted").

Occurrences are keyed by their child node (its parent in the tree is
unique, Section IV-A).  Overlap -- possible only for equal-label digrams --
is suppressed greedily with a per-digram set of nodes already claimed by a
stored occurrence.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, NamedTuple, Optional, Set, Tuple

from repro.repair.digram import Digram
from repro.repair.priority import DigramPriorityQueue
from repro.trees.node import Node

__all__ = ["TreeOccurrence", "TreeOccurrenceIndex", "count_tree_digrams"]


class TreeOccurrence(NamedTuple):
    """One stored occurrence ``(v, i, w)``."""

    parent: Node
    index: int
    child: Node


class TreeOccurrenceIndex:
    """Mutable digram -> occurrence-list index over one working tree."""

    def __init__(self) -> None:
        # digram -> {id(child node) -> occurrence}
        self._lists: Dict[Digram, Dict[int, TreeOccurrence]] = {}
        # digram -> ids of nodes claimed by stored occurrences (equal-label
        # digrams only; disjointness makes a flat set sufficient).
        self._claimed: Dict[Digram, Set[int]] = {}
        self.queue = DigramPriorityQueue()

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, root: Node) -> "TreeOccurrenceIndex":
        """Initial count: postorder, bottom-up greedy (Section IV-A)."""
        index = cls()
        # Postorder = reversed right-to-left preorder.
        order: List[Node] = []
        stack = [root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(node.children)
        for node in reversed(order):
            parent = node.parent
            if parent is None:
                continue
            index.add(parent, node.child_index(), node)
        return index

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, parent: Node, child_index: int, child: Node) -> bool:
        """Register the edge ``(parent, i, child)``; returns True if stored.

        Equal-label occurrences overlapping an already stored occurrence of
        the same digram are suppressed.
        """
        digram = Digram(parent.symbol, child_index, child.symbol)
        if digram.is_equal_label:
            claimed = self._claimed.setdefault(digram, set())
            if id(parent) in claimed or id(child) in claimed:
                return False
            claimed.add(id(parent))
            claimed.add(id(child))
        occurrences = self._lists.setdefault(digram, {})
        occurrences[id(child)] = TreeOccurrence(parent, child_index, child)
        self.queue.update(digram, len(occurrences))
        return True

    def remove_edge(self, parent: Node, child: Node) -> None:
        """Forget the occurrence whose child is ``child``, if stored.

        The child's position is recovered from the stored occurrence rather
        than the (possibly already mutated) tree, so removal stays correct
        mid-replacement.
        """
        for child_index in range(1, parent.symbol.rank + 1):
            candidate = Digram(parent.symbol, child_index, child.symbol)
            occurrences = self._lists.get(candidate)
            if not occurrences:
                continue
            occurrence = occurrences.get(id(child))
            if occurrence is None or occurrence.parent is not parent:
                continue
            del occurrences[id(child)]
            if candidate.is_equal_label:
                claimed = self._claimed.get(candidate)
                if claimed is not None:
                    claimed.discard(id(occurrence.parent))
                    claimed.discard(id(occurrence.child))
            self.queue.update(candidate, len(occurrences))
            return

    def drop_digram(self, digram: Digram) -> None:
        """Delete a digram's whole list (after its replacement round)."""
        self._lists.pop(digram, None)
        self._claimed.pop(digram, None)
        self.queue.update(digram, 0)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def occurrences(self, digram: Digram) -> List[TreeOccurrence]:
        """Stored occurrences in insertion order."""
        return list(self._lists.get(digram, {}).values())

    def count(self, digram: Digram) -> int:
        return len(self._lists.get(digram, {}))

    def digrams(self) -> Iterator[Tuple[Digram, int]]:
        for digram, occurrences in self._lists.items():
            if occurrences:
                yield digram, len(occurrences)

    def best(self, kin: int) -> Optional[Tuple[Digram, int]]:
        """Most frequent appropriate digram, deterministic tie-break."""
        return self.queue.pop_best(
            lambda digram, weight: digram.is_appropriate(kin, weight)
        )


def count_tree_digrams(root: Node) -> Dict[Digram, List[TreeOccurrence]]:
    """One-shot digram census of a tree (reference implementation).

    Used by tests to cross-check the incremental index and by the
    ``recount`` compression strategy.
    """
    index = TreeOccurrenceIndex.build(root)
    return {digram: index.occurrences(digram) for digram, _ in index.digrams()}
