"""TreeRePair: RePair compression of a ranked tree into an SLCF grammar.

This is the baseline the paper compares against (Lohrey, Maneth & Mennicke
[3]), reimplemented from its description:

1. count maximal non-overlapping digram occurrence sets bottom-up,
2. repeatedly replace a most frequent *appropriate* digram (rank bounded by
   ``kin``, at least two occurrences) by a fresh nonterminal,
3. update the occurrence lists around every replacement (incrementally --
   only edges overlapping the replaced one change),
4. prune unproductive rules.

The ``recount`` strategy re-counts from scratch after every round instead of
step 3; it is the obviously-correct reference implementation against which
the incremental strategy is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.grammar.slcf import Grammar
from repro.repair.digram import Digram, digram_pattern, replace_occurrence_in_tree
from repro.repair.occurrences import TreeOccurrenceIndex
from repro.repair.pruning import prune_grammar
from repro.trees.node import Node, deep_copy
from repro.trees.symbols import Alphabet

__all__ = ["TreeRePair", "RePairStats", "DEFAULT_KIN"]

#: TreeRePair's default bound on the rank of replacement nonterminals.
DEFAULT_KIN = 4


@dataclass
class RePairStats:
    """Bookkeeping of one compression run."""

    rounds: int = 0
    replaced_occurrences: int = 0
    rules_created: int = 0
    rules_pruned: int = 0
    max_intermediate_size: int = 0
    final_size: int = 0

    @property
    def blow_up(self) -> float:
        """Figure 2's measure: max intermediate size over final size."""
        if self.final_size == 0:
            return 1.0
        return self.max_intermediate_size / self.final_size


class TreeRePair:
    """Configurable TreeRePair compressor.

    Parameters
    ----------
    kin:
        Maximum rank of replacement nonterminals (the paper's ``kin``).
    prune:
        Run the pruning phase at the end (Section IV-D).
    strategy:
        ``"incremental"`` (default) maintains occurrence lists across
        rounds; ``"recount"`` rebuilds them after every round.
    rule_prefix:
        Name prefix for the fresh nonterminals.
    """

    def __init__(
        self,
        kin: int = DEFAULT_KIN,
        prune: bool = True,
        strategy: str = "incremental",
        rule_prefix: str = "X",
    ) -> None:
        if strategy not in ("incremental", "recount"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.kin = kin
        self.prune = prune
        self.strategy = strategy
        self.rule_prefix = rule_prefix
        self.stats = RePairStats()

    # ------------------------------------------------------------------
    def compress(
        self,
        root: Node,
        alphabet: Alphabet,
        copy_input: bool = True,
        start_name: str = "S",
    ) -> Grammar:
        """Compress ``root`` into a grammar with ``valG(S) == root``."""
        self.stats = RePairStats()
        working = deep_copy(root) if copy_input else root
        grammar = Grammar.from_tree(working, alphabet, start_name=start_name)
        if self.strategy == "incremental":
            working = self._run_incremental(grammar, working)
        else:
            working = self._run_recount(grammar, working)
        grammar.set_rule(grammar.start, working)
        if self.prune:
            self.stats.rules_pruned = prune_grammar(grammar)
        self.stats.final_size = grammar.size
        self.stats.max_intermediate_size = max(
            self.stats.max_intermediate_size, grammar.size
        )
        return grammar

    # ------------------------------------------------------------------
    def _record_size(self, grammar: Grammar, working: Node) -> None:
        # ``working`` is the start RHS; it is kept outside the grammar dict
        # during compression, so measure it explicitly.
        from repro.trees.node import edge_count

        size = edge_count(working) + sum(
            edge_count(rhs)
            for head, rhs in grammar.rules.items()
            if head is not grammar.start
        )
        if size > self.stats.max_intermediate_size:
            self.stats.max_intermediate_size = size

    def _run_incremental(self, grammar: Grammar, working: Node) -> Node:
        index = TreeOccurrenceIndex.build(working)
        root_holder = [working]
        while True:
            best = index.best(self.kin)
            if best is None:
                break
            digram, _weight = best
            occurrences = index.occurrences(digram)
            if len(occurrences) < 2:
                index.drop_digram(digram)
                continue
            replacement = grammar.alphabet.fresh_nonterminal(
                digram.rank, self.rule_prefix
            )
            for occurrence in occurrences:
                self._replace_with_context_update(
                    index, occurrence, replacement, root_holder
                )
            grammar.set_rule(replacement, digram_pattern(digram))
            index.drop_digram(digram)
            self.stats.rounds += 1
            self.stats.rules_created += 1
            self.stats.replaced_occurrences += len(occurrences)
            self._record_size(grammar, root_holder[0])
        return root_holder[0]

    def _replace_with_context_update(
        self,
        index: TreeOccurrenceIndex,
        occurrence,
        replacement,
        root_holder: List[Node],
    ) -> None:
        parent_node, child_index, child_node = occurrence
        outer = parent_node.parent
        # 1. Remove every occurrence overlapping the replaced edge: the edge
        #    above v, the edges below v (including the replaced one), and
        #    the edges below w (Section IV-C).
        if outer is not None:
            index.remove_edge(outer, parent_node)
        for c in parent_node.children:
            index.remove_edge(parent_node, c)
        for c in child_node.children:
            index.remove_edge(child_node, c)
        # 2. Splice in the X-node.
        x = replace_occurrence_in_tree(
            parent_node, child_index, child_node, replacement
        )
        if outer is None:
            root_holder[0] = x
        else:
            index.add(outer, x.child_index(), x)
        # 3. Register the new context digrams.
        for position, c in enumerate(x.children, start=1):
            index.add(x, position, c)

    def _run_recount(self, grammar: Grammar, working: Node) -> Node:
        root_holder = [working]
        while True:
            index = TreeOccurrenceIndex.build(root_holder[0])
            best = index.best(self.kin)
            if best is None:
                break
            digram, _weight = best
            occurrences = index.occurrences(digram)
            if len(occurrences) < 2:
                break
            replacement = grammar.alphabet.fresh_nonterminal(
                digram.rank, self.rule_prefix
            )
            for occurrence in occurrences:
                parent_node, child_index, child_node = occurrence
                x = replace_occurrence_in_tree(
                    parent_node, child_index, child_node, replacement
                )
                if parent_node is root_holder[0]:
                    root_holder[0] = x
            grammar.set_rule(replacement, digram_pattern(digram))
            self.stats.rounds += 1
            self.stats.rules_created += 1
            self.stats.replaced_occurrences += len(occurrences)
            self._record_size(grammar, root_holder[0])
        return root_holder[0]


def tree_repair(
    root: Node,
    alphabet: Alphabet,
    kin: int = DEFAULT_KIN,
    prune: bool = True,
    strategy: str = "incremental",
) -> Grammar:
    """Convenience wrapper: compress a tree with default settings."""
    return TreeRePair(kin=kin, prune=prune, strategy=strategy).compress(
        root, alphabet
    )
