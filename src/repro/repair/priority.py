"""Lazy max-priority queue over digram weights.

RePair repeatedly asks for the currently most frequent digram while weights
change after every replacement.  A binary heap with *lazy invalidation*
gives O(log n) updates: every weight change pushes a fresh entry; stale
entries are discarded at pop time by checking them against the live weight
table.  (Larsson & Moffat's √n bucket queue achieves the same effect for
strings; a lazy heap is the idiomatic Python equivalent.)
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.repair.digram import Digram

__all__ = ["DigramPriorityQueue"]


class DigramPriorityQueue:
    """Max-queue of digrams keyed by weight with deterministic tie-breaks."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, Tuple[str, int, str], Digram]] = []
        self._weights: Dict[Digram, int] = {}

    def update(self, digram: Digram, weight: int) -> None:
        """Record ``digram``'s current weight (0 removes it)."""
        if weight <= 0:
            self._weights.pop(digram, None)
            return
        self._weights[digram] = weight
        heapq.heappush(self._heap, (-weight, digram.sort_key(), digram))

    def weight(self, digram: Digram) -> int:
        return self._weights.get(digram, 0)

    def pop_best(
        self,
        accept: Optional[Callable[[Digram, int], bool]] = None,
    ) -> Optional[Tuple[Digram, int]]:
        """Return the heaviest digram accepted by ``accept`` (or ``None``).

        Rejected digrams are *not* reinserted: RePair never replaces a
        digram it has rejected (its weight can only decrease by replacing
        overlapping digrams, which pushes fresh entries anyway).  Stale
        heap entries are discarded.
        """
        while self._heap:
            negated, _key, digram = heapq.heappop(self._heap)
            current = self._weights.get(digram)
            if current is None or current != -negated:
                continue  # stale entry
            if accept is not None and not accept(digram, current):
                continue
            del self._weights[digram]
            return digram, current
        return None

    def __len__(self) -> int:
        return len(self._weights)
