"""Lazy max-priority queue over digram weights.

RePair repeatedly asks for the currently most frequent digram while weights
change after every replacement.  A binary heap with *lazy invalidation*
gives O(log n) updates: every weight change pushes a fresh entry; stale
entries are discarded at pop time by checking them against the live weight
table.  (Larsson & Moffat's √n bucket queue achieves the same effect for
strings; a lazy heap is the idiomatic Python equivalent.)
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.repair.digram import Digram

__all__ = ["DigramPriorityQueue"]


class DigramPriorityQueue:
    """Max-queue of digrams keyed by weight with deterministic tie-breaks."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, Tuple[str, int, str], Digram]] = []
        self._weights: Dict[Digram, int] = {}

    def update(self, digram: Digram, weight: int) -> None:
        """Record ``digram``'s current weight (0 removes it).

        Weights below 2 are recorded but not queued: no RePair consumer
        ever accepts a digram with fewer than two occurrences, and the
        long tail of singletons would otherwise dominate the heap.  A
        later update that lifts the weight to >= 2 queues it as usual.
        """
        if weight <= 0:
            self._weights.pop(digram, None)
            return
        self._weights[digram] = weight
        if weight > 1:
            heapq.heappush(self._heap, (-weight, digram.sort_key(), digram))

    def weight(self, digram: Digram) -> int:
        return self._weights.get(digram, 0)

    def pop_best(
        self,
        accept: Optional[Callable[[Digram, int], bool]] = None,
    ) -> Optional[Tuple[Digram, int]]:
        """Return the heaviest digram accepted by ``accept`` (or ``None``).

        Rejected digrams are *not* reinserted: RePair never replaces a
        digram it has rejected (its weight can only decrease by replacing
        overlapping digrams, which pushes fresh entries anyway).  Stale
        heap entries are discarded.
        """
        while self._heap:
            negated, _key, digram = heapq.heappop(self._heap)
            current = self._weights.get(digram)
            if current is None or current != -negated:
                continue  # stale entry
            if accept is not None and not accept(digram, current):
                continue
            del self._weights[digram]
            return digram, current
        return None

    def peek_best(
        self,
        accept: Optional[Callable[[Digram, int], bool]] = None,
    ) -> Optional[Tuple[Digram, int]]:
        """Like :meth:`pop_best`, but non-destructive.

        Live entries rejected by ``accept`` are reinserted (a later call
        with a different predicate may accept them), stale entries are
        discarded permanently, and the winner stays in the queue.  This is
        what makes the queue usable for one-shot tables whose callers vary
        the acceptance condition (``skip`` sets) between calls.
        """
        rejected: List[Tuple[int, Tuple[str, int, str], Digram]] = []
        found: Optional[Tuple[Digram, int]] = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            negated, _key, digram = entry
            current = self._weights.get(digram)
            if current is None or current != -negated:
                continue  # stale entry
            if accept is not None and not accept(digram, current):
                rejected.append(entry)
                continue
            found = (digram, current)
            rejected.append(entry)  # keep the winner queued
            break
        for entry in rejected:
            heapq.heappush(self._heap, entry)
        return found

    def __len__(self) -> int:
        return len(self._weights)
