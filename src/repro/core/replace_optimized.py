"""Optimized digram replacement (Algorithms 6-8).

Instead of inlining whole rules, the replacement maintains *rule versions*
``Q^F`` per isolation flag set ``F ⊆ {r, y1, y2, ...}``:

* ``r`` -- the version's root must be made an explicit terminal (a caller's
  generator resolves its tree *child* through this rule's root),
* ``yi`` -- the parent of parameter ``yi`` must be explicit (a caller's
  generator resolves its tree *parent* through ``yi``).

Versions are built lazily from the already-replaced original rule, marking
the isolated nodes, and *exporting* every maximal connected fragment of
unmarked non-parameter nodes into a fresh rule (Algorithm 8, the paper's
"lemma generation").  Inlining a version therefore copies only the marked
skeleton plus references to shared fragment rules -- this is what keeps the
intermediate grammar small (Figure 3's optimized curve).

The ReplacementDAG of the paper is realized implicitly: ``_version`` is
memoized on ``(symbol, flags)`` and recurses into sub-versions exactly
along the DAG's edges, while the driver visits the rules containing
occurrence generators bottom-up.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.core.retrieve import GrammarOccurrence
from repro.core.rewrite import inline_node, replace_digram_in_rule
from repro.grammar.derivation import inline_at
from repro.grammar.properties import anti_sl_order, reference_counts
from repro.grammar.slcf import Grammar
from repro.repair.digram import Digram, replace_occurrence_in_tree
from repro.trees.node import Node, deep_copy_with_map
from repro.trees.symbols import Symbol

__all__ = ["replace_all_occurrences_optimized", "OptimizedReplacer"]

#: Flag values: the root flag, or a parameter index.
Flag = Union[str, int]
ROOT_FLAG = "r"


class OptimizedReplacer:
    """One digram-replacement round with version/export optimization."""

    def __init__(
        self,
        grammar: Grammar,
        digram: Digram,
        replacement: Symbol,
        occurrences: Sequence[GrammarOccurrence],
        opaque: Set[Symbol],
        export_prefix: str = "F",
        ref_counts: Optional[Dict[Symbol, int]] = None,
        rule_order: Optional[Sequence[Symbol]] = None,
    ) -> None:
        self.grammar = grammar
        self.digram = digram
        self.replacement = replacement
        self.opaque = opaque
        self.export_prefix = export_prefix
        # Rules whose installed right-hand sides this round mutated or
        # created -- the explicit edge-delta report consumed by the
        # incremental occurrence index (and cross-checked in tests against
        # the grammar's observer channel).
        self.touched_rules: Set[Symbol] = set()
        # Per rule: the mutations performed, in order, as tagged events --
        # ("edge", v, i, w, x) for an intra-rule replacement,
        # ("inline", n, copy_root, argument_roots) for a version inlined
        # at node ``n``.  Both deltas are local (O(edit), not O(|rule|)),
        # so the occurrence index can adapt such rules without a rescan;
        # rules rewritten non-locally (fragment export) land in
        # ``needs_rescan`` instead.
        self.event_log: Dict[Symbol, List] = {}
        self.needs_rescan: Set[Symbol] = set()
        self.occ_by_rule: Dict[Symbol, List[GrammarOccurrence]] = {}
        for occurrence in occurrences:
            self.occ_by_rule.setdefault(occurrence.rule, []).append(occurrence)
        # Marks are keyed by id() but must hold the node objects too:
        # a bare id-set would misfire when a dead node's address is reused
        # by a fresh allocation within the same round.
        self.marked: Dict[int, Node] = {}
        self.versions: Dict[Tuple[Symbol, FrozenSet[Flag]], Node] = {}
        self.export_cache: Dict[str, Symbol] = {}
        # Round-start |refG| snapshot: computed here unless the caller
        # already maintains it (the incremental occurrence index does).
        self.ref_counts = (
            reference_counts(grammar) if ref_counts is None else ref_counts
        )
        # Bottom-up order of the rules containing occurrences; callers
        # with a cached call graph pass it in, otherwise the full anti-SL
        # order is computed on demand in run().
        self.rule_order = rule_order
        # Live |refG| of rules created *during* this round (exported
        # fragment rules), maintained at every reference creation/discard
        # site -- see _ref_count.
        self.live_refs: Dict[Symbol, int] = {}
        self.processed: Set[Symbol] = set()
        self.replaced = 0
        self.exported_rules = 0

    # ------------------------------------------------------------------
    def run(self) -> int:
        order = (
            self.rule_order if self.rule_order is not None
            else anti_sl_order(self.grammar)
        )
        for head in order:
            if head in self.occ_by_rule:
                self._process_original(head)
        return self.replaced

    # ------------------------------------------------------------------
    def _is_transparent(self, symbol: Symbol) -> bool:
        return symbol.is_nonterminal and symbol not in self.opaque

    def _ref_count(self, symbol: Symbol) -> int:
        """|refG(symbol)|, correct also for rules created this round.

        The round-start snapshot covers the input rules; exported fragment
        rules appear later and must be counted live, otherwise their
        versions would never export and full inlining would sneak back in
        (exactly the blow-up Algorithm 8 exists to prevent).  Live counts
        are maintained incrementally at every site where a reference to a
        round-created rule enters or leaves the grammar -- template
        inlining, fragment export, and region discard -- instead of
        rescanning the whole grammar per query.
        """
        cached = self.ref_counts.get(symbol)
        if cached is not None:
            return cached
        return self.live_refs.get(symbol, 0)

    def _bump_new_refs(self, root: Node, delta: int = 1) -> None:
        """Adjust live counts for every round-created reference under
        ``root`` (a template about to be inlined into a live rule, or an
        exported rule body installed into the grammar)."""
        live_refs = self.live_refs
        snapshot = self.ref_counts
        stack = [root]
        while stack:
            node = stack.pop()
            symbol = node.symbol
            if symbol.is_nonterminal and symbol not in snapshot:
                live_refs[symbol] = live_refs.get(symbol, 0) + delta
            stack.extend(node.children)

    def _bump_region_refs(self, fragment_root: Node, delta: int) -> None:
        """Like :meth:`_bump_new_refs`, but stopping at region holes
        (marked or parameter nodes), whose subtrees survive as arguments."""
        live_refs = self.live_refs
        snapshot = self.ref_counts
        stack = [fragment_root]
        while stack:
            node = stack.pop()
            if id(node) in self.marked or node.symbol.is_parameter:
                continue
            symbol = node.symbol
            if symbol.is_nonterminal and symbol not in snapshot:
                live_refs[symbol] = live_refs.get(symbol, 0) + delta
            stack.extend(node.children)

    def _process_original(self, head: Symbol) -> None:
        """Isolate, replace and export within the original rule ``head``."""
        if head in self.processed:
            return
        self.processed.add(head)
        occurrences = self.occ_by_rule.get(head, ())
        if occurrences and all(
            not occ.parent_path and not occ.child_path for occ in occurrences
        ):
            # Every occurrence is explicit inside this rule: no isolation,
            # no marks, no export interplay.  Replace directly at the
            # stored endpoints instead of rescanning the whole right-hand
            # side -- O(occurrences), not O(|rule|).  (Stored occurrences
            # of one digram are pairwise disjoint, so order is free.)
            self._process_explicit(head, occurrences)
            return
        rhs = self.grammar.rules[head]

        # Flag assignment (ReplacementDAG construction, Section IV-E): every
        # generator that is a transparent nonterminal needs its root
        # isolated; every generator whose in-rule parent is a transparent
        # nonterminal needs that parent's corresponding parameter isolated.
        flags: Dict[int, Tuple[Node, Set[Flag]]] = {}

        def flag(node: Node, value: Flag) -> None:
            entry = flags.get(id(node))
            if entry is None:
                entry = (node, set())
                flags[id(node)] = entry
            entry[1].add(value)

        for occurrence in self.occ_by_rule.get(head, ()):
            generator = occurrence.generator
            if self._is_transparent(generator.symbol):
                flag(generator, ROOT_FLAG)
            parent = generator.parent
            if parent is not None and self._is_transparent(parent.symbol):
                flag(parent, generator.child_index())

        # Inline the matching version at each flagged node, parents before
        # children.  Sorting by depth (ancestors first, stable for
        # unrelated nodes) replaces the full preorder walk of the rule.
        def node_depth(node: Node) -> int:
            depth = 0
            current = node.parent
            while current is not None:
                depth += 1
                current = current.parent
            return depth

        ordered = sorted(
            (entry[0] for entry in flags.values()), key=node_depth
        )
        events = self.event_log.setdefault(head, [])
        transferred: List[Node] = []
        if ordered:
            self.touched_rules.add(head)
        for node in ordered:
            _, flag_set = flags[id(node)]
            template = self._version(node.symbol, frozenset(flag_set))
            # The inlined copy of the template becomes part of a live rule:
            # account for the round-created references it carries.
            self._bump_new_refs(template)
            argument_roots = list(node.children)
            new_root = inline_node(self.grammar, head, node,
                                   template=template, marked=self.marked,
                                   transferred=transferred)
            # Snapshot the pristine copy region (symbol histogram + node
            # count) now: the replacement scan below may rewrite it, and
            # structure patches must account for the region as inlined,
            # with the later edge deltas applied on top.
            histogram: Dict[Symbol, int] = {}
            region_nodes = 0
            argument_ids = {id(root) for root in argument_roots}
            walk = [new_root]
            while walk:
                region_node = walk.pop()
                if id(region_node) in argument_ids:
                    continue
                region_nodes += 1
                symbol = region_node.symbol
                if symbol.is_nonterminal:
                    histogram[symbol] = histogram.get(symbol, 0) + 1
                walk.extend(region_node.children)
            events.append(("inline", node, new_root, argument_roots,
                           histogram, region_nodes))

        edge_log: List = []
        replaced_here = replace_digram_in_rule(
            self.grammar, head, self.digram, self.replacement, log=edge_log
        )
        events.extend(("edge",) + entry for entry in edge_log)
        if replaced_here:
            self.touched_rules.add(head)
        self.replaced += replaced_here
        if self._ref_count(head) > 1:
            new_root = self._export_fragments(self.grammar.rhs(head),
                                              live=True)
            self.grammar.set_rule(head, new_root)
            self.touched_rules.add(head)
            self.needs_rescan.add(head)
        # Clear exactly the marks this rule received (transferred copies)
        # instead of sweeping its whole right-hand side.
        for node in transferred:
            self.marked.pop(id(node), None)

    def _process_explicit(self, head: Symbol, occurrences) -> None:
        """Replace the stored, fully-local occurrences of ``head``.

        The fast path of :meth:`_process_original`: used when no
        occurrence needs a version inlined (all resolution paths empty),
        which after the first few rounds is the overwhelmingly common
        case on update-dominated grammars.
        """
        grammar = self.grammar
        root = grammar.rhs(head)
        events = self.event_log.setdefault(head, [])
        replaced = 0
        for occ in occurrences:
            parent, child = occ.parent_node, occ.child_node
            if (occ.child_index > len(parent.children)
                    or parent.children[occ.child_index - 1] is not child):
                continue  # stale occurrence; the scan path skips these too
            x = replace_occurrence_in_tree(
                parent, occ.child_index, child, self.replacement
            )
            if parent is root:
                root = x
                grammar.set_rule(head, x)
            events.append(("edge", parent, occ.child_index, child, x))
            replaced += 1
        if replaced:
            grammar.notify_rule_changed(head)
            self.touched_rules.add(head)
        self.replaced += replaced

    # ------------------------------------------------------------------
    def _version(self, symbol: Symbol, flag_set: FrozenSet[Flag]) -> Node:
        """The processed version ``symbol^flag_set`` (memoized template)."""
        key = (symbol, flag_set)
        cached = self.versions.get(key)
        if cached is not None:
            return cached
        # The original must have had its own occurrences replaced first;
        # rules without occurrences are processed trivially.
        self._process_original(symbol)

        copy_root, _ = deep_copy_with_map(self.grammar.rhs(symbol))
        # Locate the copy's parameter nodes once; they survive inlining.
        params: Dict[int, Node] = {}
        stack = [copy_root]
        while stack:
            node = stack.pop()
            if node.symbol.is_parameter:
                params[node.symbol.param_index] = node
            stack.extend(node.children)

        # Collect isolation targets on the copy: the root for ``r``, the
        # parameter parents for ``yi`` -- merged per node, because the root
        # may itself be a parameter parent.
        targets: Dict[int, Tuple[Node, Set[Flag]]] = {}

        def target(node: Node, value: Flag) -> None:
            entry = targets.get(id(node))
            if entry is None:
                entry = (node, set())
                targets[id(node)] = entry
            entry[1].add(value)

        if ROOT_FLAG in flag_set and self._is_transparent(copy_root.symbol):
            target(copy_root, ROOT_FLAG)
        for value in flag_set:
            if value == ROOT_FLAG:
                continue
            param = params[value]
            parent = param.parent
            if parent is not None and self._is_transparent(parent.symbol):
                target(parent, param.child_index())

        for node, sub_flags in list(targets.values()):
            template = self._version(node.symbol, frozenset(sub_flags))
            was_root = node is copy_root
            new_root, copy_map = inline_at(
                self.grammar, node, rhs_override=template
            )
            for original_id, copy in copy_map.items():
                if original_id in self.marked:
                    self.marked[id(copy)] = copy
            if was_root:
                copy_root = new_root

        # Mark the isolated nodes (Algorithm 7 lines 9 and 13).
        if ROOT_FLAG in flag_set:
            self.marked[id(copy_root)] = copy_root
        for value in flag_set:
            if value == ROOT_FLAG:
                continue
            parent = params[value].parent
            if parent is not None:
                self.marked[id(parent)] = parent

        if self._ref_count(symbol) > 1:
            copy_root = self._export_fragments(copy_root, live=False)
        self.versions[key] = copy_root
        return copy_root

    # ------------------------------------------------------------------
    def _export_fragments(self, root: Node, live: bool) -> Node:
        """Algorithm 8: factor unmarked multi-node fragments into rules.

        Returns the (possibly new) root of the rewritten tree.  ``live``
        distinguishes a grammar rule's RHS from a detached version
        template: only live trees contribute to the round-created rules'
        reference counts.
        """
        marked = self.marked
        if not any(id(n) in marked for n in _preorder(root)):
            return root

        # Fragment roots: unmarked non-parameter nodes whose parent is
        # marked or absent.  Regions below different roots are disjoint.
        fragment_roots: List[Node] = []
        for node in _preorder(root):
            if id(node) in marked or node.symbol.is_parameter:
                continue
            parent = node.parent
            if parent is None or id(parent) in marked:
                fragment_roots.append(node)

        for fragment_root in fragment_roots:
            region_size, holes = self._scan_region(fragment_root)
            if region_size < 2:
                continue
            rule_head, argument_order = self._export_rule(fragment_root, holes)
            if live:
                # The region's round-created references are discarded with
                # it; the fresh reference node below replaces them.
                self._bump_region_refs(fragment_root, -1)
                self.live_refs[rule_head] = (
                    self.live_refs.get(rule_head, 0) + 1
                )
            # Splice: the fragment subtree becomes a rule reference whose
            # arguments are the hole subtrees, in preorder order.
            for hole in argument_order:
                hole.parent = None
            reference = Node(rule_head, argument_order)
            parent = fragment_root.parent
            if parent is None:
                root = reference
            else:
                slot = fragment_root.child_index()
                fragment_root.parent = None
                parent.set_child(slot, reference)
        return root

    def _scan_region(self, fragment_root: Node) -> Tuple[int, List[Node]]:
        """Size of the unmarked region and its hole roots, in preorder."""
        size = 0
        holes: List[Node] = []
        stack = [fragment_root]
        while stack:
            node = stack.pop()
            if id(node) in self.marked or node.symbol.is_parameter:
                holes.append(node)
                continue
            size += 1
            stack.extend(reversed(node.children))
        return size, holes

    def _export_rule(
        self, fragment_root: Node, holes: List[Node]
    ) -> Tuple[Symbol, List[Node]]:
        """Create (or reuse) the rule for a fragment; returns (head, holes)."""
        hole_ids = {id(hole): position for position, hole in enumerate(holes, 1)}
        body = _copy_with_holes(fragment_root, hole_ids)
        canonical = body.to_sexpr()
        head = self.export_cache.get(canonical)
        if head is None:
            head = self.grammar.alphabet.fresh_nonterminal(
                len(holes), self.export_prefix
            )
            self.grammar.set_rule(head, body)
            self.touched_rules.add(head)
            self.live_refs.setdefault(head, 0)
            # The body itself lives in the grammar from here on, so any
            # round-created references it copied count immediately.
            self._bump_new_refs(body)
            self.export_cache[canonical] = head
            self.exported_rules += 1
        return head, holes


def _preorder(root: Node):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def _copy_with_holes(root: Node, hole_ids: Dict[int, int]) -> Node:
    """Copy a fragment, substituting hole subtrees by parameters."""
    from repro.trees.symbols import parameter_symbol

    def shell(node: Node) -> Node:
        position = hole_ids.get(id(node))
        if position is not None:
            return Node(parameter_symbol(position))
        copy = Node.__new__(Node)
        copy.symbol = node.symbol
        copy.children = []
        copy.parent = None
        return copy

    copy_root = shell(root)
    if not copy_root.symbol.is_parameter:
        stack = [(root, copy_root)]
        while stack:
            original, copy = stack.pop()
            for child in original.children:
                child_copy = shell(child)
                child_copy.parent = copy
                copy.children.append(child_copy)
                if id(child) not in hole_ids:
                    stack.append((child, child_copy))
    return copy_root


def replace_all_occurrences_optimized(
    grammar: Grammar,
    digram: Digram,
    replacement: Symbol,
    occurrences: Sequence[GrammarOccurrence],
    opaque: Set[Symbol],
    export_prefix: str = "F",
    touched: Optional[Set[Symbol]] = None,
    ref_counts: Optional[Dict[Symbol, int]] = None,
    rule_order: Optional[Sequence[Symbol]] = None,
    clean_edits: Optional[Dict[Symbol, List]] = None,
) -> int:
    """Replace every occurrence of ``digram`` with version/export reuse.

    Returns the number of in-rule replacements performed.  When
    ``touched`` is given, the heads of every rule mutated or created by
    this round are added to it (the same set the grammar's observer
    channel reports; see :mod:`repro.core.occurrence_index`).
    ``ref_counts`` and ``rule_order`` let a caller with a cached call
    graph supply the round-start reference counts and the bottom-up
    processing order of the occurrence rules, skipping two full-grammar
    walks per round.  ``clean_edits`` receives, per rule whose *only*
    mutations were intra-rule replacements, the ordered
    :data:`~repro.core.rewrite.EdgeReplacement` list -- the explicit edge
    deltas that let the occurrence index adapt those rules without a
    rescan.
    """
    replacer = OptimizedReplacer(
        grammar, digram, replacement, occurrences, opaque,
        export_prefix=export_prefix, ref_counts=ref_counts,
        rule_order=rule_order,
    )
    replaced = replacer.run()
    if touched is not None:
        touched.update(replacer.touched_rules)
    if clean_edits is not None:
        for head, events in replacer.event_log.items():
            if events and head not in replacer.needs_rescan:
                clean_edits[head] = events
    return replaced
