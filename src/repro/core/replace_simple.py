"""Non-optimized digram replacement (Algorithm 5).

The DependencyDAG ``DD_α`` is the set of transparent-nonterminal nodes
visited by the TREEPARENT/TREECHILD resolutions of the accepted occurrence
generators: exactly the rule applications needed to make every occurrence
explicit.  Processing rules bottom-up (anti-SL), each such node is inlined
*in full*, then the rule is rescanned and every explicit occurrence is
replaced.

Full inlining is what makes this variant blow the grammar up (Figure 3's
non-optimized curve): a rule inlined at the root of another rule is copied
wholesale into every context that needs only a fragment of it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.retrieve import GrammarOccurrence
from repro.core.rewrite import inline_node, replace_digram_in_rule
from repro.grammar.properties import anti_sl_order
from repro.grammar.slcf import Grammar
from repro.repair.digram import Digram
from repro.trees.node import Node
from repro.trees.symbols import Symbol

__all__ = ["replace_all_occurrences_simple"]


def replace_all_occurrences_simple(
    grammar: Grammar,
    digram: Digram,
    replacement: Symbol,
    occurrences: List[GrammarOccurrence],
    touched: Optional[Set[Symbol]] = None,
) -> int:
    """Replace every occurrence of ``digram``; returns replacement count.

    The count is *unweighted* (replacements performed in rules); callers
    weight it by rule usage for statistics.  When ``touched`` is given,
    the heads of every rule this call mutated are added to it.
    """
    # DependencyDAG: rule head -> nodes of that rule's RHS to inline.  The
    # association to the *containing* rule is positional: resolution paths
    # were recorded while walking, so just group by current rule via the
    # occurrence's own bookkeeping.
    dependency: Dict[int, Node] = {}
    rules_with_work: Set[Symbol] = set()
    for occurrence in occurrences:
        rules_with_work.add(occurrence.rule)
        for node in occurrence.parent_path + occurrence.child_path:
            dependency[id(node)] = node

    if not dependency and not rules_with_work:
        return 0

    inlined: Set[int] = set()
    replaced = 0
    for head in anti_sl_order(grammar):
        rhs = grammar.rules[head]
        # Collect this rule's dependency nodes in preorder (the tree is
        # about to be mutated, so snapshot first).
        targets: List[Node] = []
        touches_rule = head in rules_with_work
        stack = [rhs]
        while stack:
            node = stack.pop()
            if id(node) in dependency and id(node) not in inlined:
                targets.append(node)
            stack.extend(reversed(node.children))
        if not targets and not touches_rule:
            continue
        for node in targets:
            inlined.add(id(node))
            inline_node(grammar, head, node)
        replaced_here = replace_digram_in_rule(
            grammar, head, digram, replacement
        )
        if touched is not None and (targets or replaced_here):
            touched.add(head)
        replaced += replaced_here
    return replaced
