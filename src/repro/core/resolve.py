"""``TREECHILD`` / ``TREEPARENT`` resolution on a grammar (Algorithms 2, 3).

A digram occurrence *generator* is any non-root, non-parameter node of a
right-hand side.  Its *tree child* is found by descending through rule
roots while they are (transparent) nonterminals; its *tree parent* by
ascending, jumping from a nonterminal's ``i``-th child slot to the parent
of parameter ``yi`` inside that nonterminal's rule.

"Transparent" means: a nonterminal of the *input* grammar, through which
digrams resolve.  Nonterminals freshly introduced for digrams during the
current GrammarRePair run are *opaque* -- they act as terminals (Algorithm
1 adds ``X`` to ``F``).

*Barrier* nonterminals (the spine shard heads of
:class:`repro.grammar.sharding.ShardManager`) are likewise not resolved
through: a shard reference pins down where a shard body is spliced into
the document, and replacement must never move or duplicate it.  Unlike
opaque rules, barrier rules' *bodies* are ordinary compression material
-- only the reference edge is out of bounds, and the census skips the
generators incident to it (see :func:`repro.core.retrieve.retrieve_occurrences`
and :class:`repro.core.occurrence_index.GrammarOccurrenceIndex`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.grammar.slcf import Grammar
from repro.trees.node import Node
from repro.trees.symbols import Symbol

__all__ = ["Resolver"]


class Resolver:
    """Cached resolution walks over one grammar snapshot.

    The caches (parameter locations, rule-root lookups) are valid as long
    as the grammar's rules are not mutated; build a fresh resolver per
    counting pass.
    """

    def __init__(
        self,
        grammar: Grammar,
        opaque: Optional[Set[Symbol]] = None,
        barriers: Optional[Set[Symbol]] = None,
    ):
        self.grammar = grammar
        self.opaque: Set[Symbol] = opaque if opaque is not None else set()
        self.barriers: Set[Symbol] = (
            barriers if barriers is not None else set()
        )
        self._param_nodes: Dict[Symbol, Dict[int, Node]] = {}
        # Built on first rule_of_node call: resolution walks never need
        # it, and per-round resolver rebuilds should not pay for it.
        self._rule_of_root: Optional[Dict[int, Symbol]] = None

    # ------------------------------------------------------------------
    def is_transparent(self, symbol: Symbol) -> bool:
        """Digrams resolve *through* transparent nonterminals."""
        return (symbol.is_nonterminal and symbol not in self.opaque
                and symbol not in self.barriers)

    def rule_of_node(self, node: Node) -> Symbol:
        """The rule head whose right-hand side contains ``node``."""
        current = node
        while current.parent is not None:
            current = current.parent
        if self._rule_of_root is None:
            self._rule_of_root = {
                id(rhs): head for head, rhs in self.grammar.rules.items()
            }
        head = self._rule_of_root.get(id(current))
        if head is None:
            raise ValueError("node is not part of any rule of this grammar")
        return head

    def _param_node(self, head: Symbol, index: int) -> Node:
        per_rule = self._param_nodes.get(head)
        if per_rule is None:
            per_rule = {}
            stack = [self.grammar.rhs(head)]
            while stack:
                node = stack.pop()
                if node.symbol.is_parameter:
                    per_rule[node.symbol.param_index] = node
                stack.extend(node.children)
            self._param_nodes[head] = per_rule
        return per_rule[index]

    # ------------------------------------------------------------------
    def tree_child(self, node: Node) -> Tuple[Node, List[Node]]:
        """Algorithm 2: descend through rule roots to the explicit child.

        Returns ``(resolved node, visited)`` where ``visited`` lists the
        transparent nonterminal nodes that would have to be inlined to make
        the child explicit where the walk started (the descent path).
        """
        visited: List[Node] = []
        current = node
        while self.is_transparent(current.symbol):
            visited.append(current)
            current = self.grammar.rhs(current.symbol)
        return current, visited

    def tree_parent(self, node: Node) -> Tuple[Node, int, List[Node]]:
        """Algorithm 3: ascend to the explicit parent.

        ``node`` must not be the root of its rule.  Returns
        ``(parent node, child index, visited)`` with ``visited`` the
        transparent nonterminal nodes on the ascent (each is the in-rule
        parent through which the walk jumped into a callee rule).
        """
        visited: List[Node] = []
        current = node
        while True:
            parent = current.parent
            if parent is None:
                raise ValueError(
                    "tree_parent called on (or resolved to) a rule root"
                )
            index = current.child_index()
            if not self.is_transparent(parent.symbol):
                return parent, index, visited
            visited.append(parent)
            current = self._param_node(parent.symbol, index)
