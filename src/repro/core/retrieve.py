"""``RETRIEVEOCCS`` (Algorithm 4): one-pass digram census over a grammar.

Rules are traversed in anti-SL order (callees first), each rule in
preorder -- the "top-down greedy" pairing of equal-label digrams.  Every
non-root, non-parameter node is a potential occurrence generator; its tree
parent and tree child are resolved through transparent nonterminals.

An occurrence generated in rule ``C`` stands for ``usageG(C)`` occurrences
in the generated tree ``T``, so digram weights are usage-weighted.

Two suppression rules keep stored occurrences non-overlapping:

* equal-label digrams never cross a rule root (a nonterminal generator
  with ``label(parent) == label(child)`` is skipped),
* an equal-label occurrence whose tree parent is the tree child of an
  already stored occurrence is skipped (the anti-SL + preorder order makes
  this single check sufficient, Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.resolve import Resolver
from repro.grammar.properties import anti_sl_order, usage
from repro.grammar.slcf import Grammar
from repro.repair.digram import Digram
from repro.repair.priority import DigramPriorityQueue
from repro.trees.node import Node
from repro.trees.symbols import Symbol

__all__ = ["GrammarOccurrence", "OccurrenceTable", "retrieve_occurrences"]


@dataclass
class GrammarOccurrence:
    """One stored digram occurrence, described on the grammar.

    ``generator`` is the node ``(C, n)`` that generates the occurrence;
    ``parent_node`` / ``child_node`` are the resolved endpoints (terminal
    or opaque-nonterminal nodes, possibly in other rules);
    ``parent_path`` / ``child_path`` list the transparent nonterminal nodes
    that must be expanded to make the endpoints explicit (the
    DependencyDAG's raw material, Section IV-B).
    """

    rule: Symbol
    generator: Node
    parent_node: Node
    child_index: int
    child_node: Node
    parent_path: List[Node] = field(default_factory=list)
    child_path: List[Node] = field(default_factory=list)


class OccurrenceTable:
    """digram -> occurrences, with usage-weighted counts.

    ``best`` is answered by a lazy max-heap
    (:class:`~repro.repair.priority.DigramPriorityQueue`) instead of a
    linear scan over the weight table; the heap's ``(-weight, sort_key)``
    ordering reproduces the deterministic tie-break exactly.
    """

    def __init__(self) -> None:
        self.entries: Dict[Digram, List[GrammarOccurrence]] = {}
        self.weights: Dict[Digram, int] = {}
        self.queue = DigramPriorityQueue()

    def add(self, digram: Digram, occurrence: GrammarOccurrence, weight: int) -> None:
        self.entries.setdefault(digram, []).append(occurrence)
        total = self.weights.get(digram, 0) + weight
        self.weights[digram] = total
        if total > 0:
            self.queue.update(digram, total)

    def weight(self, digram: Digram) -> int:
        return self.weights.get(digram, 0)

    def occurrences(self, digram: Digram) -> List[GrammarOccurrence]:
        return self.entries.get(digram, [])

    def best(
        self,
        kin: int,
        skip: Optional[Set[Digram]] = None,
    ) -> Optional[Tuple[Digram, int]]:
        """Most frequent appropriate digram (deterministic tie-break).

        ``skip`` carries digrams the caller has already discarded (e.g.
        digrams whose replacement failed).  The peek is non-destructive:
        rejected and skipped digrams stay queued, so later calls with a
        different ``skip`` set still see them.
        """
        def accept(digram: Digram, weight: int) -> bool:
            if skip and digram in skip:
                return False
            return digram.is_appropriate(kin, weight)

        return self.queue.peek_best(accept)

    def __len__(self) -> int:
        return len(self.entries)


def retrieve_occurrences(
    grammar: Grammar,
    opaque: Optional[Set[Symbol]] = None,
    resolver: Optional[Resolver] = None,
    usage_map: Optional[Dict[Symbol, int]] = None,
    barriers: Optional[Set[Symbol]] = None,
) -> OccurrenceTable:
    """Run RETRIEVEOCCS over the whole grammar.

    ``barriers`` (spine shard heads) are never resolved through and the
    generators incident to their reference edges are skipped entirely:
    shard references must stay where they are, so no digram may contain
    them on either side.  Shard *bodies* are censused like any rule.
    """
    if resolver is None:
        resolver = Resolver(grammar, opaque, barriers=barriers)
    barrier_set = resolver.barriers
    if usage_map is None:
        usage_map = usage(grammar)
    table = OccurrenceTable()
    # Per digram: resolved tree-child nodes of stored occurrences; used for
    # the equal-label overlap check (ids, since nodes are unhashable by
    # structure on purpose).
    claimed_children: Dict[Digram, Set[int]] = {}

    for head in anti_sl_order(grammar):
        if head in resolver.opaque:
            # An opaque rule's body is the digram pattern itself; with X
            # "added to F" (Algorithm 1 line 5) the generated tree treats
            # X-nodes as atoms, so the pattern's interior is not part of T
            # and must not be counted.
            continue
        rule_weight = usage_map.get(head, 0)
        rhs = grammar.rules[head]
        stack = [rhs]
        order: List[Node] = []
        while stack:  # preorder
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(node.children))
        for node in order:
            if node.parent is None or node.symbol.is_parameter:
                continue
            if barrier_set and (node.symbol in barrier_set
                                or node.parent.symbol in barrier_set):
                # The edge above a shard reference / below a shard
                # application is pinned: no digram may absorb it.
                continue
            parent_node, child_index, parent_path = resolver.tree_parent(node)
            child_node, child_path = resolver.tree_child(node)
            digram = Digram(
                parent_node.symbol, child_index, child_node.symbol
            )
            if digram.is_equal_label:
                if resolver.is_transparent(node.symbol):
                    # Equal-label occurrences crossing a rule root are
                    # never collected (Algorithm 4's missing case).
                    continue
                claimed = claimed_children.setdefault(digram, set())
                if id(parent_node) in claimed:
                    continue  # overlaps a stored occurrence
                claimed.add(id(child_node))
            table.add(
                digram,
                GrammarOccurrence(
                    rule=head,
                    generator=node,
                    parent_node=parent_node,
                    child_index=child_index,
                    child_node=child_node,
                    parent_path=parent_path,
                    child_path=child_path,
                ),
                rule_weight,
            )
    return table
