"""Shared rewriting helpers for digram replacement on grammars.

* :func:`replace_digram_in_rule` -- the intra-rule replacement "as done in
  TreeRePair" (Algorithm 5 line 6 / Algorithm 6 line 4): a preorder,
  top-down greedy scan that replaces every explicit, non-overlapping
  occurrence of the digram inside one right-hand side.
* :func:`inline_node` -- inlining with rule-root bookkeeping and node-mark
  transfer (marks implement Algorithm 7's isolation bookkeeping).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.grammar.derivation import inline_at
from repro.grammar.slcf import Grammar
from repro.repair.digram import Digram, replace_occurrence_in_tree
from repro.trees.node import Node
from repro.trees.symbols import Symbol

__all__ = ["replace_digram_in_rule", "inline_node", "EdgeReplacement"]

#: One intra-rule replacement, as reported to edge-delta consumers:
#: ``(old parent node, child slot, old child node, new X node)``.
EdgeReplacement = Tuple[Node, int, Node, Node]


def replace_digram_in_rule(
    grammar: Grammar,
    head: Symbol,
    digram: Digram,
    replacement: Symbol,
    log: Optional[List[EdgeReplacement]] = None,
) -> int:
    """Replace explicit occurrences of ``digram`` in ``head``'s RHS.

    Top-down greedy: scanning in preorder, a match consumes both nodes and
    scanning resumes below the fresh ``X`` node, which matches the paper's
    generalization of left-greedy string matching (Section III-C).
    Returns the number of replacements.

    ``log`` collects one :data:`EdgeReplacement` per replacement, in scan
    order -- the explicit edge deltas the incremental occurrence index
    adapts by instead of re-censusing the whole rule (Section IV-C).
    """
    replaced = 0
    root = grammar.rhs(head)
    stack = [root]
    while stack:
        node = stack.pop()
        if node.symbol is digram.parent:
            child = node.children[digram.index - 1]
            if child.symbol is digram.child:
                x = replace_occurrence_in_tree(
                    node, digram.index, child, replacement
                )
                if node is root:
                    root = x
                    grammar.set_rule(head, x)
                replaced += 1
                if log is not None:
                    log.append((node, digram.index, child, x))
                # Continue below the replacement; the consumed nodes are
                # gone, so no overlap is possible.
                stack.extend(reversed(x.children))
                continue
        stack.extend(reversed(node.children))
    if replaced:
        grammar.notify_rule_changed(head)
    return replaced


def inline_node(
    grammar: Grammar,
    head: Symbol,
    node: Node,
    template: Optional[Node] = None,
    marked: Optional[Dict[int, Node]] = None,
    transferred: Optional[List[Node]] = None,
) -> Node:
    """Inline at ``node`` inside ``head``'s rule, handling root replacement.

    ``template`` overrides the inlined right-hand side (rule *versions*);
    ``marked`` is the replacer's mark table (id -> node; the node reference
    keeps ids stable) -- marks on template nodes are transferred to their
    copies, implementing "the mark is copied during the inlining step"
    (Section II).  ``transferred`` collects the copies that received a
    mark, so the caller can clear exactly those afterwards instead of
    sweeping the whole rule.  Returns the root of the inlined subtree.
    """
    was_root = node is grammar.rhs(head)
    new_root, copy_map = inline_at(grammar, node, rhs_override=template)
    if was_root:
        grammar.set_rule(head, new_root)
    else:
        grammar.notify_rule_changed(head)
    if marked is not None:
        for original_id, copy in copy_map.items():
            if original_id in marked:
                marked[id(copy)] = copy
                if transferred is not None:
                    transferred.append(copy)
    return new_root
