"""GrammarRePair (Algorithm 1): RePair compression directly on a grammar.

Given an SLCF grammar ``G``, produce a smaller grammar ``G'`` with
``valG'(S) = valG(S)`` *without decompressing*:

1. ``RETRIEVEOCCS`` counts usage-weighted, non-overlapping digram
   occurrences over the whole grammar,
2. a most frequent appropriate digram is replaced by a fresh nonterminal,
   using either the DependencyDAG (Algorithm 5) or the optimized
   ReplacementDAG with fragment export (Algorithms 6-8),
3. occurrence counts are refreshed and the loop continues,
4. the pruning phase removes unproductive rules.

Applied to the trivial grammar ``{S -> t}`` this is a tree compressor
(Section V-B); applied to an updated grammar it is the paper's incremental
recompressor (Section V-C).

Occurrence maintenance
----------------------
By default (``incremental=True``) step 3 does **not** rerun the full
census: a :class:`~repro.core.occurrence_index.GrammarOccurrenceIndex` is
built with exactly one full-grammar pass and then, after every
replacement, re-censuses only the rules the round touched (reported
through the grammar's observer channel) plus the rules whose occurrence
resolutions pass through them -- a round costs O(|touched rules|) instead
of O(|G|).  ``compress(dirty_rules=...)`` narrows even the initial census
to a set of dirty rules plus their digram frontier, which is what
:meth:`repro.api.CompressedXml.recompress` uses to recompress only the
part of the grammar mutated since its last run.  ``incremental=False``
keeps the historical per-round full-rescan loop as a reference (and as
the benchmark baseline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Set

from repro.core.occurrence_index import GrammarOccurrenceIndex
from repro.core.replace_optimized import replace_all_occurrences_optimized
from repro.core.replace_simple import replace_all_occurrences_simple
from repro.core.retrieve import retrieve_occurrences
from repro.grammar.properties import collect_garbage
from repro.grammar.slcf import Grammar
from repro.repair.digram import Digram, digram_pattern
from repro.repair.pruning import prune_grammar
from repro.repair.tree_repair import DEFAULT_KIN
from repro.trees.node import Node
from repro.trees.symbols import Alphabet, Symbol

__all__ = ["GrammarRePair", "GrammarRePairStats", "grammar_repair"]


class GrammarRePairError(RuntimeError):
    """Internal invariant violation during recompression."""


@dataclass
class GrammarRePairStats:
    """Trace of one recompression run (drives Figures 2 and 3).

    ``full_censuses`` counts full-grammar occurrence censuses;
    ``census_trace[i]`` is the number of rules censused by round ``i``
    (entry 0 is the initial build) and ``rule_count_trace[i]`` the number
    of grammar rules at that moment.  The incremental path performs
    exactly one full census per run; the rescan path one per round.
    ``seed_rule_count`` is set when the census was dirty-rule-scoped.
    """

    rounds: int = 0
    rules_created: int = 0
    rules_pruned: int = 0
    replacements: int = 0
    initial_size: int = 0
    final_size: int = 0
    max_intermediate_size: int = 0
    size_trace: List[int] = field(default_factory=list)
    full_censuses: int = 0
    census_trace: List[int] = field(default_factory=list)
    rule_count_trace: List[int] = field(default_factory=list)
    rules_censused: int = 0
    #: Rules brought up to date below census cost: event-log adaptation
    #: (O(edits)) and crossing-only rescans (resolution only at nodes that
    #: can cross rules).
    rules_adapted: int = 0
    rules_partially_rescanned: int = 0
    seed_rule_count: Optional[int] = None
    #: Wall time spent maintaining occurrence counts: census/build, digram
    #: selection and per-round count upkeep (incl. garbage detection) --
    #: the component this PR's occurrence index replaces.  Replacement and
    #: pruning time is excluded (identical machinery on both paths).
    maintenance_seconds: float = 0.0
    #: Stage wall times of the run: the occurrence census (the one full
    #: build in incremental mode, every RETRIEVEOCCS pass in rescan
    #: mode), the replacement rounds (everything between census and
    #: prune), and the pruning phase.
    census_seconds: float = 0.0
    rounds_seconds: float = 0.0
    prune_seconds: float = 0.0

    @property
    def blow_up(self) -> float:
        """Figure 2: max intermediate grammar size over final size."""
        if self.final_size == 0:
            return 1.0
        return self.max_intermediate_size / self.final_size

    def to_dict(self) -> dict:
        """Flat numeric view (the shared stats-object protocol)."""
        return {
            "rounds": self.rounds,
            "rules_created": self.rules_created,
            "rules_pruned": self.rules_pruned,
            "replacements": self.replacements,
            "initial_size": self.initial_size,
            "final_size": self.final_size,
            "max_intermediate_size": self.max_intermediate_size,
            "blow_up": self.blow_up,
            "full_censuses": self.full_censuses,
            "rules_censused": self.rules_censused,
            "rules_adapted": self.rules_adapted,
            "rules_partially_rescanned": self.rules_partially_rescanned,
            "seed_rule_count": self.seed_rule_count or 0,
            "maintenance_seconds": self.maintenance_seconds,
            "census_seconds": self.census_seconds,
            "rounds_seconds": self.rounds_seconds,
            "prune_seconds": self.prune_seconds,
        }


class GrammarRePair:
    """Configurable GrammarRePair compressor.

    Parameters
    ----------
    kin:
        Maximum rank of replacement nonterminals.
    prune:
        Run the pruning phase (Section IV-D) at the end.
    optimized:
        Use the ReplacementDAG with fragment export (Algorithms 6-8)
        instead of plain DependencyDAG inlining (Algorithm 5).  The
        non-optimized variant is exponentially worse on some inputs
        (Figure 3) but useful as a reference.
    incremental:
        Maintain occurrence counts incrementally across rounds with a
        :class:`~repro.core.occurrence_index.GrammarOccurrenceIndex`
        (one full census per run) instead of re-running RETRIEVEOCCS
        every round (the historical behavior, kept as the baseline).
    rule_prefix / export_prefix:
        Name prefixes for digram rules and exported fragment rules.
    round_hook:
        Test/diagnostics callback invoked after every incremental round
        with ``(grammar, occurrence_index, opaque)``.
    barriers:
        Spine shard heads (see :class:`repro.grammar.sharding.ShardManager`).
        Their reference edges are never censused or resolved through --
        the spine skeleton stays put while shard *bodies* compress like
        any rule -- and the pruning phase keeps them even though each is
        referenced exactly once.
    """

    def __init__(
        self,
        kin: int = DEFAULT_KIN,
        prune: bool = True,
        optimized: bool = True,
        incremental: bool = True,
        rule_prefix: str = "X",
        export_prefix: str = "F",
        round_hook: Optional[Callable] = None,
        barriers: Optional[Set[Symbol]] = None,
    ) -> None:
        self.kin = kin
        self.prune = prune
        self.optimized = optimized
        self.incremental = incremental
        self.rule_prefix = rule_prefix
        self.export_prefix = export_prefix
        self.round_hook = round_hook
        self.barriers: Set[Symbol] = set(barriers) if barriers else set()
        self.stats = GrammarRePairStats()
        # Structure maps captured from the occurrence index right before
        # it detaches: lets the pruning phase run without whole-grammar
        # walks (reference counts, referencers, sizes, anti-SL order).
        self._prune_hints: Optional[tuple] = None

    # ------------------------------------------------------------------
    def compress(
        self,
        grammar: Grammar,
        in_place: bool = False,
        dirty_rules: Optional[Iterable[Symbol]] = None,
    ) -> Grammar:
        """Recompress ``grammar``; returns the new grammar.

        With ``in_place=False`` (default) the input grammar is left
        untouched.  ``dirty_rules`` (incremental mode only) scopes the
        initial census to the given rules plus their digram frontier --
        rules untouched since the last compression keep their digrams
        as they are.
        """
        working = grammar if in_place else grammar.copy()
        stats = self.stats = GrammarRePairStats()
        stats.initial_size = working.size
        stats.max_intermediate_size = stats.initial_size
        stats.size_trace.append(stats.initial_size)
        self._prune_hints = None

        loop_started = time.perf_counter()
        if self.incremental:
            self._compress_incremental(working, stats, dirty_rules)
        else:
            self._compress_full_rescan(working, stats)
        loop_elapsed = time.perf_counter() - loop_started
        stats.rounds_seconds = max(0.0, loop_elapsed - stats.census_seconds)

        if self.prune:
            prune_started = time.perf_counter()
            if self._prune_hints is not None:
                counts, order, referencers, sizes = self._prune_hints
                stats.rules_pruned = prune_grammar(
                    working, protected=self.barriers, counts=counts,
                    order=order, referencers=referencers, sizes=sizes,
                )
            else:
                stats.rules_pruned = prune_grammar(
                    working, protected=self.barriers
                )
            stats.prune_seconds = time.perf_counter() - prune_started
        stats.final_size = working.size
        stats.size_trace.append(stats.final_size)
        if stats.final_size > stats.max_intermediate_size:
            stats.max_intermediate_size = stats.final_size
        return working

    # ------------------------------------------------------------------
    def _replace(
        self,
        working: Grammar,
        digram: Digram,
        replacement: Symbol,
        occurrences,
        opaque: Set[Symbol],
        touched: Optional[Set[Symbol]] = None,
        ref_counts: Optional[dict] = None,
        rule_order: Optional[List[Symbol]] = None,
        clean_edits: Optional[dict] = None,
    ) -> int:
        if self.optimized:
            return replace_all_occurrences_optimized(
                working, digram, replacement, occurrences, opaque,
                export_prefix=self.export_prefix, touched=touched,
                ref_counts=ref_counts, rule_order=rule_order,
                clean_edits=clean_edits,
            )
        return replace_all_occurrences_simple(
            working, digram, replacement, occurrences, touched=touched
        )

    def _compress_incremental(
        self,
        working: Grammar,
        stats: GrammarRePairStats,
        dirty_rules: Optional[Iterable[Symbol]],
    ) -> None:
        """One full census, then touched-rules-only maintenance."""
        opaque: Set[Symbol] = set()
        index = GrammarOccurrenceIndex(
            working, opaque, barriers=self.barriers
        )
        seed = None
        if dirty_rules is not None:
            seed = set(dirty_rules)
            stats.seed_rule_count = len(seed)
        else:
            stats.full_censuses += 1
        clock = time.perf_counter
        started = clock()
        index.build(seed_rules=seed)
        elapsed = clock() - started
        stats.maintenance_seconds += elapsed
        stats.census_seconds += elapsed
        try:
            while True:
                started = clock()
                best = index.best(self.kin)
                stats.maintenance_seconds += clock() - started
                if best is None:
                    break
                digram, _weight = best
                occurrences = index.occurrences(digram)
                if not occurrences:
                    index.mark_dead(digram)
                    continue
                # The index's cached call graph supplies the round-start
                # reference counts and the bottom-up processing order that
                # the replacer would otherwise recompute with full-grammar
                # walks.
                rule_order = index.order_rules(
                    {occurrence.rule for occurrence in occurrences}
                )
                replacement = working.alphabet.fresh_nonterminal(
                    digram.rank, self.rule_prefix
                )
                working.set_rule(replacement, digram_pattern(digram))
                opaque.add(replacement)
                index.note_new_rule(replacement)
                clean_edits: dict = {}
                replaced = self._replace(
                    working, digram, replacement, occurrences, opaque,
                    ref_counts=index.reference_counts_live(),
                    rule_order=rule_order,
                    clean_edits=clean_edits,
                )
                if replaced == 0:
                    # Defensive: never loop on an irreplaceable digram.
                    # The replacer may still have rewritten rules while
                    # isolating, so the round is folded in regardless.
                    working.remove_rule(replacement)
                    opaque.discard(replacement)
                    index.mark_dead(digram)
                    started = clock()
                    index.apply_round(collect_garbage=False)
                    stats.maintenance_seconds += clock() - started
                    continue
                # apply_round garbage-collects dead rules itself (the
                # usage table it needs for the weight refresh doubles as
                # the garbage detector) and adapts cleanly-edited rules
                # edge-locally instead of rescanning them.
                started = clock()
                index.apply_round(clean_edits=clean_edits)
                stats.maintenance_seconds += clock() - started
                stats.rounds += 1
                stats.rules_created += 1
                stats.replacements += replaced
                # The index tracks |G| at its structure refreshes; asking
                # the grammar would walk every rule each round.
                size = index.grammar_size()
                stats.size_trace.append(size)
                if size > stats.max_intermediate_size:
                    stats.max_intermediate_size = size
                if self.round_hook is not None:
                    self.round_hook(working, index, opaque)
        finally:
            stats.census_trace = list(index.census_trace)
            stats.rule_count_trace = list(index.rule_count_trace)
            stats.rules_censused = index.rules_censused
            stats.rules_adapted = index.rules_adapted
            stats.rules_partially_rescanned = index.rules_partially_rescanned
            # Hand the maintained structure maps to the pruning phase so
            # it runs without a single whole-grammar setup walk (the
            # ROADMAP "fold pruning into the occurrence index" item).
            self._prune_hints = (
                dict(index.reference_counts_live()),
                index.anti_sl_order_live(),
                index.referencers_live(),
                index.rule_edges_live(),
            )
            index.detach()

    def _compress_full_rescan(
        self, working: Grammar, stats: GrammarRePairStats
    ) -> None:
        """The historical loop: a full RETRIEVEOCCS census per round."""
        opaque: Set[Symbol] = set()
        dead_digrams: Set[Digram] = set()
        clock = time.perf_counter
        while True:
            started = clock()
            table = retrieve_occurrences(
                working, opaque, barriers=self.barriers
            )
            stats.census_seconds += clock() - started
            stats.full_censuses += 1
            census_count = sum(
                1 for head in working.rules if head not in opaque
            )
            stats.census_trace.append(census_count)
            stats.rule_count_trace.append(len(working.rules))
            stats.rules_censused += census_count
            best = table.best(self.kin, skip=dead_digrams)
            stats.maintenance_seconds += clock() - started
            if best is None:
                break
            digram, _weight = best
            occurrences = table.occurrences(digram)
            replacement = working.alphabet.fresh_nonterminal(
                digram.rank, self.rule_prefix
            )
            working.set_rule(replacement, digram_pattern(digram))
            opaque.add(replacement)
            replaced = self._replace(
                working, digram, replacement, occurrences, opaque
            )
            if replaced == 0:
                # Defensive: never loop on an irreplaceable digram.  The
                # fresh rule is dropped again by garbage collection.
                working.remove_rule(replacement)
                opaque.discard(replacement)
                dead_digrams.add(digram)
                continue
            started = clock()
            collect_garbage(working)
            stats.maintenance_seconds += clock() - started
            stats.rounds += 1
            stats.rules_created += 1
            stats.replacements += replaced
            size = working.size
            stats.size_trace.append(size)
            if size > stats.max_intermediate_size:
                stats.max_intermediate_size = size

    # ------------------------------------------------------------------
    def compress_tree(
        self,
        root: Node,
        alphabet: Alphabet,
        copy_input: bool = True,
    ) -> Grammar:
        """GrammarRePair "applied to a tree": wrap in a trivial grammar.

        This is the configuration the paper calls *GrammarRePair applied to
        trees* in Section V-B.
        """
        from repro.trees.node import deep_copy

        working_tree = deep_copy(root) if copy_input else root
        trivial = Grammar.from_tree(working_tree, alphabet)
        return self.compress(trivial, in_place=True)


def grammar_repair(
    grammar: Grammar,
    kin: int = DEFAULT_KIN,
    prune: bool = True,
    optimized: bool = True,
    incremental: bool = True,
) -> Grammar:
    """Convenience wrapper with default settings."""
    return GrammarRePair(
        kin=kin, prune=prune, optimized=optimized, incremental=incremental
    ).compress(grammar)
