"""GrammarRePair (Algorithm 1): RePair compression directly on a grammar.

Given an SLCF grammar ``G``, produce a smaller grammar ``G'`` with
``valG'(S) = valG(S)`` *without decompressing*:

1. ``RETRIEVEOCCS`` counts usage-weighted, non-overlapping digram
   occurrences over the whole grammar,
2. a most frequent appropriate digram is replaced by a fresh nonterminal,
   using either the DependencyDAG (Algorithm 5) or the optimized
   ReplacementDAG with fragment export (Algorithms 6-8),
3. occurrence counts are refreshed and the loop continues,
4. the pruning phase removes unproductive rules.

Applied to the trivial grammar ``{S -> t}`` this is a tree compressor
(Section V-B); applied to an updated grammar it is the paper's incremental
recompressor (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.core.replace_optimized import replace_all_occurrences_optimized
from repro.core.replace_simple import replace_all_occurrences_simple
from repro.core.retrieve import retrieve_occurrences
from repro.grammar.properties import collect_garbage
from repro.grammar.slcf import Grammar
from repro.repair.digram import Digram, digram_pattern
from repro.repair.pruning import prune_grammar
from repro.repair.tree_repair import DEFAULT_KIN
from repro.trees.node import Node
from repro.trees.symbols import Alphabet, Symbol

__all__ = ["GrammarRePair", "GrammarRePairStats", "grammar_repair"]


class GrammarRePairError(RuntimeError):
    """Internal invariant violation during recompression."""


@dataclass
class GrammarRePairStats:
    """Trace of one recompression run (drives Figures 2 and 3)."""

    rounds: int = 0
    rules_created: int = 0
    rules_pruned: int = 0
    replacements: int = 0
    initial_size: int = 0
    final_size: int = 0
    max_intermediate_size: int = 0
    size_trace: List[int] = field(default_factory=list)

    @property
    def blow_up(self) -> float:
        """Figure 2: max intermediate grammar size over final size."""
        if self.final_size == 0:
            return 1.0
        return self.max_intermediate_size / self.final_size


class GrammarRePair:
    """Configurable GrammarRePair compressor.

    Parameters
    ----------
    kin:
        Maximum rank of replacement nonterminals.
    prune:
        Run the pruning phase (Section IV-D) at the end.
    optimized:
        Use the ReplacementDAG with fragment export (Algorithms 6-8)
        instead of plain DependencyDAG inlining (Algorithm 5).  The
        non-optimized variant is exponentially worse on some inputs
        (Figure 3) but useful as a reference.
    rule_prefix / export_prefix:
        Name prefixes for digram rules and exported fragment rules.
    """

    def __init__(
        self,
        kin: int = DEFAULT_KIN,
        prune: bool = True,
        optimized: bool = True,
        rule_prefix: str = "X",
        export_prefix: str = "F",
    ) -> None:
        self.kin = kin
        self.prune = prune
        self.optimized = optimized
        self.rule_prefix = rule_prefix
        self.export_prefix = export_prefix
        self.stats = GrammarRePairStats()

    # ------------------------------------------------------------------
    def compress(self, grammar: Grammar, in_place: bool = False) -> Grammar:
        """Recompress ``grammar``; returns the new grammar.

        With ``in_place=False`` (default) the input grammar is left
        untouched.
        """
        working = grammar if in_place else grammar.copy()
        stats = self.stats = GrammarRePairStats()
        stats.initial_size = working.size
        stats.max_intermediate_size = stats.initial_size
        stats.size_trace.append(stats.initial_size)

        opaque: Set[Symbol] = set()
        dead_digrams: Set[Digram] = set()
        while True:
            table = retrieve_occurrences(working, opaque)
            best = table.best(self.kin, skip=dead_digrams)
            if best is None:
                break
            digram, _weight = best
            occurrences = table.occurrences(digram)
            replacement = working.alphabet.fresh_nonterminal(
                digram.rank, self.rule_prefix
            )
            working.set_rule(replacement, digram_pattern(digram))
            opaque.add(replacement)
            if self.optimized:
                replaced = replace_all_occurrences_optimized(
                    working, digram, replacement, occurrences, opaque
                )
            else:
                replaced = replace_all_occurrences_simple(
                    working, digram, replacement, occurrences
                )
            if replaced == 0:
                # Defensive: never loop on an irreplaceable digram.  The
                # fresh rule is dropped again by garbage collection.
                working.remove_rule(replacement)
                opaque.discard(replacement)
                dead_digrams.add(digram)
                continue
            collect_garbage(working)
            stats.rounds += 1
            stats.rules_created += 1
            stats.replacements += replaced
            size = working.size
            stats.size_trace.append(size)
            if size > stats.max_intermediate_size:
                stats.max_intermediate_size = size

        if self.prune:
            stats.rules_pruned = prune_grammar(working)
        stats.final_size = working.size
        stats.size_trace.append(stats.final_size)
        if stats.final_size > stats.max_intermediate_size:
            stats.max_intermediate_size = stats.final_size
        return working

    # ------------------------------------------------------------------
    def compress_tree(
        self,
        root: Node,
        alphabet: Alphabet,
        copy_input: bool = True,
    ) -> Grammar:
        """GrammarRePair "applied to a tree": wrap in a trivial grammar.

        This is the configuration the paper calls *GrammarRePair applied to
        trees* in Section V-B.
        """
        from repro.trees.node import deep_copy

        working_tree = deep_copy(root) if copy_input else root
        trivial = Grammar.from_tree(working_tree, alphabet)
        return self.compress(trivial, in_place=True)


def grammar_repair(
    grammar: Grammar,
    kin: int = DEFAULT_KIN,
    prune: bool = True,
    optimized: bool = True,
) -> Grammar:
    """Convenience wrapper with default settings."""
    return GrammarRePair(kin=kin, prune=prune, optimized=optimized).compress(
        grammar
    )
