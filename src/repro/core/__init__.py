"""GrammarRePair: the paper's primary contribution."""

from repro.core.grammar_repair import (
    GrammarRePair,
    GrammarRePairStats,
    grammar_repair,
)
from repro.core.occurrence_index import GrammarOccurrenceIndex
from repro.core.replace_optimized import (
    OptimizedReplacer,
    replace_all_occurrences_optimized,
)
from repro.core.replace_simple import replace_all_occurrences_simple
from repro.core.resolve import Resolver
from repro.core.retrieve import (
    GrammarOccurrence,
    OccurrenceTable,
    retrieve_occurrences,
)
from repro.core.rewrite import inline_node, replace_digram_in_rule

__all__ = [
    "GrammarRePair",
    "GrammarRePairStats",
    "grammar_repair",
    "GrammarOccurrenceIndex",
    "Resolver",
    "GrammarOccurrence",
    "OccurrenceTable",
    "retrieve_occurrences",
    "replace_all_occurrences_simple",
    "replace_all_occurrences_optimized",
    "OptimizedReplacer",
    "inline_node",
    "replace_digram_in_rule",
]
