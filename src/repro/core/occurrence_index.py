"""A persistent, incrementally maintained digram index over a grammar.

:class:`GrammarOccurrenceIndex` mirrors
:class:`repro.repair.occurrences.TreeOccurrenceIndex` at the grammar
level: digram -> usage-weighted occurrence lists, with the most frequent
appropriate digram answered by a lazy max-heap
(:class:`~repro.repair.priority.DigramPriorityQueue`) in O(log n) instead
of a linear scan over every digram.

The index is built with one full ``RETRIEVEOCCS`` census (Algorithm 4) --
or, for dirty-rule-scoped recompression, a census of only the dirty rules
plus their digram frontier -- and then maintained *incrementally*: it
registers as a grammar observer, records the rules each replacement round
mutates, and on :meth:`apply_round` adapts exactly what changed.  This
realizes the paper's Section IV-C observation ("only the occurrences that
overlap with an occurrence of the replaced digram have to be adapted") on
the grammar, where before every round paid a full O(|G|) rescan.  Two
granularities:

* **edge-local adaptation** for rules whose only mutations were intra-rule
  digram replacements: the replacer reports the replaced edges
  (:data:`~repro.core.rewrite.EdgeReplacement` deltas), and only the
  occurrences incident to the replaced nodes are removed/re-resolved --
  O(replacements) instead of O(|rule|).  This is what keeps rounds cheap
  when the start rule dominates the grammar (the sustained-update regime);
* **rule re-census** for rules rewritten in less local ways (inlining,
  fragment export, removal) and for rules whose stored *resolutions* pass
  through an interface that changed.

Affected-set propagation
------------------------
An occurrence stored for rule ``C`` resolves its endpoints through
transparent nonterminals, possibly in other rules.  A mutation of rule
``D`` therefore invalidates:

* ``D``'s own occurrences (its generators changed),
* occurrences of any rule *referencing* a transparent rule through whose
  right-hand side a resolution can now differ.

Resolutions enter a rule ``X`` only at its *interface*: descending, at
``X``'s root node (when the root is a transparent nonterminal the walk
continues into that rule); ascending, at the parents of ``X``'s
parameters.  Endpoints and resolution paths recorded for other rules
consist exactly of these interface nodes, so a mutation of ``X`` only
invalidates outside occurrences when its interface *signature* -- the
identities and symbols of the root and parameter-parent nodes -- changed;
a digram replaced in the interior of ``X`` stays ``X``'s private affair.
The index keeps, per rule, its referenced symbols, its boundary symbols
(interface symbols through which walks continue onward), and the
signature; the affected set is ``dirty`` plus the referencers of the
closure of the interface-changed rules under reverse-boundary edges.
This is sound because every hop of a TREECHILD/TREEPARENT walk follows a
reference, and hops beyond the first pass through interfaces only.

Equal-label caveat
------------------
Stored equal-label occurrences carry per-digram *claims* (resolved child
endpoints) that suppress overlaps.  Claims persist across rounds, so
incremental maintenance may greedily pick a different -- equally valid,
non-overlapping -- occurrence set than a from-scratch census would (and
edge-local adaptation does not re-discover occurrences a removed claim
used to suppress).  Non-equal-label digram weights are maintained
exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.resolve import Resolver
from repro.core.retrieve import GrammarOccurrence
from repro.grammar.properties import anti_sl_order
from repro.grammar.slcf import Grammar
from repro.repair.digram import Digram
from repro.repair.priority import DigramPriorityQueue
from repro.trees.node import Node
from repro.trees.symbols import Symbol

__all__ = ["GrammarOccurrenceIndex"]

#: Per rule: digram -> {id(generator) -> occurrence}.  Generator-keyed so
#: edge-local adaptation can remove single occurrences in O(1); dicts
#: preserve insertion (preorder) order for the occurrence lists.
_RuleTable = Dict[Digram, Dict[int, GrammarOccurrence]]


class GrammarOccurrenceIndex:
    """Digram -> occurrences over one mutable grammar, kept correct
    across replacement rounds by adapting only what each round touched.

    Lifecycle (one instance per :meth:`GrammarRePair.compress` call)::

        index = GrammarOccurrenceIndex(grammar, opaque)
        index.build()                       # or build(seed_rules=dirty)
        while (best := index.best(kin)):
            ... replace best digram ...     # mutations reach the index
            index.apply_round(clean_edits)  # adapt/rescan touched rules

    The instance registers as a grammar observer on construction; call
    :meth:`detach` when done (before pruning, which rewrites wholesale).
    """

    def __init__(
        self,
        grammar: Grammar,
        opaque: Set[Symbol],
        barriers: Optional[Set[Symbol]] = None,
    ) -> None:
        self._grammar = grammar
        self._opaque = opaque
        # Spine shard heads: never resolved through, never part of a
        # digram (the generators incident to their reference edges are
        # skipped) -- their bodies are ordinary compression material.
        self._barriers: Set[Symbol] = barriers if barriers else set()
        self._by_rule: Dict[Symbol, _RuleTable] = {}
        # rule -> {id(generator) -> digram}: the reverse lookup removals
        # need.
        self._gen_digram: Dict[Symbol, Dict[int, Digram]] = {}
        # rule -> the usage weight folded into _weights for its occurrences.
        self._rule_usage: Dict[Symbol, int] = {}
        self._weights: Dict[Digram, int] = {}
        # Textual (unweighted) occurrence counts.  A digram stored exactly
        # once *that contains an opaque digram symbol* has nothing left to
        # share: replacing it wraps a single site in one more rule (net
        # growth), and on update-accumulated grammars chains of such
        # replacements feed each other into a blow-up the pruning phase
        # cannot recover.  ``best`` therefore rejects those; singleton
        # digrams over document symbols stay eligible -- they isolate
        # shared-rule interiors and enable later cross-rule sharing.
        self._counts: Dict[Digram, int] = {}
        # Equal-label claims: digram -> {id(child endpoint) -> refcount}.
        # Refcounted because distinct generators may resolve to the same
        # explicit child node (shared rules).
        self._claims: Dict[Digram, Dict[int, int]] = {}
        # Structure maps, maintained for *every* rule (cheap, no resolver):
        # per-rule callee histograms (symbol -> reference multiplicity)...
        self._callee_counts: Dict[Symbol, Dict[Symbol, int]] = {}
        self._referencers: Dict[Symbol, Set[Symbol]] = {}
        self._boundary: Dict[Symbol, Set[Symbol]] = {}
        self._boundary_refs: Dict[Symbol, Set[Symbol]] = {}
        # ... and their aggregate: |refG(Q)| per rule head, kept exact by
        # folding histogram deltas at every structure refresh.  Replaces
        # the per-round full-grammar ``reference_counts`` walk.
        self._refs_total: Dict[Symbol, int] = {}
        # rule -> interface signature (root and parameter-parent nodes by
        # identity and symbol); outside occurrences resolve through these
        # nodes and only these, so an unchanged signature means no caller
        # needs a rescan.
        self._interface: Dict[Symbol, Tuple] = {}
        # rule -> RHS edge count, and the grammar-wide total: lets the
        # compression loop trace |G| per round without an O(|G|) walk.
        self._rule_edges: Dict[Symbol, int] = {}
        self._total_edges = 0
        # rule -> topological level (every caller strictly above all its
        # callees); sorting by it yields an anti-SL order without a
        # per-round DFS over the whole call graph.
        self._topo: Dict[Symbol, int] = {}
        self.queue = DigramPriorityQueue()
        self._dead: Set[Digram] = set()
        # Intermediate-size ceiling for break-even replacements over
        # opaque rules (set at build time; see best()).
        self._blowup_budget = float("inf")
        self._dirty: Set[Symbol] = set()
        self._changed_digrams: Set[Digram] = set()
        # Rules ever censused -- the compression scope.  Dirty-seeded
        # builds leave out-of-scope rules alone even when propagation
        # brushes them.
        self._scope: Set[Symbol] = set()
        # Instrumentation (asserted by tests and reported by benchmarks).
        self.builds = 0
        self.rules_censused = 0
        self.rules_adapted = 0
        self.rules_partially_rescanned = 0
        self.last_census_count = 0
        self.census_trace: List[int] = []
        # Grammar rule count at the time of each census, so the trace can
        # be judged against the grammar size it ran over.
        self.rule_count_trace: List[int] = []
        self._registered = True
        grammar.register_observer(self)

    # ------------------------------------------------------------------
    # grammar observer protocol
    # ------------------------------------------------------------------
    def rule_changed(self, head: Symbol) -> None:
        self._dirty.add(head)

    def rule_removed(self, head: Symbol) -> None:
        self._dirty.add(head)

    def detach(self) -> None:
        """Unregister from the grammar (the index goes stale after)."""
        if self._registered:
            self._grammar.unregister_observer(self)
            self._registered = False

    # ------------------------------------------------------------------
    # building and incremental maintenance
    # ------------------------------------------------------------------
    def build(
        self,
        seed_rules: Optional[Iterable[Symbol]] = None,
        usage_map: Optional[Dict[Symbol, int]] = None,
    ) -> None:
        """Initial census.

        With ``seed_rules=None`` every (non-opaque) rule is censused --
        the one full-grammar pass of a compression run.  With a seed set,
        only the seed plus its digram frontier (rules whose resolutions
        pass through seed rules) is censused: digrams wholly inside
        untouched rules were already handled by the previous run and are
        deliberately left alone (dirty-rule-scoped recompression).
        """
        self.builds += 1
        grammar = self._grammar
        for head in grammar.rules:
            self._refresh_structure(head)
        if usage_map is None:
            usage_map = self.usage_from_structure()
        resolver = Resolver(grammar, self._opaque, barriers=self._barriers)
        order = anti_sl_order(grammar)
        if seed_rules is not None:
            dirty = {h for h in seed_rules if grammar.has_rule(h)}
            affected = dirty | self._propagated(dirty)
            order = [head for head in order if head in affected]
        census_count = 0
        for head in order:
            if self._census_rule(head, resolver, usage_map):
                census_count += 1
        self.last_census_count = census_count
        self.census_trace.append(census_count)
        self.rule_count_trace.append(len(grammar.rules))
        self._blowup_budget = max(2 * self._total_edges,
                                  self._total_edges + 64)
        self._flush_queue()
        self._dirty.clear()

    def apply_round(
        self,
        clean_edits: Optional[Dict[Symbol, List]] = None,
        collect_garbage: bool = True,
    ) -> List[Symbol]:
        """Fold one replacement round's mutations into the index.

        ``clean_edits`` maps rules whose *only* mutations were intra-rule
        digram replacements to their ordered
        :data:`~repro.core.rewrite.EdgeReplacement` logs; those rules are
        adapted edge-locally.  Every other rule reported through the
        observer channel since the last call -- plus the rules whose
        resolutions pass through a changed interface -- is dropped and
        re-censused; the rest keep their stored occurrences, with weights
        adjusted for usage shifts by plain dict arithmetic.  With
        ``collect_garbage`` (the default), rules whose usage dropped to
        zero are removed from the grammar first (the usage table needed
        for the weights doubles as the garbage detector).  Returns the
        removed rule heads.

        Nothing here walks the whole grammar's right-hand sides: usage and
        reference counts come from the cached callee histograms, so a
        round costs O(touched rules + rule count) dictionary work instead
        of O(|G|) node visits.
        """
        grammar = self._grammar
        dirty = self._dirty
        self._dirty = set()
        interface_dirty: Set[Symbol] = set()
        for head in dirty:
            log = clean_edits.get(head) if clean_edits else None
            if log and self._patch_structure_clean(head, log):
                continue  # interface provably unchanged
            if self._refresh_structure(head):
                interface_dirty.add(head)
        usage_map = self.usage_from_structure()
        removed: List[Symbol] = []
        if collect_garbage:
            removed = [
                head for head, count in usage_map.items()
                if count == 0 and grammar.has_rule(head)
            ]
            for head in removed:
                grammar.remove_rule(head)  # notifies observers, incl. self
            if removed:
                dirty |= self._dirty
                self._dirty = set()
                for head in removed:
                    if self._refresh_structure(head):
                        interface_dirty.add(head)
        propagated = self._propagated(interface_dirty)
        # Local-edit adaptation applies only where nothing but clean
        # replacements/inlines happened *and* no resolution chain out of
        # the rule was invalidated by a neighbor's interface change.
        adapt: Dict[Symbol, List] = {}
        if clean_edits:
            for head, log in clean_edits.items():
                if (log and head not in propagated
                        and head not in removed and grammar.has_rule(head)
                        and head in self._by_rule):
                    adapt[head] = log
        rescan = dirty - set(adapt)
        # Rules affected *only* through a neighbor's interface change keep
        # their local occurrences (provably untouched: the rule itself did
        # not change) and re-resolve just the crossing generators, in rule
        # preorder.  Applies only to rules inside the compression scope
        # (censused before; dirty-seeded runs leave the rest alone).
        partial = {
            head for head in propagated
            if head not in rescan and head not in adapt
            and head in self._scope and head not in self._opaque
            and grammar.has_rule(head)
        }
        for head in rescan:
            self._drop_rule(head)
        # Usage refresh for surviving rules: adjust weights by the usage
        # delta -- dict arithmetic only, no resolution walks.  Runs before
        # adaptation so edge deltas apply at the new usage.
        for head, old_weight in list(self._rule_usage.items()):
            new_weight = usage_map.get(head, 0)
            if new_weight == old_weight:
                continue
            delta = new_weight - old_weight
            for digram, occs in self._by_rule[head].items():
                self._weights[digram] = (
                    self._weights.get(digram, 0) + delta * len(occs)
                )
                self._changed_digrams.add(digram)
            self._rule_usage[head] = new_weight
        resolver = Resolver(grammar, self._opaque, barriers=self._barriers)
        for head, log in adapt.items():
            self._adapt_rule(head, log, resolver, usage_map)
        census_count = 0
        for head in self._order_affected(rescan):
            if self._census_rule(head, resolver, usage_map):
                census_count += 1
        for head in self._order_affected(partial):
            self._rescan_crossing(head, resolver, usage_map)
            census_count += 1
        self.last_census_count = census_count
        self.census_trace.append(census_count)
        self.rule_count_trace.append(len(grammar.rules))
        self._flush_queue()
        return removed

    # ------------------------------------------------------------------
    # derived grammar properties from the cached structure maps
    # ------------------------------------------------------------------
    def usage_from_structure(self) -> Dict[Symbol, int]:
        """``usageG`` recomputed from the cached callee histograms.

        Equivalent to :func:`repro.grammar.properties.usage` but
        O(rules + call edges) symbol-level work -- no right-hand sides are
        walked.  Valid whenever the structure maps are current (after
        ``build``/``apply_round``; within ``apply_round`` after the dirty
        refresh).
        """
        grammar = self._grammar
        counts = self._callee_counts
        topo = self._topo
        result: Dict[Symbol, int] = {head: 0 for head in grammar.rules}
        result[grammar.start] = 1
        # Descending topological level puts every caller before all of its
        # callees (the _assign_topo invariant) -- no graph walk needed.
        for head in sorted(
            grammar.rules, key=lambda rule: topo.get(rule, 0), reverse=True
        ):
            weight = result[head]
            if not weight:
                continue
            for callee, count in counts.get(head, {}).items():
                result[callee] = result.get(callee, 0) + weight * count
        return result

    def reference_counts_live(self) -> Dict[Symbol, int]:
        """``|refG(Q)|`` per rule head, as of the last build/apply_round.

        This is exactly the round-start snapshot
        :class:`~repro.core.replace_optimized.OptimizedReplacer` expects
        (rules created mid-round are deliberately absent).  The returned
        dict is the live aggregate -- treat it as read-only.
        """
        return self._refs_total

    def note_new_rule(self, head: Symbol) -> None:
        """Expose a just-installed rule in :meth:`reference_counts_live`
        (zero references) before the next ``apply_round``.

        The replacement round's snapshot semantics require the fresh
        digram rule to be *cached at zero* -- exactly what the historical
        ``reference_counts(grammar)`` walk reported for it -- rather than
        tracked as a round-created rule.
        """
        self._refs_total.setdefault(head, 0)

    def order_rules(self, heads: Iterable[Symbol]) -> List[Symbol]:
        """Callees-first (anti-SL) order restricted to ``heads``, from the
        cached call graph -- the processing order a replacement round
        needs, without an O(|G|) ``anti_sl_order`` walk."""
        return self._order_affected(set(heads))

    def referencers_live(self) -> Dict[Symbol, Set[Symbol]]:
        """``symbol -> rule heads referencing it``, copied from the cached
        structure maps.  Together with :meth:`reference_counts_live`,
        :meth:`rule_edges_live` and :meth:`anti_sl_order_live` this is the
        whole setup the pruning phase historically recomputed with
        full-grammar walks (``reference_counts`` + two ``sl_order`` DFS
        passes + per-rule ``edge_count``); handing the cached maps over is
        what lets :func:`repro.repair.pruning.prune_grammar` run without
        a single whole-grammar scan per recompression."""
        return {
            symbol: set(heads)
            for symbol, heads in self._referencers.items()
            if heads
        }

    def rule_edges_live(self) -> Dict[Symbol, int]:
        """Per-rule RHS edge counts, as of the last build/apply_round."""
        return dict(self._rule_edges)

    def anti_sl_order_live(self) -> List[Symbol]:
        """A callees-first order over every current rule, derived from
        the maintained topological levels (no call-graph walk)."""
        return self._order_affected(set(self._grammar.rules))

    def grammar_size(self) -> int:
        """``|G|`` in edges, tracked incrementally at structure refreshes
        (equal to ``Grammar.size`` whenever the structure maps are
        current)."""
        return self._total_edges

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def best(self, kin: int) -> Optional[Tuple[Digram, int]]:
        """Pop the most frequent appropriate digram (or ``None``).

        Accept-and-discard: digrams marked dead (a failed replacement)
        are dropped at pop time -- the queue itself absorbs the old
        ``dead_digrams`` workaround.
        """
        def accept(digram: Digram, weight: int) -> bool:
            if digram in self._dead or not digram.is_appropriate(kin, weight):
                return False
            # |G| economics: each textual replacement removes one edge,
            # the fresh rule costs rank+1 edges.  Strictly profitable
            # digrams and digrams over document symbols (whose
            # replacement isolates shared-rule interiors and enables
            # later alignment) are always worth it.  Break-even-or-losing
            # digrams over already-opaque digram rules are accepted only
            # while the intermediate grammar stays inside the paper's
            # bounded blow-up: on update-accumulated grammars such
            # replacements can mint their own successors forever (each
            # wraps the same sites one level deeper), a ladder that blows
            # the grammar up without bound and that pruning cannot
            # recover from.  Budget rejection is deliberately permanent
            # (pop_best discards rejected entries): re-offering such a
            # digram after the grammar shrinks back under budget would
            # re-ignite the same ladder.
            if self._counts.get(digram, 0) >= digram.rank + 1:
                return True
            if not (digram.parent in self._opaque
                    or digram.child in self._opaque):
                return True
            return self._total_edges <= self._blowup_budget

        return self.queue.pop_best(accept)

    def occurrences(self, digram: Digram) -> List[GrammarOccurrence]:
        """Stored occurrences, preorder within each rule."""
        result: List[GrammarOccurrence] = []
        for per_rule in self._by_rule.values():
            occs = per_rule.get(digram)
            if occs:
                result.extend(occs.values())
        return result

    def weight(self, digram: Digram) -> int:
        return self._weights.get(digram, 0)

    def weights(self) -> Dict[Digram, int]:
        """Snapshot of the current usage-weighted digram counts."""
        return dict(self._weights)

    def mark_dead(self, digram: Digram) -> None:
        """Never offer ``digram`` again (its replacement failed)."""
        self._dead.add(digram)

    def censused_rules(self) -> Set[Symbol]:
        """Rules with live occurrence tables."""
        return set(self._by_rule)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _is_transparent(self, symbol: Symbol) -> bool:
        return (symbol.is_nonterminal and symbol not in self._opaque
                and symbol not in self._barriers)

    def _refresh_structure(self, head: Symbol) -> bool:
        """Recompute ``head``'s reference/boundary sets and interface
        signature (or drop them if the rule is gone), keeping the reverse
        maps in sync.  Returns True when the interface changed -- the only
        case in which other rules' stored occurrences can be affected."""
        refs_total = self._refs_total
        for symbol, count in self._callee_counts.pop(head, {}).items():
            referencers = self._referencers.get(symbol)
            if referencers is not None:
                referencers.discard(head)
            refs_total[symbol] = refs_total.get(symbol, 0) - count
        for symbol in self._boundary.pop(head, ()):
            boundary_refs = self._boundary_refs.get(symbol)
            if boundary_refs is not None:
                boundary_refs.discard(head)
        old_signature = self._interface.pop(head, None)
        self._total_edges -= self._rule_edges.pop(head, 0)
        grammar = self._grammar
        if not grammar.has_rule(head):
            self._topo.pop(head, None)
            self._scope.discard(head)
            return old_signature is not None
        rhs = grammar.rules[head]
        callees: Dict[Symbol, int] = {}
        boundary: Set[Symbol] = set()
        param_parents: List[Tuple[int, int, Symbol, int]] = []
        node_total = 0
        if rhs.symbol.is_nonterminal:
            # Descending resolutions continue through the rule root.
            boundary.add(rhs.symbol)
        stack = [rhs]
        while stack:
            node = stack.pop()
            node_total += 1
            symbol = node.symbol
            if symbol.is_nonterminal:
                callees[symbol] = callees.get(symbol, 0) + 1
            elif symbol.is_parameter:
                parent = node.parent
                if parent is not None:
                    param_parents.append((
                        symbol.param_index, id(parent), parent.symbol,
                        node.child_index(),
                    ))
                    if parent.symbol.is_nonterminal:
                        # Ascending resolutions jump through parameter
                        # parents.
                        boundary.add(parent.symbol)
            stack.extend(node.children)
        param_parents.sort()
        signature = (id(rhs), rhs.symbol, tuple(param_parents))
        self._callee_counts[head] = callees
        self._boundary[head] = boundary
        self._interface[head] = signature
        self._rule_edges[head] = node_total - 1
        self._total_edges += node_total - 1
        for symbol, count in callees.items():
            self._referencers.setdefault(symbol, set()).add(head)
            refs_total[symbol] = refs_total.get(symbol, 0) + count
        refs_total.setdefault(head, 0)
        for symbol in boundary:
            self._boundary_refs.setdefault(symbol, set()).add(head)
        self._assign_topo(head, callees)
        return signature != old_signature

    def _assign_topo(self, head: Symbol, callees: Iterable[Symbol]) -> None:
        """Keep every caller's topological level above all its callees,
        bumping referencers transitively when ``head``'s level rises."""
        topo = self._topo
        level = 0
        for callee in callees:
            callee_level = topo.get(callee, 0)
            if callee_level >= level:
                level = callee_level + 1
        current = topo.get(head)
        if current is not None and current >= level:
            return
        topo[head] = level
        stack = [head]
        while stack:
            node = stack.pop()
            base = topo[node]
            for referencer in self._referencers.get(node, ()):
                if (referencer in self._callee_counts
                        and topo.get(referencer, 0) <= base):
                    topo[referencer] = base + 1
                    stack.append(referencer)

    def _patch_structure_clean(self, head: Symbol, log: List) -> bool:
        """Fold a local-edit event log into ``head``'s structure maps in
        O(edits), when the edits provably left the interface alone (no
        root replacement, no parameter re-parenting).  Returns False when
        ineligible -- the caller falls back to the full walk."""
        callees = self._callee_counts.get(head)
        if callees is None:
            return False
        root = self._grammar.rules.get(head)
        for event in log:
            if event[0] == "edge":
                new_node = event[4]
                if new_node is root or new_node.parent is None:
                    return False  # root was replaced: interface changed
                for child in new_node.children:
                    if child.symbol.is_parameter:
                        return False  # parameter re-parented
            else:  # inline
                copy_root, argument_roots = event[2], event[3]
                if copy_root is root:
                    return False  # inlined at the root: interface changed
                for argument in argument_roots:
                    if argument.symbol.is_parameter:
                        return False  # parameter re-parented under a copy

        refs_total = self._refs_total
        referencers = self._referencers

        def shift(symbol: Symbol, delta: int) -> None:
            if not symbol.is_nonterminal:
                return
            count = callees.get(symbol, 0) + delta
            if count:
                callees[symbol] = count
                if delta > 0:
                    referencers.setdefault(symbol, set()).add(head)
            else:
                callees.pop(symbol, None)
                refs = referencers.get(symbol)
                if refs is not None:
                    refs.discard(head)
            refs_total[symbol] = refs_total.get(symbol, 0) + delta

        for event in log:
            if event[0] == "edge":
                _tag, old_parent, _slot, old_child, new_node = event
                shift(old_parent.symbol, -1)
                shift(old_child.symbol, -1)
                shift(new_node.symbol, 1)
                # Each replacement removes two nodes and adds one: -1 edge.
                self._rule_edges[head] = self._rule_edges.get(head, 0) - 1
                self._total_edges -= 1
            else:
                # The histogram/size were snapshotted when the region was
                # pristine; later edge deltas of the same round apply on
                # top of them.
                _tag, inlined, _copy_root, _arguments, histogram, copied = \
                    event
                shift(inlined.symbol, -1)
                for symbol, count in histogram.items():
                    shift(symbol, count)
                # One node replaced by ``copied`` template nodes.
                self._rule_edges[head] = (
                    self._rule_edges.get(head, 0) + copied - 1
                )
                self._total_edges += copied - 1
        self._assign_topo(head, callees)
        return True

    def _propagated(self, interface_dirty: Set[Symbol]) -> Set[Symbol]:
        """Rules whose stored occurrences may have changed endpoints
        because a resolution chain out of them reaches a rule whose
        interface changed: referencers of the reverse-boundary closure."""
        through: Set[Symbol] = {
            head for head in interface_dirty if self._is_transparent(head)
        }
        stack = list(through)
        while stack:
            current = stack.pop()
            for head in self._boundary_refs.get(current, ()):
                if head not in through and self._is_transparent(head):
                    through.add(head)
                    stack.append(head)
        result: Set[Symbol] = set()
        for head in through:
            result.update(self._referencers.get(head, ()))
        return result

    def _order_affected(self, affected: Set[Symbol]) -> List[Symbol]:
        """Anti-SL (callees first) order restricted to ``affected``.

        Sorting by the maintained topological level costs
        O(k log k) in the size of the set -- no walk over the call graph.
        Ties are broken by name for determinism.
        """
        topo = self._topo
        return sorted(
            (head for head in affected if head in self._callee_counts),
            key=lambda head: (topo.get(head, 0), head.name),
        )

    def _release_claim(self, digram: Digram, occurrence: GrammarOccurrence) -> None:
        claimed = self._claims.get(digram)
        if not claimed:
            return
        key = id(occurrence.child_node)
        count = claimed.get(key, 0)
        if count <= 1:
            claimed.pop(key, None)
        else:
            claimed[key] = count - 1

    def _drop_rule(self, head: Symbol) -> None:
        """Forget ``head``'s stored occurrences, weights and claims."""
        per_rule = self._by_rule.pop(head, None)
        if per_rule is None:
            return
        self._gen_digram.pop(head, None)
        weight = self._rule_usage.pop(head)
        for digram, occs in per_rule.items():
            self._counts[digram] = self._counts.get(digram, 0) - len(occs)
            if weight:
                self._weights[digram] = (
                    self._weights.get(digram, 0) - weight * len(occs)
                )
            self._changed_digrams.add(digram)
            if digram.is_equal_label:
                for occ in occs.values():
                    self._release_claim(digram, occ)

    def _store_occurrence(
        self,
        head: Symbol,
        node: Node,
        resolver: Resolver,
        weight: int,
        per_rule: _RuleTable,
        gen_map: Dict[int, Digram],
    ) -> None:
        """Resolve and store the occurrence generated by ``node``
        (replacing a previously stored one for the same generator).

        Mirrors one iteration of :meth:`_census_rule`'s scan loop -- the
        equal-label claim protocol must stay in lockstep with it."""
        self._remove_generator(head, node, per_rule, gen_map)
        if self._barriers and (node.symbol in self._barriers
                               or node.parent.symbol in self._barriers):
            return  # shard reference edges are pinned: no digram here
        parent_node, child_index, parent_path = resolver.tree_parent(node)
        child_node, child_path = resolver.tree_child(node)
        digram = Digram(parent_node.symbol, child_index, child_node.symbol)
        if digram.is_equal_label:
            if resolver.is_transparent(node.symbol):
                # Equal-label digrams never cross a rule root.
                return
            claimed = self._claims.setdefault(digram, {})
            if id(parent_node) in claimed:
                return  # overlaps a stored occurrence
            key = id(child_node)
            claimed[key] = claimed.get(key, 0) + 1
        per_rule.setdefault(digram, {})[id(node)] = GrammarOccurrence(
            rule=head,
            generator=node,
            parent_node=parent_node,
            child_index=child_index,
            child_node=child_node,
            parent_path=parent_path,
            child_path=child_path,
        )
        gen_map[id(node)] = digram
        self._counts[digram] = self._counts.get(digram, 0) + 1
        if weight:
            self._weights[digram] = self._weights.get(digram, 0) + weight
        self._changed_digrams.add(digram)

    def _remove_generator(
        self,
        head: Symbol,
        node: Node,
        per_rule: _RuleTable,
        gen_map: Dict[int, Digram],
    ) -> None:
        digram = gen_map.pop(id(node), None)
        if digram is None:
            return
        occs = per_rule.get(digram)
        occurrence = occs.pop(id(node)) if occs else None
        if occurrence is None:
            return
        self._counts[digram] = self._counts.get(digram, 0) - 1
        weight = self._rule_usage.get(head, 0)
        if weight:
            self._weights[digram] = self._weights.get(digram, 0) - weight
        self._changed_digrams.add(digram)
        if digram.is_equal_label:
            self._release_claim(digram, occurrence)

    def _adapt_rule(
        self,
        head: Symbol,
        log: List,
        resolver: Resolver,
        usage_map: Dict[Symbol, int],
    ) -> None:
        """Apply one round's local-edit events to ``head``'s occurrences.

        ``("edge", v, i, w, x)``: every node the replacement detached is
        the ``v`` or ``w`` of some entry, and every fresh edge is incident
        to its ``x`` node -- remove the occurrences generated by
        ``{v, w} U children(x)`` and re-resolve ``{x} U children(x)``.

        ``("inline", n, copy_root, argument_roots)``: the inlined node's
        occurrence dies; every node of the inlined template copy plus the
        re-parented argument roots generates afresh (argument interiors
        are untouched originals).

        Processed in event order against the post-round tree, this leaves
        exactly the occurrence set a rescan of the rule would produce
        (modulo re-discovery of previously claim-suppressed equal-label
        occurrences, see the module docstring) -- at O(edits) instead of
        O(|rule|) cost.
        """
        per_rule = self._by_rule.get(head)
        if per_rule is None:
            # Never censused (no occurrences stored before): fall back.
            self._census_rule(head, resolver, usage_map)
            return
        self.rules_adapted += 1
        gen_map = self._gen_digram[head]
        weight = self._rule_usage.get(head, 0)
        for event in log:
            if event[0] == "edge":
                _tag, old_parent, _slot, old_child, new_node = event
                self._remove_generator(head, old_parent, per_rule, gen_map)
                self._remove_generator(head, old_child, per_rule, gen_map)
                for child in new_node.children:
                    self._remove_generator(head, child, per_rule, gen_map)
                if new_node.parent is not None:
                    self._store_occurrence(
                        head, new_node, resolver, weight, per_rule, gen_map
                    )
                for child in new_node.children:
                    if not child.symbol.is_parameter:
                        self._store_occurrence(
                            head, child, resolver, weight, per_rule, gen_map
                        )
            else:
                _tag, inlined, copy_root, argument_roots = event[:4]
                self._remove_generator(head, inlined, per_rule, gen_map)
                argument_ids = {id(root) for root in argument_roots}
                stack = [copy_root]
                while stack:
                    node = stack.pop()
                    if (not node.symbol.is_parameter
                            and node.parent is not None):
                        self._store_occurrence(
                            head, node, resolver, weight, per_rule, gen_map
                        )
                    if id(node) not in argument_ids:
                        stack.extend(node.children)

    def _rescan_crossing(
        self,
        head: Symbol,
        resolver: Resolver,
        usage_map: Dict[Symbol, int],
    ) -> None:
        """Re-resolve only the generators of ``head`` that can cross into
        other rules: nodes with a transparent symbol (child side) or a
        transparent parent (parent side).

        Used when ``head`` itself did not change but a rule its
        resolutions pass through changed interface.  Local occurrences
        (both endpoints in-rule) cannot be affected and keep their
        storage, claims and pairing; crossing candidates -- stored *or*
        previously suppressed, they are the same node set -- re-resolve
        in rule preorder.
        """
        grammar = self._grammar
        rhs = grammar.rules[head]
        weight = usage_map.get(head, 0)
        per_rule = self._by_rule.get(head)
        gen_map = self._gen_digram.get(head)
        if per_rule is None:
            per_rule = {}
            gen_map = {}
            self._by_rule[head] = per_rule
            self._gen_digram[head] = gen_map
            self._rule_usage[head] = weight
        self.rules_partially_rescanned += 1
        opaque = self._opaque
        order: List[Node] = []
        stack = [rhs]
        while stack:  # preorder
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(node.children))
        for node in order:
            parent = node.parent
            symbol = node.symbol
            if parent is None or symbol.is_parameter:
                continue
            parent_symbol = parent.symbol
            if (
                (symbol.is_nonterminal and symbol not in opaque)
                or (parent_symbol.is_nonterminal
                    and parent_symbol not in opaque)
            ):
                # _store_occurrence re-applies the barrier skip itself.
                self._store_occurrence(
                    head, node, resolver, weight, per_rule, gen_map
                )
        if not any(per_rule.values()):
            del self._by_rule[head]
            del self._gen_digram[head]
            del self._rule_usage[head]

    def _census_rule(
        self,
        head: Symbol,
        resolver: Resolver,
        usage_map: Dict[Symbol, int],
    ) -> bool:
        """RETRIEVEOCCS restricted to one rule (assumes it was dropped).

        Returns True when the rule was actually scanned (drives the
        instrumentation counters).

        The per-node body deliberately unrolls :meth:`_store_occurrence`
        into a tight loop (a census visits thousands of nodes; the
        adaptation path visits a handful) -- the equal-label claim
        protocol here and there must stay in lockstep.
        """
        grammar = self._grammar
        if head in self._opaque or not grammar.has_rule(head):
            return False
        self.rules_censused += 1
        self._scope.add(head)
        rule_weight = usage_map.get(head, 0)
        rhs = grammar.rules[head]
        per_rule: _RuleTable = {}
        gen_map: Dict[int, Digram] = {}
        self._by_rule[head] = per_rule
        self._gen_digram[head] = gen_map
        self._rule_usage[head] = rule_weight
        order: List[Node] = []
        stack = [rhs]
        while stack:  # preorder
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(node.children))
        claims = self._claims
        opaque = self._opaque
        barriers = self._barriers
        for node in order:
            parent = node.parent
            symbol = node.symbol
            if parent is None or symbol.is_parameter:
                continue
            parent_symbol = parent.symbol
            if barriers and (symbol in barriers
                             or parent_symbol in barriers):
                # Shard reference edges are pinned: replacement must
                # never absorb, move, or duplicate them.
                continue
            if not (
                (symbol.is_nonterminal and symbol not in opaque)
                or (parent_symbol.is_nonterminal
                    and parent_symbol not in opaque)
            ):
                # Both endpoints are explicit right here: skip the
                # resolver round-trips (the overwhelmingly common case in
                # update-dominated start rules).
                parent_node, child_index = parent, node.child_index()
                child_node = node
                parent_path: List[Node] = []
                child_path: List[Node] = []
            else:
                parent_node, child_index, parent_path = \
                    resolver.tree_parent(node)
                child_node, child_path = resolver.tree_child(node)
            digram = Digram(parent_node.symbol, child_index, child_node.symbol)
            if digram.is_equal_label:
                if resolver.is_transparent(node.symbol):
                    # Equal-label digrams never cross a rule root.
                    continue
                claimed = claims.setdefault(digram, {})
                if id(parent_node) in claimed:
                    continue  # overlaps a stored occurrence
                key = id(child_node)
                claimed[key] = claimed.get(key, 0) + 1
            per_rule.setdefault(digram, {})[id(node)] = GrammarOccurrence(
                rule=head,
                generator=node,
                parent_node=parent_node,
                child_index=child_index,
                child_node=child_node,
                parent_path=parent_path,
                child_path=child_path,
            )
            gen_map[id(node)] = digram
            self._counts[digram] = self._counts.get(digram, 0) + 1
            if rule_weight:
                self._weights[digram] = (
                    self._weights.get(digram, 0) + rule_weight
                )
            self._changed_digrams.add(digram)
        if not per_rule:
            del self._by_rule[head]
            del self._gen_digram[head]
            del self._rule_usage[head]
        return True

    def _flush_queue(self) -> None:
        for digram in self._changed_digrams:
            self.queue.update(digram, self._weights.get(digram, 0))
        self._changed_digrams.clear()
