"""Counters, gauges, fixed-bucket histograms, and Prometheus export.

A :class:`MetricsRegistry` holds metric *families* (one name + type +
help text) whose children are distinguished by label sets, exactly the
Prometheus data model::

    registry = MetricsRegistry()
    commits = registry.counter("repro_commits_total", "Committed ops",
                               op="rename")
    latency = registry.histogram("repro_commit_seconds",
                                 "End-to-end commit latency")
    commits.inc()
    latency.observe(0.0042)
    print(registry.render_prometheus())

Handles are resolved once at wiring time and are cheap to call; a
registry constructed with ``enabled=False`` (or :data:`NULL_REGISTRY`)
hands out shared no-op handles instead, so instrumented code never
branches per operation.  Histograms use fixed latency buckets
(:data:`LATENCY_BUCKETS`, seconds) and answer ``p50``/``p95``/``p99``
by linear interpolation inside the owning bucket while keeping exact
observation counts, sums, and min/max.

*Gauge sources* (:meth:`MetricsRegistry.register_source`) adapt the
code base's pre-existing stats objects: a source is a callable
returning a flat ``{key: number}`` dict (the common ``to_dict()``
protocol), sampled at collection/render time only -- registering one
costs the hot paths nothing.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "default_registry",
    "set_default_registry",
    "summarize_latencies",
]

#: Default histogram bucket upper bounds, in seconds: ~50us to 10s in a
#: 1-2.5-5 ladder.  Everything above the last bound lands in the +Inf
#: overflow bucket (still counted exactly; its quantiles interpolate
#: towards the observed maximum).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary key into a legal Prometheus metric name."""
    cleaned = _SANITIZE_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace(
        '"', r"\""
    )


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


# ----------------------------------------------------------------------
# metric children
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing count (one label set)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down (one label set)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution with exact counts and quantiles.

    ``observe(value)`` is O(log buckets); quantiles are answered from
    the bucket counts by linear interpolation, clamped to the observed
    ``min``/``max`` so a one-sample histogram reports that sample
    exactly rather than a bucket midpoint.
    """

    __slots__ = ("buckets", "_counts", "_lock", "count", "total",
                 "minimum", "maximum")

    def __init__(self, buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(set(float(b) for b in buckets)))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last entry: +Inf
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is +Inf."""
        with self._lock:
            return list(self._counts)

    def percentile(self, fraction: float) -> float:
        """The ``fraction``-quantile (0 < fraction <= 1) or ``nan``."""
        with self._lock:
            if self.count == 0:
                return math.nan
            rank = fraction * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if not bucket_count:
                    continue
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= rank:
                    lo = self.buckets[index - 1] if index > 0 else 0.0
                    hi = (self.buckets[index]
                          if index < len(self.buckets) else self.maximum)
                    lo = max(lo, self.minimum if previous == 0 else lo)
                    hi = min(hi, self.maximum)
                    if hi <= lo:
                        return hi
                    within = (rank - previous) / bucket_count
                    return lo + (hi - lo) * within
            return self.maximum  # pragma: no cover - defensive

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def snapshot(self) -> dict:
        """Count, sum, and headline quantiles as plain numbers."""
        with self._lock:
            count, total = self.count, self.total
        result = {
            "count": count,
            "sum_s": total,
        }
        if count:
            result.update(
                p50_s=self.percentile(0.50),
                p95_s=self.percentile(0.95),
                p99_s=self.percentile(0.99),
                min_s=self.minimum,
                max_s=self.maximum,
                mean_s=total / count,
            )
        return result


class _NullMetric:
    """The shared no-op handle a disabled registry hands out.

    Implements the whole Counter/Gauge/Histogram surface so wiring code
    resolves one handle and never branches again.
    """

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, fraction: float) -> float:
        return math.nan

    def snapshot(self) -> dict:
        return {"count": 0, "sum_s": 0.0}

    @property
    def value(self) -> float:
        return 0

    @property
    def count(self) -> int:
        return 0


NULL_METRIC = _NullMetric()


# ----------------------------------------------------------------------
# families and the registry
# ----------------------------------------------------------------------
class _Family:
    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[Tuple[Tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """A process- or document-scoped set of metric families.

    ``enabled=False`` makes every factory method return the shared
    :data:`NULL_METRIC`; nothing is declared, collected, or exported --
    the disabled mode the overhead gate in ``bench_obs`` measures.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._sources: Dict[str, Callable[[], dict]] = {}

    # -- declaration / handle resolution -------------------------------
    def _child(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Dict[str, str],
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        _check_name(name)
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already declared as {family.kind}"
                )
            child = family.children.get(key)
            if child is None:
                if kind == "counter":
                    child = Counter()
                elif kind == "gauge":
                    child = Gauge()
                else:
                    child = Histogram(family.buckets or LATENCY_BUCKETS)
                family.children[key] = child
            return child

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        if not self.enabled:
            return NULL_METRIC
        return self._child(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        if not self.enabled:
            return NULL_METRIC
        return self._child(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = LATENCY_BUCKETS,
        **labels,
    ) -> Histogram:
        if not self.enabled:
            return NULL_METRIC
        return self._child(
            name, "histogram", help_text, labels, buckets=tuple(buckets)
        )

    def register_source(self, name: str, source: Callable[[], dict]) -> None:
        """Attach a callback sampled at collection time.

        ``source()`` must return a flat ``{key: number}`` dict (the
        shared ``to_dict()`` protocol of the stats objects); non-numeric
        values are dropped at sampling time.  Re-registering a name
        replaces the previous callback, so a fresh document adopting the
        process-global registry supersedes a dead one instead of
        accumulating.
        """
        if not self.enabled:
            return
        _check_name(sanitize_metric_name(name))
        with self._lock:
            self._sources[name] = source

    def declared_names(self) -> List[str]:
        """Every family name declared so far (wiring-time declarations
        included, observed or not) -- the completeness contract the
        bench-obs smoke job checks the export against."""
        with self._lock:
            return sorted(self._families)

    # -- sampling -------------------------------------------------------
    def _sample_sources(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            sources = list(self._sources.items())
        sampled: Dict[str, Dict[str, float]] = {}
        for name, source in sources:
            try:
                raw = source()
            except Exception:  # pragma: no cover - defensive: a dying
                continue       # source must not break collection
            flat = {}
            for key, value in (raw or {}).items():
                if isinstance(value, bool):
                    flat[key] = int(value)
                elif isinstance(value, (int, float)):
                    flat[key] = value
            sampled[name] = flat
        return sampled

    def collect(self) -> dict:
        """A structured snapshot: counters, gauges, histogram summaries,
        and sampled gauge sources, keyed by family name and label set."""
        result: dict = {"counters": {}, "gauges": {},
                        "histograms": {}, "sources": self._sample_sources()}
        with self._lock:
            families = list(self._families.values())
        for family in families:
            for labels, child in sorted(family.children.items()):
                full = family.name + _format_labels(labels)
                if family.kind == "counter":
                    result["counters"][full] = child.value
                elif family.kind == "gauge":
                    result["gauges"][full] = child.value
                else:
                    result["histograms"][full] = child.snapshot()
        return result

    def summary(self) -> dict:
        """The compact operator view ``health()`` embeds: non-zero
        counters, gauges, and per-histogram count + p50/p99 (ms)."""
        collected = self.collect()
        histograms = {}
        for name, snap in collected["histograms"].items():
            if not snap["count"]:
                continue
            histograms[name] = {
                "count": snap["count"],
                "p50_ms": round(snap["p50_s"] * 1000.0, 4),
                "p99_ms": round(snap["p99_s"] * 1000.0, 4),
            }
        return {
            "counters": {k: v for k, v in collected["counters"].items()
                         if v},
            "gauges": collected["gauges"],
            "histograms": histograms,
            "sources": collected["sources"],
        }

    # -- rendering ------------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Every declared family is emitted, observed or not -- a scrape
        must see the full metric surface, not just what has already
        happened.  Gauge sources are emitted as gauges named
        ``<source>_<key>`` (sanitized).
        """
        lines: List[str] = []
        with self._lock:
            families = [self._families[name]
                        for name in sorted(self._families)]
        for family in families:
            help_text = family.help or family.name
            lines.append(f"# HELP {family.name} {help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            children = sorted(family.children.items()) or [((), None)]
            for labels, child in children:
                if family.kind == "histogram":
                    lines.extend(self._render_histogram(
                        family, labels, child))
                else:
                    value = child.value if child is not None else 0
                    lines.append(
                        f"{family.name}{_format_labels(labels)} "
                        f"{_format_value(value)}"
                    )
        for name, values in sorted(self._sample_sources().items()):
            prefix = sanitize_metric_name(name)
            for key in sorted(values):
                metric = f"{prefix}_{sanitize_metric_name(key)}"
                lines.append(f"# HELP {metric} sampled from source "
                             f"{name}")
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {_format_value(values[key])}")
        return "\n".join(lines) + "\n" if lines else ""

    def _render_histogram(self, family: _Family, labels, child) -> List[str]:
        bounds = (child.buckets if child is not None
                  else family.buckets or LATENCY_BUCKETS)
        counts = child.bucket_counts() if child is not None \
            else [0] * (len(bounds) + 1)
        lines = []
        cumulative = 0
        for bound, bucket_count in zip(bounds, counts):
            cumulative += bucket_count
            bucket_labels = labels + (("le", _format_value(bound)),)
            lines.append(
                f"{family.name}_bucket{_format_labels(bucket_labels)} "
                f"{cumulative}"
            )
        cumulative += counts[-1]
        inf_labels = labels + (("le", "+Inf"),)
        lines.append(
            f"{family.name}_bucket{_format_labels(inf_labels)} {cumulative}"
        )
        total = child.total if child is not None else 0.0
        count = child.count if child is not None else 0
        rendered = _format_labels(labels)
        lines.append(f"{family.name}_sum{rendered} {_format_value(total)}")
        lines.append(f"{family.name}_count{rendered} {count}")
        return lines

    def render_table(self) -> str:
        """A human-readable dump (the CLI ``durable metrics`` default)."""
        collected = self.collect()
        lines: List[str] = []
        if collected["counters"]:
            lines.append("counters:")
            for name, value in sorted(collected["counters"].items()):
                lines.append(f"  {name:<58} {value}")
        if collected["gauges"]:
            lines.append("gauges:")
            for name, value in sorted(collected["gauges"].items()):
                lines.append(f"  {name:<58} {_format_value(value)}")
        if collected["histograms"]:
            lines.append("histograms:            "
                         "count      p50_ms      p95_ms      p99_ms")
            for name, snap in sorted(collected["histograms"].items()):
                if snap["count"]:
                    lines.append(
                        f"  {name:<48} {snap['count']:>6} "
                        f"{snap['p50_s'] * 1000.0:>11.3f} "
                        f"{snap['p95_s'] * 1000.0:>11.3f} "
                        f"{snap['p99_s'] * 1000.0:>11.3f}"
                    )
                else:
                    lines.append(f"  {name:<48} {0:>6}")
        for name, values in sorted(collected["sources"].items()):
            lines.append(f"source {name}:")
            for key in sorted(values):
                lines.append(f"  {key:<58} {_format_value(values[key])}")
        return "\n".join(lines) + "\n" if lines else "(no metrics)\n"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    formatted = repr(float(value))
    return formatted


#: The always-disabled registry: pass as ``metrics=`` to opt a document
#: out of instrumentation entirely (every handle is :data:`NULL_METRIC`).
NULL_REGISTRY = MetricsRegistry(enabled=False)

_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry documents attach to by default."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global default; returns the previous one.

    Handles already resolved against the old registry keep feeding it
    (resolution happens at wiring time); only documents constructed
    afterwards see the new default.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


# ----------------------------------------------------------------------
# benchmark helper
# ----------------------------------------------------------------------
def summarize_latencies(samples_s: Iterable[float]) -> dict:
    """p50/p95/p99 (milliseconds) + count over raw latency samples.

    The shared shape every ``benchmarks/bench_*.py`` records into its
    ``BENCH_*.json`` (exact nearest-rank percentiles over the full
    sample list, not the bucketed estimate the live histograms use).
    """
    ordered = sorted(samples_s)
    if not ordered:
        return {"count": 0, "p50_ms": None, "p95_ms": None, "p99_ms": None}

    def rank(fraction: float) -> float:
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index] * 1000.0

    return {
        "count": len(ordered),
        "p50_ms": round(rank(0.50), 4),
        "p95_ms": round(rank(0.95), 4),
        "p99_ms": round(rank(0.99), 4),
        "mean_ms": round(sum(ordered) * 1000.0 / len(ordered), 4),
        "max_ms": round(ordered[-1] * 1000.0, 4),
    }
