"""Lightweight operation tracing: nested spans, trace ring, slow-op log.

A :class:`Tracer` keeps one span stack per thread; ``tracer.span(name,
**tags)`` (or the module-level :func:`trace_span` on the default
tracer) opens a :class:`Span` timed with ``time.perf_counter``.  When a
*root* span closes it is appended to a bounded in-memory ring
(``tracer.recent()``) so the last N operations are always inspectable;
non-root spans attach to their parent, producing a nested timing tree::

    with trace_span("commit", op="batch"):
        with trace_span("wal_append"):
            ...
        with trace_span("apply"):
            ...

Because the stacks are thread-local, spans emitted concurrently from
MVCC group-commit threads and snapshot readers can never interleave
into each other's traces; the ring append is the only shared mutation
and happens under a lock.

A tracer constructed with ``slow_op_seconds=t`` emits one structured
line through ``logging.getLogger("repro.obs.trace")`` when a root span
exceeds the threshold -- the "why was that commit slow" breadcrumb,
with the per-child breakdown inline.  A disabled tracer hands out a
shared no-op span, mirroring the null-handle design of the metrics
registry.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "NULL_TRACER",
    "Span",
    "Tracer",
    "default_tracer",
    "set_default_tracer",
    "trace_span",
]

_LOGGER = logging.getLogger("repro.obs.trace")

_trace_ids = itertools.count(1)


class Span:
    """One timed operation, possibly with nested child spans."""

    __slots__ = ("name", "tags", "start", "end", "children",
                 "thread_id", "thread_name", "trace_id")

    def __init__(self, name: str, tags: Dict[str, object],
                 trace_id: Optional[int] = None) -> None:
        self.name = name
        self.tags = tags
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.children: List[Span] = []
        current = threading.current_thread()
        self.thread_id = current.ident
        self.thread_name = current.name
        self.trace_id = trace_id

    @property
    def duration_s(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "duration_ms": round(self.duration_s * 1000.0, 4),
        }
        if self.tags:
            record["tags"] = dict(self.tags)
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
            record["thread"] = self.thread_name
        if self.children:
            record["children"] = [c.to_dict() for c in self.children]
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration_s * 1000.0:.3f}ms, "
                f"children={len(self.children)})")


class _SpanContext:
    """Context manager pairing a span with its tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self.span)


class _NullSpanContext:
    """Shared no-op: resolved once at wiring time on a disabled tracer."""

    __slots__ = ()
    span = None

    def __call__(self, name: str, **tags) -> "_NullSpanContext":
        return self

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class Tracer:
    """Per-thread span stacks feeding a bounded ring of recent traces."""

    def __init__(
        self,
        ring_size: int = 256,
        slow_op_seconds: Optional[float] = None,
        logger: Optional[logging.Logger] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.slow_op_seconds = slow_op_seconds
        self._logger = logger or _LOGGER
        self._local = threading.local()
        self._ring: deque = deque(maxlen=ring_size)
        self._ring_lock = threading.Lock()

    # -- span lifecycle -------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **tags):
        """Open a span; use as ``with tracer.span("commit", op=...)``."""
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        stack = self._stack()
        trace_id = next(_trace_ids) if not stack else None
        span = Span(name, tags, trace_id=trace_id)
        stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        # Unwind to this span even if an inner span leaked (e.g. an
        # exception skipped a __exit__ on a generator-held context).
        while stack:
            top = stack.pop()
            if top.end is None:
                top.end = span.end
            if top is span:
                break
        if stack:
            stack[-1].children.append(span)
            return
        with self._ring_lock:
            self._ring.append(span)
        threshold = self.slow_op_seconds
        if threshold is not None and span.duration_s >= threshold:
            self._log_slow(span)

    def _log_slow(self, span: Span) -> None:
        tags = " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
        breakdown = " ".join(
            f"{child.name}={child.duration_s * 1000.0:.3f}ms"
            for child in span.children
        )
        self._logger.warning(
            "slow-op trace=%s name=%s duration_ms=%.3f thread=%s%s%s",
            span.trace_id,
            span.name,
            span.duration_s * 1000.0,
            span.thread_name,
            f" {tags}" if tags else "",
            f" [{breakdown}]" if breakdown else "",
        )

    # -- inspection -----------------------------------------------------
    def recent(self, limit: Optional[int] = None) -> List[Span]:
        """The most recent root spans, oldest first."""
        with self._ring_lock:
            spans = list(self._ring)
        if limit is not None:
            spans = spans[-limit:]
        return spans

    def clear(self) -> None:
        with self._ring_lock:
            self._ring.clear()


#: The always-disabled tracer; ``span()`` returns a shared no-op.
NULL_TRACER = Tracer(enabled=False)

_default_tracer = Tracer()


def default_tracer() -> Tracer:
    """The process-global tracer :func:`trace_span` uses."""
    return _default_tracer


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def trace_span(name: str, **tags):
    """Open a span on the process-global default tracer."""
    return _default_tracer.span(name, **tags)
