"""Unified observability: metrics registry, tracing, Prometheus export.

The package is zero-dependency (stdlib only) and wired through every hot
path of the system -- single-op updates, ``apply_batch`` stages,
recompression, resharding, query evaluation, and the whole durable
commit pipeline (WAL append, fsync, apply, checkpoint, recovery replay,
scrub).  Three concepts:

* :class:`~repro.obs.metrics.MetricsRegistry` -- counters, gauges, and
  fixed-bucket latency histograms (p50/p95/p99 plus exact counts), with
  callback *gauge sources* for the pre-existing stats objects
  (``BatchStats``, ``ShardStats``, index eviction counters, WAL shape)
  and a Prometheus text-exposition renderer.
* :class:`~repro.obs.tracing.Tracer` / :func:`~repro.obs.tracing
  .trace_span` -- nested spans with monotonic timings, a bounded
  in-memory ring of recent traces, and an optional slow-op threshold
  that emits one structured line through stdlib ``logging``.
* **No-op handles** -- a disabled registry (or tracer) hands out shared
  null objects at wiring time, so instrumented code keeps a single
  unconditional call per site and disabled overhead stays within the
  benchmarked 5% budget (``benchmarks/bench_obs.py``).

Instrumentation attaches per document (``CompressedXml(metrics=...)``)
with a process-global default shared by everything that does not pass
its own registry (:func:`default_registry`).
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    default_registry,
    set_default_registry,
    summarize_latencies,
)
from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    default_tracer,
    set_default_tracer,
    trace_span,
)

__all__ = [
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "default_registry",
    "default_tracer",
    "set_default_registry",
    "set_default_tracer",
    "summarize_latencies",
    "trace_span",
]
