"""High-level facade: a mutable, grammar-compressed XML document.

:class:`CompressedXml` is the API a downstream user (e.g. a DOM
implementation, the paper's motivating application) programs against:

* build from XML text / a file / an :class:`~repro.trees.unranked.XmlNode`,
* query statistics without decompression,
* update by *element index* (document order) -- rename, insert, delete,
* keep the grammar small with explicit or automatic recompression,
* serialize back to XML or to the grammar text format.

Element addressing -- mapping a document-order element index to a position
on the grammar -- goes through an owned
:class:`~repro.grammar.index.GrammarIndex`: per-rule count tables answer
``element_count``, ``tag_of`` and the index-to-preorder translation in
``O(grammar depth · rule width)`` per query, restoring the paper's promise
that updates never scale with the size of the generated document.  The
index invalidates itself per-rule through the grammar's observer channel
(updates dirty essentially just the start rule) and is rebuilt from
scratch only after a full recompression.

Example::

    doc = CompressedXml.from_xml("<log>" + "<entry/>" * 1000 + "</log>")
    doc.rename(1, "first")                  # relabel the first <entry>
    doc.insert(2, XmlNode("marker"))        # insert before element #2
    doc.delete(3)
    doc.recompress()
    assert doc.compressed_size < 60
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Union

from repro.core.grammar_repair import GrammarRePair
from repro.grammar.index import GrammarIndex
from repro.grammar.navigation import stream_preorder
from repro.grammar.serialize import format_grammar, parse_grammar
from repro.grammar.slcf import Grammar
from repro.trees.binary import decode_binary, encode_binary, encode_forest
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode
from repro.trees.xml_io import parse_xml, serialize_xml
from repro.updates import grammar_updates
from repro.updates.operations import UpdateError

__all__ = ["CompressedXml"]


class CompressedXml:
    """A grammar-compressed XML document supporting incremental updates.

    ``auto_recompress_factor``: when set to ``f``, any update that leaves
    the grammar more than ``f`` times larger than after the last
    recompression triggers GrammarRePair automatically -- the maintenance
    policy the paper's dynamic experiments emulate with fixed batches.
    """

    def __init__(
        self,
        grammar: Grammar,
        kin: int = 4,
        auto_recompress_factor: Optional[float] = None,
    ) -> None:
        self._grammar = grammar
        self._index = GrammarIndex(grammar)
        self._kin = kin
        self._auto_factor = auto_recompress_factor
        self._last_compressed_size = max(1, grammar.size)
        self.updates_applied = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_document(
        cls,
        document: XmlNode,
        kin: int = 4,
        compress: bool = True,
        auto_recompress_factor: Optional[float] = None,
    ) -> "CompressedXml":
        """Compress a structure tree into a document."""
        alphabet = Alphabet()
        binary = encode_binary(document, alphabet)
        if compress:
            grammar = GrammarRePair(kin=kin).compress_tree(
                binary, alphabet, copy_input=False
            )
        else:
            grammar = Grammar.from_tree(binary, alphabet)
        return cls(grammar, kin=kin,
                   auto_recompress_factor=auto_recompress_factor)

    @classmethod
    def from_xml(cls, text: str, **kwargs) -> "CompressedXml":
        """Parse structure-only XML text and compress it."""
        return cls.from_document(parse_xml(text), **kwargs)

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "CompressedXml":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_xml(handle.read(), **kwargs)

    @classmethod
    def from_grammar_file(cls, path: str, **kwargs) -> "CompressedXml":
        """Load a previously saved grammar (text format)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls(parse_grammar(handle.read()), **kwargs)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def grammar(self) -> Grammar:
        """The underlying SLCF grammar.

        Mutating it directly is safe for the index only when done through
        ``set_rule``/``remove_rule``/``notify_rule_changed`` (the observer
        channel); raw node surgery without notification is the caller's
        risk.
        """
        return self._grammar

    @property
    def index(self) -> GrammarIndex:
        """The owned structural index (shared with the update layer)."""
        return self._index

    @property
    def compressed_size(self) -> int:
        """Grammar size in edges (the paper's c-edges)."""
        return self._grammar.size

    @property
    def element_count(self) -> int:
        """Number of elements, answered from the index's count tables."""
        return self._index.element_count

    @property
    def edge_count(self) -> int:
        """Edges of the (unranked) document tree."""
        return self.element_count - 1

    @property
    def compression_ratio(self) -> float:
        """c-edges / #edges, as in Table III (1.0 for a lone root)."""
        edges = self.edge_count
        if edges == 0:
            return 1.0
        return self.compressed_size / edges

    def tags(self) -> Iterator[str]:
        """Element tags in document order, streamed without decompression."""
        for symbol in stream_preorder(self._grammar):
            if not symbol.is_bottom:
                yield symbol.name

    def tag_of(self, element_index: int) -> str:
        """Tag of the ``element_index``-th element (document order)."""
        return self._index.tag_of(element_index)

    # ------------------------------------------------------------------
    # element-index addressing (all O(depth) via the grammar index)
    # ------------------------------------------------------------------
    def _binary_index_of_element(self, element_index: int) -> int:
        """Map an element index to its binary-tree preorder index."""
        return self._index.preorder_of_element(element_index)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def rename(self, element_index: int, new_tag: str) -> None:
        """Relabel the ``element_index``-th element (document order)."""
        position, steps = self._index.resolve_element(element_index)
        grammar_updates.rename(self._grammar, position, new_tag,
                               grammar_index=self._index, steps=steps)
        self._after_update()

    def insert(
        self,
        element_index: int,
        content: Union[XmlNode, Sequence[XmlNode]],
    ) -> None:
        """Insert elements *before* the ``element_index``-th element."""
        siblings = [content] if isinstance(content, XmlNode) else list(content)
        fragment = encode_forest(siblings, self._grammar.alphabet)
        position, steps = self._index.resolve_element(element_index)
        grammar_updates.insert(self._grammar, position, fragment,
                               grammar_index=self._index, steps=steps)
        self._after_update()

    def append_child(
        self,
        parent_element_index: int,
        content: Union[XmlNode, Sequence[XmlNode]],
    ) -> None:
        """Append elements as the last children of an element.

        This is the "insert on a null pointer" case of Section V-C: the
        insertion point is the terminating ``⊥`` of the parent's child
        list, found by walking the parent's subtree on the grammar.
        """
        siblings = [content] if isinstance(content, XmlNode) else list(content)
        fragment = encode_forest(siblings, self._grammar.alphabet)
        position = self._end_of_children_position(parent_element_index)
        grammar_updates.insert(self._grammar, position, fragment,
                               grammar_index=self._index)
        self._after_update()

    def _end_of_children_position(self, parent_element_index: int) -> int:
        """Binary preorder index of the parent's child-list terminator.

        Answered by the index via subtree sizes: the terminator is the
        preorder-last node of the parent's first-child subtree, so no
        stream is walked (let alone materialized).
        """
        return self._index.end_of_children_position(parent_element_index)

    def delete(self, element_index: int) -> None:
        """Delete the ``element_index``-th element and its subtree."""
        if element_index == 0:
            raise UpdateError("deleting the document root is not allowed")
        position, steps = self._index.resolve_element(element_index)
        grammar_updates.delete(self._grammar, position,
                               grammar_index=self._index, steps=steps)
        self._after_update()

    def _after_update(self) -> None:
        self.updates_applied += 1
        if self._auto_factor is None:
            return
        if self._grammar.size > self._auto_factor * self._last_compressed_size:
            self.recompress()

    # ------------------------------------------------------------------
    # maintenance and output
    # ------------------------------------------------------------------
    def recompress(self) -> int:
        """Run GrammarRePair in place; returns the new grammar size."""
        self._grammar = GrammarRePair(kin=self._kin).compress(
            self._grammar, in_place=True
        )
        # Recompression rewrites essentially every rule; a wholesale reset
        # is cheaper than replaying thousands of per-rule invalidations.
        self._index.invalidate_all()
        self._last_compressed_size = max(1, self._grammar.size)
        return self._grammar.size

    def to_document(self, budget: int = 50_000_000) -> XmlNode:
        """Decompress to a structure tree (guarded by a node budget)."""
        from repro.grammar.derivation import expand

        return decode_binary(expand(self._grammar, budget=budget))

    def to_xml(self, indent: Optional[int] = None, budget: int = 50_000_000) -> str:
        """Decompress and serialize to XML text."""
        return serialize_xml(self.to_document(budget=budget), indent=indent)

    def save_grammar(self, path: str) -> None:
        """Persist the grammar in the text format."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(format_grammar(self._grammar))

    def __repr__(self) -> str:
        return (
            f"<CompressedXml {self.element_count} elements, "
            f"grammar size {self.compressed_size}>"
        )
