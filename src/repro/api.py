"""High-level facade: a mutable, grammar-compressed XML document.

:class:`CompressedXml` is the API a downstream user (e.g. a DOM
implementation, the paper's motivating application) programs against:

* build from XML text / a file / an :class:`~repro.trees.unranked.XmlNode`,
* query statistics without decompression,
* evaluate label paths (:meth:`CompressedXml.select` /
  :meth:`CompressedXml.count`) and navigate document axes
  (:meth:`CompressedXml.parent_of`, :meth:`CompressedXml.children`, ...)
  directly on the grammar; extract one subtree's XML by partial
  derivation (:meth:`CompressedXml.subtree_xml`),
* update by *element index* (document order) -- rename, insert, delete,
* apply whole bursts of updates as one program (:meth:`CompressedXml.batch`
  / :meth:`CompressedXml.apply_batch`): the union of the derivation paths
  is isolated in a single pass sharing rule inlines along common prefixes,
  and the maintenance policy settles once per batch,
* keep the grammar small with explicit or automatic recompression,
* serialize back to XML or to the grammar text format.

Element addressing -- mapping a document-order element index to a position
on the grammar -- goes through an owned
:class:`~repro.grammar.index.GrammarIndex`: per-rule count tables answer
``element_count``, ``tag_of`` and the index-to-preorder translation in
``O(grammar depth · rule width)`` per query, restoring the paper's promise
that updates never scale with the size of the generated document.  The
index invalidates itself per-rule through the grammar's observer channel
(updates dirty essentially just the start rule).

Recompression is *dirty-rule-scoped* by default: a second observer
records the rules mutated since the last recompression, and
:meth:`CompressedXml.recompress` seeds GrammarRePair's occurrence census
with only those rules plus their digram frontier (see
:mod:`repro.core.occurrence_index`).  The automatic policy falls back to
a full -- still incrementally maintained -- census when the dirty mass
dominates the grammar, where a scoped census would miss cross-rule
digram weights and erode the compression ratio.  Because only touched
rules are rewritten, the GrammarIndex keeps its cached count tables for
the untouched bulk of the grammar -- no ``invalidate_all`` on either
incremental path; the per-rule observer evictions that fire during
compression are the entire invalidation story.  Construct with
``incremental_recompress=False`` for the historical behavior (full
per-round rescans + wholesale index reset), kept as the benchmark
baseline.

Example::

    doc = CompressedXml.from_xml("<log>" + "<entry/>" * 1000 + "</log>")
    doc.rename(1, "first")                  # relabel the first <entry>
    doc.insert(2, XmlNode("marker"))        # insert before element #2
    doc.delete(3)
    doc.recompress()
    assert doc.compressed_size < 60
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from typing import Iterator, List, Optional, Sequence, Set, Union, TYPE_CHECKING

from repro.core.grammar_repair import GrammarRePair, GrammarRePairStats
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import trace_span
from repro.grammar.concurrency import ShardLockTable
from repro.grammar.index import GrammarIndex
from repro.grammar.serialize import format_grammar, parse_grammar
from repro.grammar.sharding import ShardManager
from repro.grammar.slcf import Grammar, GrammarSizeTracker, RuleTouchRecorder
from repro.trees.binary import decode_binary, encode_binary, encode_forest
from repro.trees.node import deep_copy
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode
from repro.trees.xml_io import parse_xml, serialize_xml
from repro.query.engine import (
    count_matches,
    extract_subtree,
    read_prune_counter,
    reset_prune_counter,
)
from repro.query.engine import select as engine_select
from repro.query.label_index import LabelIndex
from repro.query.parser import parse_path
from repro.updates import grammar_updates
from repro.updates.batch import BatchBuilder, BatchOp, BatchStats, execute_batch
from repro.updates.operations import UpdateError
from repro.view import SnapshotView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.faults import StorageIO
    from repro.storage.snapshot import DocumentState
    from repro.trees.symbols import Symbol

__all__ = ["CompressedXml", "DurableXml", "SnapshotView"]


def __getattr__(name: str):
    # ``repro.api.DurableXml`` without importing the storage package (and
    # its file-format machinery) on every plain-document import.
    if name == "DurableXml":
        from repro.storage.durable import DurableXml

        return DurableXml
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ----------------------------------------------------------------------
# gauge-source samplers (module-level so the registry holds no bound
# method -- only a weakref -- to the document)
# ----------------------------------------------------------------------
def _sample_doc(ref: "weakref.ref") -> dict:
    doc = ref()
    if doc is None:
        return {}
    grammar = doc._grammar
    pins = grammar.pinned_epochs()
    return {
        "element_count": doc._index.element_count,
        "compressed_size": doc._size.total,
        "epoch": grammar.epoch,
        "pinned_snapshots": sum(pins.values()),
        "updates_applied": doc.updates_applied,
        "batches_applied": doc.batches_applied,
        "rules_inlined_total": doc.rules_inlined_total,
        "recompress_runs": doc.recompress_runs,
    }


def _sample_indexes(ref: "weakref.ref") -> dict:
    doc = ref()
    if doc is None:
        return {}
    data = {f"grammar_{key}": value
            for key, value in doc._index.to_dict().items()}
    if doc._label_index is not None:
        data.update(
            (f"label_{key}", value)
            for key, value in doc._label_index.to_dict().items()
        )
    return data


def _sample_shards(ref: "weakref.ref") -> dict:
    doc = ref()
    if doc is None or doc._shards is None:
        return {}
    data = doc._shards.stats.to_dict()
    data["shard_count"] = len(doc._shards.heads)
    return data


def _sample_last_batch(ref: "weakref.ref") -> dict:
    doc = ref()
    if doc is None or doc.last_batch_stats is None:
        return {}
    return doc.last_batch_stats.to_dict()


def _sample_kernel(ref: "weakref.ref") -> dict:
    doc = ref()
    if doc is None:
        return {}
    info = doc._index.kernel_info()
    info["enabled"] = int(info["enabled"])
    return info


class CompressedXml:
    """A grammar-compressed XML document supporting incremental updates.

    ``auto_recompress_factor``: when set to ``f``, any update that leaves
    the grammar more than ``f`` times larger than after the last
    recompression triggers GrammarRePair automatically -- the maintenance
    policy the paper's dynamic experiments emulate with fixed batches.

    ``shard_width``: when set to ``W``, the start rule is kept at
    ``O(W)`` RHS nodes by the spine-sharding policy
    (:class:`repro.grammar.sharding.ShardManager`): the accumulated
    update mass lives in a balanced hierarchy of shard rules, isolation
    rewrites one ``O(W)`` shard body per update, the persistent indexes
    recompute an ``O(W · log)`` ancestor chain instead of the whole
    start RHS, and a post-epoch ``reshard()`` pass (same hook as the
    auto-recompress policy) rebalances rules that drift past ``2 * W``
    or below ``W // 2``.  Unset (the default), the historical
    single-start-rule behavior is preserved.
    """

    def __init__(
        self,
        grammar: Grammar,
        kin: int = 4,
        auto_recompress_factor: Optional[float] = None,
        incremental_recompress: bool = True,
        shard_width: Optional[int] = None,
        shard_merge_hysteresis: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        use_kernel: Optional[bool] = None,
    ) -> None:
        self._grammar = grammar
        # Writer lock: every mutator (and snapshot(), which must pin
        # between operations, never mid-surgery) runs under it.  Plain
        # reads on the live document are *not* locked -- concurrent
        # readers should hold a snapshot() instead.
        self._lock = threading.RLock()
        # Flat-array descent kernel (repro.grammar.kernel): None defers
        # to REPRO_USE_KERNEL (default on).  Remembered so MVCC snapshot
        # views inherit the same setting for their own indexes.
        self._use_kernel = use_kernel
        self._index = GrammarIndex(grammar, use_kernel=use_kernel)
        # The label census index is created on first query use -- write-only
        # workloads never pay for it.  Once created it is maintained through
        # the same observer channel as the structural index.
        self._label_index: Optional[LabelIndex] = None
        self._kin = kin
        self._auto_factor = auto_recompress_factor
        self._incremental = incremental_recompress
        # Rules mutated since the last recompression; recompress() scopes
        # its census to exactly this set (plus the digram frontier).
        self._dirty = RuleTouchRecorder()
        grammar.register_observer(self._dirty)
        # |G| maintained incrementally: the auto-recompress policy reads
        # the size after every update, and a full Grammar.size walk there
        # would undo the O(width)-per-update bound sharding buys.
        self._size = GrammarSizeTracker(grammar)
        # Spine sharding: with a width budget, the start rule (and every
        # shard) is kept at O(shard_width) RHS nodes by a balanced shard
        # hierarchy; isolation then rewrites one O(width) shard body per
        # update instead of an unboundedly grown start RHS, and the
        # reshard() pass rebalances whatever each epoch touched.
        self._shards: Optional[ShardManager] = None
        if shard_width is not None:
            shard_kwargs = {}
            if shard_merge_hysteresis is not None:
                shard_kwargs["merge_hysteresis"] = shard_merge_hysteresis
            self._shards = ShardManager(grammar, width=shard_width,
                                        **shard_kwargs)
        # Per-shard commit locks for concurrent writers (the durable
        # layer's group-commit path rides these); unsharded documents
        # fall back to one document-wide "shard" (the start rule).
        self._shard_locks = ShardLockTable()
        # Dirty scoping is only sound relative to a compressed baseline: a
        # grammar that was never RePair'd (compress=False, grammar files)
        # gets one full run first.
        self._baselined = False
        self._last_compressed_size = max(1, grammar.size)
        self.updates_applied = 0
        self.batches_applied = 0
        # Rule inlines performed by path isolation across all updates --
        # the quantity batched application amortizes (shared derivation
        # prefixes are inlined once per batch group, not once per op).
        self.rules_inlined_total = 0
        self.recompress_runs = 0
        self.recompress_seconds = 0.0
        # Occurrence-maintenance share of recompress_seconds (census,
        # digram selection, per-round count upkeep) -- see
        # GrammarRePairStats.maintenance_seconds.
        self.maintenance_seconds = 0.0
        # Accumulated instrumentation over all recompressions: rules fully
        # censused (O(|rule|) resolution scans) vs rules brought up to
        # date below census cost (event adaptation / crossing rescans).
        self.rules_censused_total = 0
        self.rules_adapted_total = 0
        self.last_repair_stats: Optional[GrammarRePairStats] = None
        self.last_batch_stats: Optional[BatchStats] = None
        # Observability: resolve every metric handle once, here.  With a
        # disabled registry (or NULL_REGISTRY) each handle is the shared
        # no-op object, so the per-operation cost of instrumentation is
        # two clock reads and two no-op calls -- the budget
        # benchmarks/bench_obs.py gates at 5%.
        self._bind_metrics(metrics)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _bind_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Attach to ``registry`` (the process-global default when
        ``None``) and resolve every hot-path metric handle.

        Declaring the full family surface here -- before a single
        observation -- is deliberate: a Prometheus scrape of a fresh
        document must already show every metric this document can emit.
        """
        obs = self._obs = (registry if registry is not None
                           else default_registry())
        update_ops = ("rename", "insert", "append_child", "delete")
        self._m_update = {
            op: obs.histogram(
                "repro_update_seconds",
                "Latency of one single-op update", op=op)
            for op in update_ops
        }
        self._m_updates_total = {
            op: obs.counter(
                "repro_updates_total",
                "Single-op updates applied", op=op)
            for op in update_ops
        }
        self._m_batch = obs.histogram(
            "repro_batch_seconds", "End-to-end apply_batch latency")
        self._m_batch_stage = {
            stage: obs.histogram(
                "repro_batch_stage_seconds",
                "apply_batch stage latency", stage=stage)
            for stage in ("plan", "isolate", "apply", "settle")
        }
        self._m_batches_total = obs.counter(
            "repro_batches_total", "Batches applied")
        self._m_recompress = obs.histogram(
            "repro_recompress_seconds", "End-to-end recompression latency")
        self._m_recompress_stage = {
            stage: obs.histogram(
                "repro_recompress_stage_seconds",
                "Recompression stage latency", stage=stage)
            for stage in ("census", "rounds", "prune")
        }
        self._m_recompress_total = obs.counter(
            "repro_recompress_total", "Recompression runs")
        self._m_query_stage = {
            stage: obs.histogram(
                "repro_query_stage_seconds",
                "Query stage latency", stage=stage)
            for stage in ("parse", "walk")
        }
        self._m_queries_total = {
            kind: obs.counter(
                "repro_queries_total", "Queries evaluated", kind=kind)
            for kind in ("select", "count")
        }
        self._m_query_pruned = obs.counter(
            "repro_query_pruned_subtrees_total",
            "Derivation subtrees skipped by census pruning")
        self._m_query_matches = obs.counter(
            "repro_query_matches_total", "Elements returned by select()")
        # Kernel cold events (pack builds / observer evictions) go through
        # registry counters; the per-descent hit/miss tallies stay plain
        # ints on the kernel and export via the repro_kernel gauge source.
        # The families are declared even with the kernel disabled so a
        # scrape of a fresh document always shows the full surface.
        kernel_builds = obs.counter(
            "repro_kernel_builds_total", "Flat rule packs built")
        kernel_evictions = obs.counter(
            "repro_kernel_evictions_total",
            "Flat rule packs evicted through the observer channel")
        kernel = self._index.kernel
        if kernel is not None:
            kernel.set_metric_handles(kernel_builds, kernel_evictions)
        if self._shards is not None:
            self._shards.bind_metrics(obs)
        # Gauge sources sample the live stats objects at collection time
        # only.  The weakref keeps the (often process-global) registry
        # from pinning this document alive; re-registration under the
        # same name replaces a dead document's source with the new one.
        ref = weakref.ref(self)
        obs.register_source(
            "repro_doc", lambda: _sample_doc(ref))
        obs.register_source(
            "repro_index", lambda: _sample_indexes(ref))
        obs.register_source(
            "repro_shard", lambda: _sample_shards(ref))
        obs.register_source(
            "repro_batch_last", lambda: _sample_last_batch(ref))
        obs.register_source(
            "repro_kernel", lambda: _sample_kernel(ref))

    @property
    def metrics_registry(self) -> MetricsRegistry:
        """The registry this document's instrumentation feeds."""
        return self._obs

    def metrics(self) -> dict:
        """Compact metrics snapshot: counters, gauges, histogram
        p50/p99, and the sampled stats-object sources."""
        return self._obs.summary()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_document(
        cls,
        document: XmlNode,
        kin: int = 4,
        compress: bool = True,
        auto_recompress_factor: Optional[float] = None,
        **kwargs,
    ) -> "CompressedXml":
        """Compress a structure tree into a document."""
        alphabet = Alphabet()
        binary = encode_binary(document, alphabet)
        if compress:
            grammar = GrammarRePair(kin=kin).compress_tree(
                binary, alphabet, copy_input=False
            )
        else:
            grammar = Grammar.from_tree(binary, alphabet)
        doc = cls(grammar, kin=kin,
                  auto_recompress_factor=auto_recompress_factor, **kwargs)
        doc._baselined = compress
        return doc

    @classmethod
    def from_xml(cls, text: str, **kwargs) -> "CompressedXml":
        """Parse structure-only XML text and compress it."""
        return cls.from_document(parse_xml(text), **kwargs)

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "CompressedXml":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_xml(handle.read(), **kwargs)

    @classmethod
    def from_grammar_file(cls, path: str, **kwargs) -> "CompressedXml":
        """Load a previously saved grammar (text format)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls(parse_grammar(handle.read()), **kwargs)

    @classmethod
    def from_state(cls, state: "DocumentState", **kwargs) -> "CompressedXml":
        """Resume a document from exported state (see :meth:`export_state`).

        The shard hierarchy is re-attached without resharding, the
        structural index adopts the per-rule segments without walking a
        single rule, and the label index adopts the censuses without
        re-censusing -- a reload answers counting, addressing, and label
        queries immediately.  ``kwargs`` may carry runtime policy
        (``auto_recompress_factor``, ``incremental_recompress``); the
        persisted facts (``kin``, shard width) come from the state.
        """
        for fixed in ("kin", "shard_width"):
            if fixed in kwargs:
                raise TypeError(
                    f"{fixed} is restored from the snapshot state and "
                    f"cannot be overridden"
                )
        merge_hysteresis = kwargs.pop("shard_merge_hysteresis", None)
        doc = cls(state.grammar, kin=state.kin, shard_width=None, **kwargs)
        if state.shard is not None:
            restore_kwargs = {}
            if merge_hysteresis is not None:
                restore_kwargs["merge_hysteresis"] = merge_hysteresis
            doc._shards = ShardManager.restore(
                state.grammar,
                width=state.shard.width,
                prefix=state.shard.prefix,
                heads=set(state.shard.parents),
                parents=state.shard.parents,
                **restore_kwargs,
            )
            doc._shards.bind_metrics(doc._obs)
        if state.segments:
            doc._index.import_segments(state.segments)
        if state.label_counts is not None:
            label_index = LabelIndex(state.grammar)
            label_index.import_counts(state.label_counts)
            doc._label_index = label_index
        doc._baselined = state.baselined
        doc._last_compressed_size = max(1, state.last_compressed_size)
        for head in state.dirty_rules:
            if state.grammar.has_rule(head):
                doc._dirty.changed.add(head)
        return doc

    @classmethod
    def from_snapshot_file(cls, path: str, **kwargs) -> "CompressedXml":
        """Load a binary snapshot (see :meth:`save_snapshot`)."""
        from repro.storage.snapshot import read_snapshot

        return cls.from_state(read_snapshot(path), **kwargs)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def grammar(self) -> Grammar:
        """The underlying SLCF grammar.

        Mutating it directly is safe for the index only when done through
        ``set_rule``/``remove_rule``/``notify_rule_changed`` (the observer
        channel); raw node surgery without notification is the caller's
        risk.
        """
        return self._grammar

    @property
    def index(self) -> GrammarIndex:
        """The owned structural index (shared with the update layer)."""
        return self._index

    @property
    def shard_manager(self) -> Optional[ShardManager]:
        """The spine-sharding policy, or ``None`` when constructed
        without ``shard_width``."""
        return self._shards

    def _spine(self):
        """The spine for the isolation layer (``None`` when unsharded).

        The manager is passed directly: it answers shard-head membership
        (``__contains__``) for path isolation and exposes the
        ``repair_ranks`` hook the delete path needs when a deletion
        swallows a chunk's continuation.
        """
        return self._shards

    @property
    def compressed_size(self) -> int:
        """Grammar size in edges (the paper's c-edges), answered from the
        incrementally maintained tracker in O(rules dirtied since the
        last read) instead of a whole-grammar walk."""
        return self._size.total

    @property
    def element_count(self) -> int:
        """Number of elements, answered from the index's count tables."""
        return self._index.element_count

    @property
    def edge_count(self) -> int:
        """Edges of the (unranked) document tree."""
        return self.element_count - 1

    @property
    def compression_ratio(self) -> float:
        """c-edges / #edges, as in Table III (1.0 for a lone root)."""
        edges = self.edge_count
        if edges == 0:
            return 1.0
        return self.compressed_size / edges

    def tags(
        self, start: Optional[int] = None, stop: Optional[int] = None
    ) -> Iterator[str]:
        """Element tags in document order, streamed without decompression.

        Without arguments the whole document is streamed (O(N)).  With a
        window -- ``tags(i, j)`` yields the tags of elements ``i..j-1`` --
        the iterator rides :meth:`GrammarIndex.iter_element_symbols`:
        subtrees before the window are skipped in O(1) via the cached
        count tables, so a bulk read of a window costs
        O(depth · rule-width + window) instead of streaming the whole
        document to reach it.

        Window contract (``itertools.islice``-like, *not* list slicing):
        ``i >= j`` yields nothing, ``j > element_count`` (or ``None``)
        clamps to the document's end, and a negative bound raises
        ``IndexError`` -- under concurrent updates a from-the-end index
        is ambiguous, so it is rejected rather than silently treated as
        an empty (or wrapped) window.

        The zero-argument form is the window ``(0, element_count)`` and
        goes through the same indexed iterator -- one code path, and the
        count tables it materializes are the ones every other query
        reuses (the historical ``stream_preorder`` special case answered
        from nothing but also warmed nothing).
        """
        for symbol in self._index.iter_element_symbols(
            0 if start is None else start, stop
        ):
            yield symbol.name

    def tag_of(self, element_index: int) -> str:
        """Tag of the ``element_index``-th element (document order)."""
        return self._index.tag_of(element_index)

    # ------------------------------------------------------------------
    # navigation (document axes over element indices, all O(depth))
    # ------------------------------------------------------------------
    def parent_of(self, element_index: int) -> Optional[int]:
        """Element index of the parent; ``None`` for the root."""
        return self._index.parent_of(element_index)

    def depth_of(self, element_index: int) -> int:
        """Document depth of an element (the root has depth 0)."""
        return self._index.depth_of(element_index)

    def first_child(self, element_index: int) -> Optional[int]:
        """Element index of the first child; ``None`` for a leaf."""
        return self._index.first_child(element_index)

    def next_sibling(self, element_index: int) -> Optional[int]:
        """Element index of the next sibling; ``None`` for a last child."""
        return self._index.next_sibling(element_index)

    def children(self, element_index: int) -> Iterator[int]:
        """Element indices of the direct children, in document order."""
        return self._index.children(element_index)

    # ------------------------------------------------------------------
    # queries (label paths evaluated on the grammar)
    # ------------------------------------------------------------------
    @property
    def label_index(self) -> LabelIndex:
        """The owned label-census index, created on first use.

        Like the structural index it registers on the grammar's observer
        channel and invalidates per rule; its eviction counters
        (``evicted_rules`` / ``wholesale_invalidations`` /
        ``rules_censused``) are the maintenance instrumentation
        ``benchmarks/bench_query.py`` asserts against.
        """
        if self._label_index is None:
            self._label_index = LabelIndex(self._grammar)
        return self._label_index

    def select(self, path: str) -> List[int]:
        """Element indices matching a label path, evaluated on the grammar.

        ``path`` is a ``/a/b//c``-style expression (child + descendant
        axes, ``*`` wildcard, optional 1-based positional predicates; see
        :mod:`repro.query.parser`).  Descendant steps skip every
        derivation subtree whose label census is zero in O(1), so
        selective queries cost ``O(matches · depth · rule-width)`` instead
        of the ``O(N)`` a decompress-then-walk pays.  The result is
        sorted, duplicate-free, and lives in the same document-order
        coordinate space as :meth:`rename`/:meth:`delete`/
        :meth:`apply_batch` targets.
        """
        clock = time.perf_counter
        started = clock()
        parsed = parse_path(path)
        self._m_query_stage["parse"].observe(clock() - started)
        reset_prune_counter()
        walk_started = clock()
        result = engine_select(self._index, self.label_index, parsed)
        self._m_query_stage["walk"].observe(clock() - walk_started)
        self._m_queries_total["select"].inc()
        self._m_query_pruned.inc(read_prune_counter())
        self._m_query_matches.inc(len(result))
        return result

    def count(self, path: str) -> int:
        """Number of elements a label path selects.

        ``//label`` is answered in O(1) from the label index's start-rule
        census; other shapes evaluate the path.
        """
        clock = time.perf_counter
        started = clock()
        parsed = parse_path(path)
        self._m_query_stage["parse"].observe(clock() - started)
        reset_prune_counter()
        walk_started = clock()
        result = count_matches(self._index, self.label_index, parsed)
        self._m_query_stage["walk"].observe(clock() - walk_started)
        self._m_queries_total["count"].inc()
        self._m_query_pruned.inc(read_prune_counter())
        return result

    def subtree_xml(
        self, element_index: int, indent: Optional[int] = None
    ) -> str:
        """Serialize one element's subtree by partial derivation.

        Only the derivation window covering the element and its
        descendants is expanded -- ``O(depth · rule-width + output)``,
        never the whole document.
        """
        return serialize_xml(
            extract_subtree(self._index, element_index), indent=indent
        )

    # ------------------------------------------------------------------
    # element-index addressing (all O(depth) via the grammar index)
    # ------------------------------------------------------------------
    def _binary_index_of_element(self, element_index: int) -> int:
        """Map an element index to its binary-tree preorder index."""
        return self._index.preorder_of_element(element_index)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def rename(self, element_index: int, new_tag: str) -> None:
        """Relabel the ``element_index``-th element (document order)."""
        started = time.perf_counter()
        with self._lock:
            position, steps = self._index.resolve_element(element_index)
            self.rules_inlined_total += grammar_updates.rename(
                self._grammar, position, new_tag,
                grammar_index=self._index, steps=steps, spine=self._spine())
            self._after_update()
        self._m_update["rename"].observe(time.perf_counter() - started)
        self._m_updates_total["rename"].inc()

    def insert(
        self,
        element_index: int,
        content: Union[XmlNode, Sequence[XmlNode]],
    ) -> None:
        """Insert elements *before* the ``element_index``-th element.

        Inserting before the document root (index 0) is rejected with an
        :class:`~repro.updates.operations.UpdateError`: the result would
        be a forest, which later serialization could only refuse.
        """
        if element_index == 0:
            raise UpdateError(
                "inserting before the document root would create a forest"
            )
        siblings = [content] if isinstance(content, XmlNode) else list(content)
        started = time.perf_counter()
        with self._lock:
            fragment = encode_forest(siblings, self._grammar.alphabet)
            position, steps = self._index.resolve_element(element_index)
            self.rules_inlined_total += grammar_updates.insert(
                self._grammar, position, fragment,
                grammar_index=self._index, steps=steps, spine=self._spine())
            self._after_update()
        self._m_update["insert"].observe(time.perf_counter() - started)
        self._m_updates_total["insert"].inc()

    def append_child(
        self,
        parent_element_index: int,
        content: Union[XmlNode, Sequence[XmlNode]],
    ) -> None:
        """Append elements as the last children of an element.

        This is the "insert on a null pointer" case of Section V-C: the
        insertion point is the terminating ``⊥`` of the parent's child
        list, found by walking the parent's subtree on the grammar.  The
        position is exact even when the parent is the last element in
        document order -- in element coordinates the appended children
        land *off the end*, at index ``element_count``, but the
        terminator itself is an ordinary interior node of the binary
        encoding (the root's own next-sibling ``⊥`` always follows it),
        so the isolation never runs past the derivation.
        """
        siblings = [content] if isinstance(content, XmlNode) else list(content)
        started = time.perf_counter()
        with self._lock:
            fragment = encode_forest(siblings, self._grammar.alphabet)
            position = self._end_of_children_position(parent_element_index)
            self.rules_inlined_total += grammar_updates.insert(
                self._grammar, position, fragment, grammar_index=self._index,
                spine=self._spine())
            self._after_update()
        self._m_update["append_child"].observe(time.perf_counter() - started)
        self._m_updates_total["append_child"].inc()

    def _end_of_children_position(self, parent_element_index: int) -> int:
        """Binary preorder index of the parent's child-list terminator.

        Answered by the index via subtree sizes: the terminator is the
        preorder-last node of the parent's first-child subtree, so no
        stream is walked (let alone materialized).
        """
        return self._index.end_of_children_position(parent_element_index)

    def delete(self, element_index: int) -> None:
        """Delete the ``element_index``-th element and its subtree.

        Deleting the document root (index 0) is rejected with an
        :class:`~repro.updates.operations.UpdateError` (a ``ValueError``)
        before any grammar mutation.  Deleting an element that is its
        parent's only child leaves the emptied child list well-formed:
        the element's next-sibling chain -- a bare ``⊥`` in that case --
        moves up into the parent's first-child slot.
        """
        if element_index == 0:
            raise UpdateError("deleting the document root is not allowed")
        started = time.perf_counter()
        with self._lock:
            position, steps = self._index.resolve_element(element_index)
            self.rules_inlined_total += grammar_updates.delete(
                self._grammar, position, grammar_index=self._index,
                steps=steps, spine=self._spine())
            self._after_update()
        self._m_update["delete"].observe(time.perf_counter() - started)
        self._m_updates_total["delete"].inc()

    # ------------------------------------------------------------------
    # snapshots (MVCC read isolation)
    # ------------------------------------------------------------------
    def snapshot(self) -> SnapshotView:
        """Pin the current epoch and return an immutable reader view.

        The view answers the whole query/navigation/serialization
        surface *as of now*, unaffected by any later update, batch,
        reshard, or recompression -- see :class:`repro.view.SnapshotView`.
        Close it (``with doc.snapshot() as view:``) to release the pin;
        the copy-on-write overlay backing the pinned epoch is reclaimed
        when its last view closes.
        """
        with self._lock:
            return SnapshotView(self)

    def mvcc_info(self) -> dict:
        """Live epoch and pin accounting (operator introspection)."""
        grammar = self._grammar
        pins = grammar.pinned_epochs()
        return {
            "epoch": grammar.epoch,
            "pinned_snapshots": sum(pins.values()),
            "pinned_epochs": sorted(pins),
            "oldest_pin_age_seconds": grammar.oldest_pin_age(),
        }

    # ------------------------------------------------------------------
    # shard-scoped write locking
    # ------------------------------------------------------------------
    @property
    def shard_locks(self) -> ShardLockTable:
        """Per-shard commit locks (see :mod:`repro.grammar.concurrency`).

        The document itself serializes in-memory mutation under its
        write lock; these locks order full *commits* (WAL append + apply
        + fsync in the durable layer) so batches on disjoint shards can
        overlap their durability work while conflicting batches
        serialize end-to-end.
        """
        return self._shard_locks

    def shard_of(self, element_index: int) -> "Symbol":
        """The spine rule owning an element (the deepest shard head on
        its derivation path; the start rule when unsharded)."""
        owner = self._grammar.start
        if self._shards is None:
            return owner
        with self._lock:
            _, steps = self._index.resolve_element(element_index)
            spine = self._shards
            for step in steps:
                if step.enters_rule and step.node.symbol in spine:
                    owner = step.node.symbol
        return owner

    def shard_heads_for(self, ops: Sequence[BatchOp]) -> "Set[Symbol]":
        """The set of shard heads a batch will write.

        Resolved against the current document state; used by concurrent
        committers to acquire the right per-shard locks *before* the
        commit.  Indices use the batch's sequential semantics, so later
        ops' resolutions are approximations once earlier ops shift
        indices -- safe for locking (the resolution is a superset
        heuristic; the in-memory apply itself is still serialized), not
        for addressing.
        """
        heads = set()
        with self._lock:
            for op in ops:
                index = getattr(op, "index", None)
                if index is None:
                    index = op.parent_index
                index = min(index, max(0, self.element_count - 1))
                heads.add(self.shard_of(index))
        return heads

    # ------------------------------------------------------------------
    # batch updates
    # ------------------------------------------------------------------
    def batch(self) -> BatchBuilder:
        """Collect operations for one :meth:`apply_batch` call.

        Usable as a context manager; the batch is applied when the
        ``with`` block exits cleanly::

            with doc.batch() as b:
                b.rename(3, "seen")
                b.append_child(3, XmlNode("mark"))
                b.delete(9)
            b.stats.inlined_rules  # isolation work actually performed
        """
        return BatchBuilder(self)

    def apply_batch(
        self, ops: Sequence[BatchOp], transactional: bool = False
    ) -> BatchStats:
        """Apply a list of element-index operations as one program.

        Operations (:class:`~repro.updates.batch.BatchRename` /
        ``BatchInsert`` / ``BatchAppend`` / ``BatchDelete``) use
        *sequential semantics* -- each index addresses the document as
        the previous operations leave it -- and the result is
        observationally equivalent to the single-op loop.  Execution is
        batched: indices are translated to one coordinate space, the
        union of the derivation paths is isolated in a single pass
        (shared rule prefixes inlined once), all edits land on that
        spine in one mutation epoch, and the automatic recompression
        policy settles once at the end instead of once per operation.

        By default an invalid index raises (``IndexError``, or
        ``UpdateError`` for a root deletion) after the operations before
        it were applied, exactly as the sequential loop would; the
        instrumentation counters (``updates_applied`` etc.) are only
        advanced on success.  With ``transactional=True`` a failing
        batch instead rolls the document back to its pre-batch state --
        grammar, shard hierarchy, and (through the observer channel)
        every index -- so the batch is all-or-nothing; this is the mode
        the durability layer logs batches under, where replay must never
        reproduce a half-applied program.
        """
        started = time.perf_counter()
        with trace_span("apply_batch", ops=len(ops),
                        transactional=transactional), self._lock:
            base_epoch = self._grammar.epoch
            backup = self._transaction_backup() if transactional else None
            try:
                stats = execute_batch(
                    self._grammar, self._index, ops, spine=self._spine()
                )
            except Exception:
                if backup is not None:
                    self._transaction_restore(backup)
                    raise
                # Error parity with the sequential loop requires the
                # already-applied prefix to stay; keep its spine inside
                # budget too.
                self._reshard()
                raise
            if backup is not None:
                self._transaction_release(backup)
            self.updates_applied += stats.operations
            self.batches_applied += 1
            self.rules_inlined_total += stats.inlined_rules
            settle_started = time.perf_counter()
            self._reshard()
            self._maybe_auto_recompress()
            settle_seconds = time.perf_counter() - settle_started
            stats.base_epoch = base_epoch
            stats.commit_epoch = self._grammar.epoch
            self.last_batch_stats = stats
        self._m_batch.observe(time.perf_counter() - started)
        stage = self._m_batch_stage
        stage["plan"].observe(stats.plan_seconds)
        stage["isolate"].observe(stats.isolate_seconds)
        stage["apply"].observe(stats.apply_seconds)
        stage["settle"].observe(settle_seconds)
        self._m_batches_total.inc()
        return stats

    def _transaction_backup(self):
        """Pin the pre-batch epoch as the rollback point.

        The copy-on-write machinery behind reader snapshots doubles as
        the transaction log: with the epoch pinned, every rule the batch
        rewrites gets its pristine body preserved into the pin's overlay
        before the first mutation (reads hook :meth:`Grammar.rhs`,
        installs hook ``set_rule``/``remove_rule``).  Success costs
        O(touched rules) lazy copies instead of the eager O(|G|) deep
        copy of every body; only the rare failure path pays for the
        restore.  The shard hierarchy's maps are tiny and have no CoW
        channel, so they are still captured eagerly.
        """
        epoch = self._grammar.pin(rollback=True)
        shard = None
        if self._shards is not None:
            shard = (
                set(self._shards.heads),
                dict(self._shards._parent),
                set(self._shards._touched),
            )
        return epoch, shard

    def _transaction_release(self, backup) -> None:
        """Drop the rollback pin after a committed batch."""
        self._grammar.unpin(backup[0], rollback=True)

    def _transaction_restore(self, backup) -> None:
        """Put the grammar and shard hierarchy back to the pinned epoch.

        Every restored rule goes through ``set_rule``, so the persistent
        indexes see ordinary per-rule change events and evict whatever
        the half-applied batch had polluted -- no wholesale reset.
        Bodies are deep-copied on the way back in: a concurrent reader
        snapshot pinned at the same epoch shares the overlay's preserved
        trees, and reinstalling them live would let later writes mutate
        what that reader sees.
        """
        epoch, shard = backup
        grammar = self._grammar
        preserved = grammar.preserved_at(epoch)
        manager = self._shards
        if manager is not None:
            # The restore is not an update epoch: suppress the shard
            # observer (its maps are restored wholesale below).
            manager._resharding = True
        try:
            for head, body in preserved.items():
                if body is None:
                    if grammar.has_rule(head):
                        grammar.remove_rule(head)
                else:
                    grammar.set_rule(head, deep_copy(body))
        finally:
            if manager is not None:
                manager._resharding = False
                heads, parents, touched = shard
                manager.heads = heads
                manager._parent = parents
                manager._touched = touched
            grammar.unpin(epoch, rollback=True)

    def _after_update(self) -> None:
        self.updates_applied += 1
        self._reshard()
        self._maybe_auto_recompress()

    def _reshard(self) -> None:
        """Post-epoch spine rebalancing (the same hook point as the
        auto-recompress policy): any spine rule this epoch pushed past
        ``2 * shard_width`` is split, any shard that fell below
        ``shard_width // 2`` is merged -- all through per-rule observer
        events, so the persistent indexes never reset wholesale."""
        if self._shards is not None:
            self._shards.reshard()

    def _maybe_auto_recompress(self) -> None:
        if self._auto_factor is None:
            return
        if self._size.total > self._auto_factor * self._last_compressed_size:
            # Called mid-commit (already under the document lock, and in
            # concurrent mode under the spine gate's *shared* side), so
            # this must not route through the public recompress() and
            # its exclusive-gate acquisition.  The commit lock above us
            # serializes all applies, which is barrier enough.
            self._recompress_locked(self._scoped_census_unprofitable())

    def _scoped_census_unprofitable(self) -> Optional[bool]:
        """Auto-recompress policy: scope the census to the dirty rules
        only while they are a small slice of the grammar.

        Under sustained traffic the start rule accumulates most of the
        grammar's mass by the time the growth factor triggers; a census
        scoped to it would miss cross-rule digram weights and slowly
        degrade the compression ratio.  A full (but still incrementally
        maintained) census costs one extra pass and keeps parity.
        """
        if not (self._incremental and self._baselined):
            return None  # recompress() applies its own first-run rule
        from repro.trees.node import edge_count

        grammar = self._grammar
        dirty_edges = sum(
            edge_count(grammar.rules[head])
            for head in self._dirty.changed
            if grammar.has_rule(head)
        )
        return dirty_edges * 4 > self._size.total or None

    # ------------------------------------------------------------------
    # maintenance and output
    # ------------------------------------------------------------------
    def recompress(self, full: Optional[bool] = None) -> int:
        """Run GrammarRePair in place; returns the new grammar size.

        By default the run is *dirty-rule-scoped*: the occurrence census
        is seeded with only the rules mutated since the last
        recompression (plus their digram frontier), and the structural
        index keeps its cached tables for every untouched rule -- the
        per-rule evictions fired through the observer channel while rules
        were rewritten are the only invalidation.  Pass ``full=True`` to
        force a whole-grammar census (the first run on a grammar that was
        never compressed does this automatically, as does a document
        constructed with ``incremental_recompress=False``, which also
        restores the historical wholesale index reset).

        An explicit recompression is a whole-document barrier: it takes
        the shard spine gate exclusively, draining in-flight
        shard-scoped commits and holding new ones out until the rewrite
        finishes.
        """
        with trace_span("recompress"):
            with self._shard_locks.spine.exclusive():
                with self._lock:
                    return self._recompress_locked(full)

    def _recompress_locked(self, full: Optional[bool]) -> int:
        started = time.perf_counter()
        # GrammarRePair's warm occurrence lists may rewrite a body this
        # run never re-read, which would defeat the read-triggered
        # copy-on-write preservation -- so with snapshots pinned, every
        # pristine body is preserved up front.
        self._grammar.preserve_all()
        if full is None:
            full = not (self._incremental and self._baselined)
        compressor = GrammarRePair(
            kin=self._kin, incremental=self._incremental,
            barriers=(self._shards.heads
                      if self._shards is not None else None),
        )
        if full or not self._incremental:
            self._grammar = compressor.compress(self._grammar, in_place=True)
            if not self._incremental:
                # The historical contract: a full recompression rewrites
                # essentially every rule, so a wholesale reset beats
                # replaying thousands of per-rule invalidations.
                self._index.invalidate_all()
                if self._label_index is not None:
                    self._label_index.invalidate_all()
            # Incremental mode relies on the per-rule observer evictions
            # that fired while rules were rewritten, full census or not.
        else:
            dirty = set(self._dirty.changed)
            self._grammar = compressor.compress(
                self._grammar, in_place=True, dirty_rules=dirty
            )
            # No invalidate_all: untouched rules keep their cached tables.
        self.last_repair_stats = compressor.stats
        self._dirty.clear()
        self._baselined = True
        self._last_compressed_size = max(1, self._size.total)
        self.recompress_runs += 1
        elapsed = time.perf_counter() - started
        self.recompress_seconds += elapsed
        self._m_recompress.observe(elapsed)
        stage = self._m_recompress_stage
        stage["census"].observe(compressor.stats.census_seconds)
        stage["rounds"].observe(compressor.stats.rounds_seconds)
        stage["prune"].observe(compressor.stats.prune_seconds)
        self._m_recompress_total.inc()
        self.maintenance_seconds += compressor.stats.maintenance_seconds
        self.rules_censused_total += compressor.stats.rules_censused
        self.rules_adapted_total += (
            compressor.stats.rules_adapted
            + compressor.stats.rules_partially_rescanned
        )
        # Compression only shrinks rule bodies; shards that fell below
        # the merge threshold are folded back into their parents here.
        # Merge damping is dropped first: this thinning is compression,
        # not traffic churn (see ShardManager.recompression_settled).
        if self._shards is not None:
            self._shards.recompression_settled()
        self._reshard()
        return self._size.total

    def to_document(self, budget: int = 50_000_000) -> XmlNode:
        """Decompress to a structure tree (guarded by a node budget)."""
        from repro.grammar.derivation import expand

        return decode_binary(expand(self._grammar, budget=budget))

    def to_xml(self, indent: Optional[int] = None, budget: int = 50_000_000) -> str:
        """Decompress and serialize to XML text."""
        return serialize_xml(self.to_document(budget=budget), indent=indent)

    def save_grammar(self, path: str, io=None) -> None:
        """Persist the grammar in the text format, crash-atomically.

        The text is written to a temp file, flushed and fsync'd, then
        renamed over ``path``, and the parent directory entry is
        fsync'd -- a crash mid-save leaves the previous file intact
        instead of a truncated grammar, and a power cut after the
        rename cannot roll the *name* back either.  All four steps run
        through the injectable ``repro.storage.faults.StorageIO`` layer
        (site ``grammar:save``), so the fault matrix covers this commit
        point like every other one.
        """
        from repro.storage.faults import StorageIO

        if io is None:
            io = StorageIO()
        tmp = path + ".tmp"
        data = format_grammar(self._grammar).encode("utf-8")
        with open(tmp, "wb") as handle:
            io.write(handle, data, "grammar:save")
            io.fsync(handle, "grammar:save")
        io.replace(tmp, path, "grammar:save")
        io.fsync_dir(os.path.dirname(os.path.abspath(path)),
                     "grammar:save")

    # ------------------------------------------------------------------
    # durable state (the snapshot layer's view of the document)
    # ------------------------------------------------------------------
    def export_state(self) -> "DocumentState":
        """Everything a restart needs to resume *exactly*: the grammar,
        the shard hierarchy, the structural index's per-rule segments,
        the label index's per-rule censuses, and the recompression
        baseline.  Forces the cacheable state for the whole reachable
        grammar first, so the resulting snapshot restores queries
        without recomputation (see :meth:`from_state`)."""
        from repro.storage.snapshot import DocumentState, ShardState

        shard = None
        if self._shards is not None:
            width, prefix, parents = self._shards.export_state()
            shard = ShardState(width=width, prefix=prefix, parents=parents)
        return DocumentState(
            grammar=self._grammar,
            kin=self._kin,
            element_count=self.element_count,
            baselined=self._baselined,
            last_compressed_size=self._last_compressed_size,
            dirty_rules=[
                head for head in self._dirty.changed
                if self._grammar.has_rule(head)
            ],
            shard=shard,
            segments=self._index.export_segments(),
            label_counts=self.label_index.export_counts(),
        )

    def save_snapshot(
        self, path: str, io: Optional["StorageIO"] = None
    ) -> None:
        """Write a crash-atomic binary snapshot (temp file + rename)."""
        from repro.storage.snapshot import write_snapshot

        write_snapshot(path, self.export_state(), io=io)

    def __repr__(self) -> str:
        return (
            f"<CompressedXml {self.element_count} elements, "
            f"grammar size {self.compressed_size}>"
        )
