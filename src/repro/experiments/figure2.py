"""Figure 2: blow-up during recompression.

The paper runs GrammarRePair over an already grammar-compressed document
and reports ``max |intermediate grammar| / |final grammar|`` together with
the compression ratio reached and the ratio at the moment of maximum
blow-up.  Extremely compressible files (NCBI, EXI-Weblog) blow up worst
(just over 2): recompression rebuilds the exponentially compressed list
hierarchies from scratch, and while a list is "broken open" the old and the
new doubling rules coexist.  Moderate files stay a few percent above 1.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.grammar_repair import GrammarRePair
from repro.datasets.synthetic import CORPORA
from repro.experiments.common import ExperimentResult, prepared_corpus

__all__ = ["run", "main", "DEFAULT_SCALES"]

DEFAULT_SCALES: Dict[str, int] = {
    "NCBI": 30_000,
    "EXI-Weblog": 20_000,
    "EXI-Telecomp": 20_000,
    "Medline": 6_000,
    "XMark": 5_000,
    "Treebank": 5_000,
}


def run(
    scales: Optional[Dict[str, int]] = None,
    seed: int = 0,
    kin: int = 4,
) -> ExperimentResult:
    scales = scales or DEFAULT_SCALES
    result = ExperimentResult(
        title="Figure 2: blow-up during recompression",
        columns=[
            "dataset", "final c-edges", "blow-up",
            "ratio(%)", "ratio at max blow-up(%)",
        ],
        notes=[
            "blow-up = max intermediate |G| / final |G| while GrammarRePair "
            "recompresses an already compressed grammar (paper: <= ~2.1, "
            "worst on the exponentially compressing files)",
        ],
    )
    for name in scales:
        corpus = prepared_corpus(name, scales[name], seed)
        compressed = GrammarRePair(kin=kin).compress_tree(
            corpus.binary, corpus.alphabet, copy_input=False
        )
        recompressor = GrammarRePair(kin=kin)
        final = recompressor.compress(compressed, in_place=True)
        stats = recompressor.stats
        edges = max(1, corpus.stats.edges)
        result.add(
            name,
            final.size,
            round(stats.blow_up, 3),
            round(100.0 * final.size / edges, 3),
            round(100.0 * stats.max_intermediate_size / edges, 3),
        )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
