"""Figure 6: runtime of GrammarRePair vs update-decompress-compress.

Protocol (Section V-C): rename random nodes to fresh labels on the
grammar-compressed document, then recompress three ways:

* **GR(grammar)** -- GrammarRePair directly on the updated grammar (the
  paper's red box),
* **udc/TreeRePair** -- decompress, compress with TreeRePair (gray line,
  the normalizing baseline: its total is 1.0),
* **udc/GR(tree)** -- decompress, compress with GrammarRePair-on-trees
  (green boxes).

The paper's shape: for small files udc can win, but from ~100-200k edges
on, GrammarRePair beats even the *compression step alone* of udc.  The
space columns support the Section V-C claim that GrammarRePair needs
6% (avg) / 23% (max) of udc's space: udc must materialize the whole tree,
GrammarRePair only its largest intermediate grammar.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional

from repro.core.grammar_repair import GrammarRePair
from repro.experiments.common import ExperimentResult, prepared_corpus, timed
from repro.trees.node import node_count
from repro.updates.grammar_updates import apply_op
from repro.updates.udc import udc_recompress
from repro.updates.workload import generate_rename_workload

__all__ = ["run", "main", "DEFAULT_SCALES", "DEFAULT_CORPORA"]

DEFAULT_CORPORA = (
    "EXI-Weblog", "XMark", "EXI-Telecomp", "Treebank", "Medline", "NCBI",
)

DEFAULT_SCALES: Dict[str, int] = {
    "EXI-Weblog": 8_000,
    "XMark": 4_000,
    "EXI-Telecomp": 8_000,
    "Treebank": 4_000,
    "Medline": 4_000,
    "NCBI": 10_000,
}


def run(
    corpora: Iterable[str] = DEFAULT_CORPORA,
    n_renames: int = 100,
    scales: Optional[Dict[str, int]] = None,
    seed: int = 0,
    kin: int = 4,
) -> ExperimentResult:
    scales = scales or DEFAULT_SCALES
    result = ExperimentResult(
        title="Figure 6: recompression runtime, GrammarRePair vs udc",
        columns=[
            "dataset", "#edges",
            "GR(grammar)/udc-TR", "udc-GR(tree)/udc-TR",
            "GR vs TR-compress-only",
            "space GR/udc(%)",
        ],
        notes=[
            "times normalized to full udc with TreeRePair (decompress + "
            "compress); <1 means GrammarRePair is faster",
            "space = max intermediate grammar nodes / decompressed tree "
            "nodes (paper: 6% average, 23% worst)",
        ],
    )
    for name in corpora:
        corpus = prepared_corpus(name, scales.get(name), seed)
        base = GrammarRePair(kin=kin).compress_tree(
            corpus.binary, corpus.alphabet
        )
        renames = generate_rename_workload(
            corpus.binary, n_renames, corpus.alphabet,
            rng=random.Random(seed + 2),
        )
        updated = base.copy()
        for op in renames:
            apply_op(updated, op)

        recompressor = GrammarRePair(kin=kin)
        _gr_result, gr_seconds = timed(
            lambda: recompressor.compress(updated)
        )
        udc_tree_repair, _ = timed(
            lambda: udc_recompress(updated, compressor="tree_repair", kin=kin)
        )
        udc_gr_tree, _ = timed(
            lambda: udc_recompress(updated, compressor="grammar_repair", kin=kin)
        )

        udc_total = max(1e-9, udc_tree_repair.total_seconds)
        compress_only = max(1e-9, udc_tree_repair.compress_seconds)
        # Space: GrammarRePair's peak intermediate grammar vs the
        # materialized tree udc needs.
        space_percent = (
            100.0 * recompressor.stats.max_intermediate_size
            / max(1, udc_tree_repair.tree_nodes)
        )
        result.add(
            name,
            corpus.stats.edges,
            round(gr_seconds / udc_total, 3),
            round(udc_gr_tree.total_seconds / udc_total, 3),
            round(gr_seconds / compress_only, 3),
            round(space_percent, 2),
        )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
