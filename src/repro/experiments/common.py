"""Shared infrastructure for the experiment drivers.

Every experiment module exposes ``run(...) -> ExperimentResult`` plus a
``main()`` that prints the paper-shaped table; the benchmarks wrap the same
``run`` functions so numbers in EXPERIMENTS.md and bench output agree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.grammar_repair import GrammarRePair
from repro.datasets.synthetic import CORPORA, CorpusSpec
from repro.trees.binary import encode_binary
from repro.trees.node import Node
from repro.trees.stats import DocumentStats, document_stats
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode

__all__ = [
    "ExperimentResult",
    "timed",
    "average_timed",
    "prepared_corpus",
    "PreparedCorpus",
    "format_table",
]


@dataclass
class ExperimentResult:
    """A generic tabular experiment outcome."""

    title: str
    columns: List[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)}"
            )
        self.rows.append(values)

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows, self.notes)

    def column(self, name: str) -> List[object]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> str:
    """Plain-text aligned table (the harness's output format)."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rendered = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in rendered), 1)
        if rendered else len(columns[i])
        for i in range(len(columns))
    ]
    lines = [title, "=" * len(title)]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered:
        lines.append("  ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def timed(fn: Callable[[], object]) -> Tuple[object, float]:
    """Run ``fn`` once, returning ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def average_timed(fn: Callable[[], object], runs: int = 1) -> Tuple[object, float]:
    """The paper averages four consecutive runs; we default to fewer.

    Returns the last result and the average seconds.
    """
    total = 0.0
    result: object = None
    for _ in range(max(1, runs)):
        result, seconds = timed(fn)
        total += seconds
    return result, total / max(1, runs)


@dataclass
class PreparedCorpus:
    """A generated corpus with its binary encoding and statistics."""

    spec: CorpusSpec
    document: XmlNode
    stats: DocumentStats
    alphabet: Alphabet
    binary: Node


def prepared_corpus(
    name: str,
    edges: Optional[int] = None,
    seed: int = 0,
) -> PreparedCorpus:
    """Generate a corpus analog and its binary encoding."""
    spec = CORPORA[name]
    document = spec.generate(edges, seed)
    alphabet = Alphabet()
    return PreparedCorpus(
        spec=spec,
        document=document,
        stats=document_stats(document),
        alphabet=alphabet,
        binary=encode_binary(document, alphabet),
    )
