"""Table III: document statistics and GrammarRePair compression results.

Paper columns: dataset, #edges, dp, c-edges, ratio(%).  Our documents are
scaled-down analogs, so the *paper* reference columns are printed alongside
for shape comparison: the c-edges of the extreme corpora should be tiny
constants (paper: 42/107/59), the ratio ordering must be

    NCBI ~ EXI-Weblog ~ EXI-Telecomp  <<  Medline  <  XMark  <  Treebank.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.grammar_repair import GrammarRePair
from repro.datasets.synthetic import CORPORA
from repro.experiments.common import ExperimentResult, prepared_corpus

__all__ = ["run", "main", "DEFAULT_SCALES"]

#: Edge budgets per corpus: the extreme corpora are cheap to compress (the
#: grammar collapses immediately), so they get larger documents; the
#: moderate corpora stay smaller to keep pure-Python runtimes sane.
DEFAULT_SCALES: Dict[str, int] = {
    "EXI-Weblog": 20_000,
    "XMark": 6_000,
    "EXI-Telecomp": 20_000,
    "Treebank": 6_000,
    "Medline": 8_000,
    "NCBI": 30_000,
}


def run(
    scales: Optional[Dict[str, int]] = None,
    seed: int = 0,
    kin: int = 4,
) -> ExperimentResult:
    scales = scales or DEFAULT_SCALES
    result = ExperimentResult(
        title="Table III: document statistics and GrammarRePair compression",
        columns=[
            "dataset", "#edges", "dp", "c-edges", "ratio(%)",
            "paper #edges", "paper dp", "paper ratio(%)",
        ],
        notes=[
            "documents are scaled-down synthetic analogs; ratios shrink "
            "further as documents grow (grammar size is sublinear)",
        ],
    )
    for name in CORPORA:
        corpus = prepared_corpus(name, scales.get(name), seed)
        grammar = GrammarRePair(kin=kin).compress_tree(
            corpus.binary, corpus.alphabet, copy_input=False
        )
        ratio = 100.0 * grammar.size / max(1, corpus.stats.edges)
        result.add(
            name,
            corpus.stats.edges,
            corpus.stats.depth,
            grammar.size,
            round(ratio, 2),
            corpus.spec.paper_edges,
            corpus.spec.paper_depth,
            corpus.spec.paper_ratio_percent,
        )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
