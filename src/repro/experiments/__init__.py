"""Experiment drivers: one module per table/figure of the paper."""

from repro.experiments import (
    figure2,
    figure3,
    figure45,
    figure6,
    static_comparison,
    table3,
)
from repro.experiments.common import ExperimentResult, format_table

#: Registry used by the CLI and the benchmark harness.
EXPERIMENTS = {
    "table3": table3,
    "static": static_comparison,
    "figure2": figure2,
    "figure3": figure3,
    "figure45": figure45,
    "figure6": figure6,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "format_table",
    "table3",
    "static_comparison",
    "figure2",
    "figure3",
    "figure45",
    "figure6",
]
