"""``python -m repro.experiments [name ...]`` -- run experiment drivers."""

from __future__ import annotations

import argparse
import sys

from repro.experiments import EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        default=list(EXPERIMENTS),
        help=f"experiments to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    args = parser.parse_args(argv)
    for name in args.names:
        module = EXPERIMENTS.get(name)
        if module is None:
            parser.error(
                f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
            )
        module.main()
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
