"""Figure 3: effect of the fragment-export optimization on the G_n family.

``G_n`` generates ``(ab)^(2^(n+1)+1)`` from ~``3n`` edges; recompressing it
(the most frequent digram is ``ab``, not the stored ``ba``) exercises the
replacement machinery on exponentially compressed input.  The paper's
finding, which this experiment reproduces:

* optimized (Algorithm 8 fragment export): blow-up stays < 2 and runtime
  scales with the *grammar* size,
* non-optimized (full inlining, Algorithm 5): blow-up and runtime grow
  with the *generated string* length -- >110x for their largest inputs.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.grammar_repair import GrammarRePair
from repro.experiments.common import ExperimentResult, timed
from repro.grammar.strings import gn_family_grammar

__all__ = ["run", "main", "DEFAULT_NS"]

#: Paper: n chosen so lists have 64..4096 sibling pairs (2^6..2^12).
DEFAULT_NS = (5, 6, 7, 8, 9, 10, 11)


def run(
    ns: Iterable[int] = DEFAULT_NS,
    kin: int = 4,
) -> ExperimentResult:
    result = ExperimentResult(
        title="Figure 3: optimized (fragment export) vs non-optimized",
        columns=[
            "n", "|G_n|", "pairs", "final",
            "blow-up opt", "blow-up non-opt",
            "ms opt", "ms non-opt",
        ],
        notes=[
            "pairs = 2^(n+1)+1 'ab' sibling pairs in val(G_n)",
            "optimized blow-up grows only with |G_n| (log of the string); "
            "non-optimized grows with the generated string itself "
            "(the paper reaches >110)",
        ],
    )
    for n in ns:
        base = gn_family_grammar(n)
        optimized = GrammarRePair(optimized=True)
        plain = GrammarRePair(optimized=False)
        out_opt, seconds_opt = timed(lambda: optimized.compress(base))
        out_plain, seconds_plain = timed(lambda: plain.compress(base))
        result.add(
            n,
            base.size,
            2 ** (n + 1) + 1,
            out_opt.size,
            round(optimized.stats.blow_up, 2),
            round(plain.stats.blow_up, 2),
            round(seconds_opt * 1000, 1),
            round(seconds_plain * 1000, 1),
        )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
