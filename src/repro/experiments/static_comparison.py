"""Section V-B (text): compression-ratio comparison of the three tools.

The paper compares TreeRePair, GrammarRePair applied to trees, and
GrammarRePair applied to grammars, finding near-identical ratios with
GrammarRePair winning on extremely compressible files.  The
applied-to-grammars configuration takes the minimal-DAG grammar as input
(sharing repeated subtrees is the classic pre-compression).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.grammar_repair import GrammarRePair
from repro.dag.minimal_dag import dag_to_grammar
from repro.datasets.synthetic import CORPORA
from repro.experiments.common import ExperimentResult, prepared_corpus
from repro.repair.tree_repair import TreeRePair
from repro.trees.node import deep_copy

__all__ = ["run", "main", "DEFAULT_SCALES"]

DEFAULT_SCALES: Dict[str, int] = {
    "EXI-Weblog": 12_000,
    "XMark": 5_000,
    "EXI-Telecomp": 12_000,
    "Treebank": 5_000,
    "Medline": 6_000,
    "NCBI": 16_000,
}


def run(
    scales: Optional[Dict[str, int]] = None,
    seed: int = 0,
    kin: int = 4,
) -> ExperimentResult:
    scales = scales or DEFAULT_SCALES
    result = ExperimentResult(
        title="Static compression: TreeRePair vs GrammarRePair (tree/grammar)",
        columns=[
            "dataset", "#edges", "DAG", "TreeRePair",
            "GR(tree)", "GR(grammar)",
        ],
        notes=[
            "cells are grammar edge counts (c-edges); GR(grammar) "
            "recompresses the minimal-DAG grammar",
        ],
    )
    for name in CORPORA:
        corpus = prepared_corpus(name, scales.get(name), seed)
        tree_rp = TreeRePair(kin=kin).compress(
            deep_copy(corpus.binary), corpus.alphabet, copy_input=False
        )
        gr_tree = GrammarRePair(kin=kin).compress_tree(
            deep_copy(corpus.binary), corpus.alphabet, copy_input=False
        )
        dag_grammar = dag_to_grammar(corpus.binary, corpus.alphabet)
        dag_size = dag_grammar.size
        gr_grammar = GrammarRePair(kin=kin).compress(
            dag_grammar, in_place=True
        )
        result.add(
            name,
            corpus.stats.edges,
            dag_size,
            tree_rp.size,
            gr_tree.size,
            gr_grammar.size,
        )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
