"""Figures 4 and 5: compression under long update sequences.

Protocol (Section V-C): reverse-derive an update sequence (90% inserts,
10% deletes) from a corpus document, replay it forward from the seed, and
every ``recompress_every`` updates measure

* *naive*:  |grammar after updates| / |from-scratch grammar|   (top plots)
* *GrammarRePair*: |recompressed grammar| / |from-scratch|     (bottom)

where "from-scratch" decompresses and recompresses with TreeRePair (the
udc compression result).  Figure 4 covers the moderate corpora (XMark,
Medline, Treebank; naive overhead up to ~1.4, GrammarRePair <= ~1.008);
Figure 5 the extreme ones (EXI-Weblog, EXI-Telecomp, NCBI; naive blow-ups
in the hundreds, GrammarRePair <= ~5).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Tuple

from repro.core.grammar_repair import GrammarRePair
from repro.experiments.common import ExperimentResult, prepared_corpus
from repro.repair.tree_repair import TreeRePair
from repro.trees.node import deep_copy
from repro.updates.grammar_updates import apply_op
from repro.updates.operations import apply_op_to_tree
from repro.updates.workload import generate_update_workload

__all__ = ["run", "main", "MODERATE", "EXTREME", "DEFAULT_SCALES"]

MODERATE = ("XMark", "Medline", "Treebank")
EXTREME = ("EXI-Weblog", "EXI-Telecomp", "NCBI")

DEFAULT_SCALES: Dict[str, int] = {
    "XMark": 3_000,
    "Medline": 3_000,
    "Treebank": 3_000,
    "EXI-Weblog": 6_000,
    "EXI-Telecomp": 6_000,
    "NCBI": 8_000,
}


def run(
    corpora: Iterable[str] = MODERATE,
    n_updates: int = 400,
    recompress_every: int = 100,
    scales: Optional[Dict[str, int]] = None,
    seed: int = 0,
    kin: int = 4,
) -> ExperimentResult:
    scales = scales or DEFAULT_SCALES
    result = ExperimentResult(
        title="Figures 4/5: update sequences (90% insert / 10% delete)",
        columns=[
            "dataset", "#updates", "naive ratio", "GrammarRePair ratio",
        ],
        notes=[
            "ratios are grammar size over the udc from-scratch grammar size "
            "at the same point of the update sequence",
        ],
    )
    for name in corpora:
        corpus = prepared_corpus(name, scales.get(name), seed)
        workload = generate_update_workload(
            corpus.binary,
            n_updates,
            corpus.alphabet,
            insert_fraction=0.9,
            rng=random.Random(seed + 1),
        )
        # Both maintained grammars start from the compressed seed.
        seed_grammar = GrammarRePair(kin=kin).compress_tree(
            workload.seed, corpus.alphabet
        )
        naive = seed_grammar.copy()
        maintained = seed_grammar.copy()
        reference_tree = deep_copy(workload.seed)

        applied = 0
        for batch_start in range(0, len(workload.operations), recompress_every):
            batch = workload.operations[
                batch_start:batch_start + recompress_every
            ]
            for op in batch:
                apply_op(naive, op)
                apply_op(maintained, op)
                reference_tree = apply_op_to_tree(
                    reference_tree, op, corpus.alphabet
                )
            applied += len(batch)
            maintained = GrammarRePair(kin=kin).compress(
                maintained, in_place=True
            )
            scratch = TreeRePair(kin=kin).compress(
                deep_copy(reference_tree), corpus.alphabet, copy_input=False
            )
            scratch_size = max(1, scratch.size)
            result.add(
                name,
                applied,
                round(naive.size / scratch_size, 3),
                round(maintained.size / scratch_size, 3),
            )
    return result


def main() -> None:
    moderate = run(MODERATE)
    moderate.title = "Figure 4: moderate-compression corpora"
    print(moderate.render())
    print()
    extreme = run(EXTREME)
    extreme.title = "Figure 5: extreme-compression corpora"
    print(extreme.render())


if __name__ == "__main__":
    main()
