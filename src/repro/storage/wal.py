"""The write-ahead log of logical update operations.

File layout (every segment and compacted file alike)::

    +--------------------+   8-byte magic ``b"RXWAL01\\n"``
    | record | record | ...

    record := u32le payload_length | u32le crc32(payload) | payload

Payloads are canonical JSON (sorted keys, no whitespace) describing one
committed operation -- ``rename``/``insert``/``append``/``delete``/
``batch`` -- in the element-index coordinates of the document *at the
time the operation was applied*.  Replaying the records in order against
the snapshot they follow is deterministic, which is the whole contract:
the log stores the operation language (FLUX-style), never grammar
internals.

Durability protocol: :meth:`WriteAheadLog.append` writes the framed
record and fsyncs **before** the caller mutates the in-memory document.
A crash can therefore leave (a) no trace of the in-flight operation,
(b) a torn/corrupt tail record, or (c) a complete record whose apply
never ran -- recovery handles all three (see
:mod:`repro.storage.recovery`).  On open, a torn or checksum-corrupt
tail is truncated away (not fatal): those bytes belong to an operation
that was never acknowledged.  Anything *after* the first bad record is
dropped with it -- a valid-looking frame beyond a corrupt one cannot
have been acknowledged either.

Segmentation (:class:`SegmentedWal`): the live log of generation ``g``
is a *chain* of bounded files -- ``wal.{g}`` (segment 0, so an
unsegmented PR-6 store is simply a chain of length one) followed by
``wal.{g}.000001``, ``wal.{g}.000002``, ...  Appends go to the final
segment; once it outgrows ``segment_bytes`` the chain *rotates*: the
active segment is sealed and a fresh one is created (header fsync'd,
directory entry fsync'd).  Sealed segments are immutable, so corruption
or a write failure is isolated to the one segment it struck: a torn
tail is legal only in the final segment, and a non-final segment that
fails its scan is hard corruption, reported with file path, byte
offset, and record ordinal.  Once a generation is fully checkpointed
its chain is *compacted* (:func:`compact_generation`) into a single
``wal.{g}.compact`` file -- same format, valid records only -- which
readers prefer over the chain; the rename is the commit point, so a
crash mid-compaction at worst leaves both forms on disk.

I/O errors: transient ``errno`` failures (``EIO``, ``ENOSPC``, ...)
during append/fsync are retried under a bounded-exponential
:class:`repro.storage.faults.RetryPolicy` -- each retry first truncates
the log back to the record's start offset (a failed fsync leaves the
page-cache state unknown, so the conservative move is rewrite, not
hope) and then rewrites the frame.  When retries are exhausted, or the
tail itself cannot be restored, append raises :class:`WalWriteError`
(never a raw ``OSError``) carrying the causing errno and whether the
on-disk tail is intact; :class:`repro.storage.durable.DurableXml`
turns that into read-only degraded mode.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Sequence, Tuple

from repro.trees.unranked import XmlNode
from repro.trees.xml_io import parse_xml, serialize_xml

from repro.storage.faults import RetryPolicy, StorageIO

__all__ = [
    "WAL_MAGIC",
    "DEFAULT_SEGMENT_BYTES",
    "WalRecordError",
    "WalWriteError",
    "WalScanReport",
    "WriteAheadLog",
    "SegmentedWal",
    "scan_wal",
    "scan_wal_report",
    "segment_path",
    "compact_path",
    "list_segments",
    "generation_wal_files",
    "compact_generation",
    "rename_record",
    "insert_record",
    "append_record",
    "delete_record",
    "batch_record",
    "batch_ops_from_record",
    "content_from_record",
]

WAL_MAGIC = b"RXWAL01\n"

_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

#: Frames larger than this are torn/garbage length fields, never real
#: records (a batch of thousands of ops stays far below); bounding the
#: length keeps a corrupt tail from provoking a giant allocation.
_MAX_RECORD = 64 * 1024 * 1024

#: Rotate the live WAL chain once its final segment outgrows this.
#: Small enough that a fault is quarantined to a few dozen records,
#: large enough that steady-state traffic rotates rarely relative to
#: the checkpoint cadence (DEFAULT_CHECKPOINT_WAL_BYTES is 4x this).
DEFAULT_SEGMENT_BYTES = 64 * 1024


class WalRecordError(ValueError):
    """Raised on malformed WAL record payloads and on corruption that a
    torn-tail truncation cannot legalize (bad magic, a torn *non-final*
    segment, a gap in a segment chain)."""


class WalWriteError(RuntimeError):
    """An append could not be made durable.

    Raised -- never a raw ``OSError`` -- when the retry budget for a
    transient I/O failure is exhausted, or when restoring the log tail
    after a failed write itself failed.  ``cause`` is the final
    ``OSError``; ``tail_intact`` reports whether the on-disk log still
    ends exactly at the last durable record (when ``False``, a torn
    tail is on disk -- recovery's torn-tail truncation will drop it,
    which is correct because the record was never acknowledged).
    """

    def __init__(
        self,
        message: str,
        cause: Optional[BaseException] = None,
        tail_intact: bool = True,
    ) -> None:
        super().__init__(message)
        self.cause = cause
        self.tail_intact = tail_intact
        self.errno = getattr(cause, "errno", None)


# ----------------------------------------------------------------------
# record payloads (the logical operation language)
# ----------------------------------------------------------------------
def _encode_content(content: Sequence[XmlNode]) -> List[str]:
    return [serialize_xml(node) for node in content]


def content_from_record(encoded: Sequence[str]) -> List[XmlNode]:
    """Decode insert/append content back to structure trees."""
    return [parse_xml(text) for text in encoded]


def rename_record(index: int, new_tag: str) -> dict:
    return {"op": "rename", "i": index, "tag": new_tag}


def insert_record(index: int, content: Sequence[XmlNode]) -> dict:
    return {"op": "insert", "i": index, "xml": _encode_content(content)}


def append_record(parent_index: int, content: Sequence[XmlNode]) -> dict:
    return {"op": "append", "i": parent_index,
            "xml": _encode_content(content)}


def delete_record(index: int) -> dict:
    return {"op": "delete", "i": index}


def batch_record(ops: Sequence[object]) -> dict:
    """Encode a list of ``BatchOp`` instances as one atomic record."""
    from repro.updates.batch import (
        BatchAppend, BatchDelete, BatchInsert, BatchRename,
    )

    encoded: List[dict] = []
    for op in ops:
        if isinstance(op, BatchRename):
            encoded.append(rename_record(op.index, op.new_tag))
        elif isinstance(op, BatchInsert):
            encoded.append(insert_record(op.index, op.content))
        elif isinstance(op, BatchAppend):
            encoded.append(append_record(op.parent_index, op.content))
        elif isinstance(op, BatchDelete):
            encoded.append(delete_record(op.index))
        else:
            raise WalRecordError(f"cannot log batch op {op!r}")
    return {"op": "batch", "ops": encoded}


def batch_ops_from_record(record: dict) -> List[object]:
    """Decode a ``batch`` record back into ``BatchOp`` instances."""
    from repro.updates.batch import (
        BatchAppend, BatchDelete, BatchInsert, BatchRename,
    )

    ops: List[object] = []
    for entry in record["ops"]:
        kind = entry.get("op")
        if kind == "rename":
            ops.append(BatchRename(entry["i"], entry["tag"]))
        elif kind == "insert":
            ops.append(BatchInsert(entry["i"],
                                   content_from_record(entry["xml"])))
        elif kind == "append":
            ops.append(BatchAppend(entry["i"],
                                   content_from_record(entry["xml"])))
        elif kind == "delete":
            ops.append(BatchDelete(entry["i"]))
        else:
            raise WalRecordError(f"unknown batch op kind {kind!r}")
    return ops


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def encode_payload(record: dict) -> bytes:
    """Canonical JSON bytes for one record (stable across replays)."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


# ----------------------------------------------------------------------
# scanning
# ----------------------------------------------------------------------
@dataclass
class WalScanReport:
    """Everything a scan of one WAL file learned.

    ``spans[i]`` is the ``(start, end)`` byte range of ``records[i]``;
    ``valid`` is the offset just past the last valid record; ``torn``
    reports trailing bytes beyond it, with ``tail_reason`` naming why
    the first bad frame was rejected.  ``tail_message`` is the
    canonical operator-facing description -- file path, byte offset,
    and record ordinal included -- that error paths embed verbatim.
    """

    path: str
    records: List[dict] = field(default_factory=list)
    spans: List[Tuple[int, int]] = field(default_factory=list)
    valid: int = 0
    total: int = 0
    torn: bool = False
    tail_reason: Optional[str] = None

    @property
    def tail_message(self) -> Optional[str]:
        if not self.torn:
            return None
        return (
            f"{self.path}: invalid WAL tail at byte offset {self.valid} "
            f"(record #{len(self.records)}): {self.tail_reason}"
        )


def scan_wal_report(path: str) -> WalScanReport:
    """Read every valid record of a WAL file, with full provenance.

    A file without the magic header raises :class:`WalRecordError` --
    that is not a torn tail but a file that was never a WAL (or a
    rotation crash artifact, which :class:`SegmentedWal` legalizes for
    the final chain position only).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < len(WAL_MAGIC) or not data.startswith(WAL_MAGIC):
        raise WalRecordError(f"{path}: not a WAL file (bad magic)")
    report = WalScanReport(path=path, valid=len(WAL_MAGIC),
                           total=len(data))
    offset = len(WAL_MAGIC)
    total = len(data)
    reason = None
    while offset < total:
        if offset + _HEADER.size > total:
            reason = "torn frame header"
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if length > _MAX_RECORD:
            reason = (f"oversized record length {length} "
                      f"(limit {_MAX_RECORD})")
            break
        if end > total:
            reason = f"torn payload ({total - start} of {length} bytes)"
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            reason = "payload checksum mismatch"
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except ValueError:
            # checksum collision on garbage: treat as corrupt tail
            reason = "undecodable record payload"
            break
        report.records.append(record)
        report.spans.append((offset, end))
        offset = end
        report.valid = end
    report.torn = report.valid != total
    report.tail_reason = reason
    return report


def scan_wal(path: str) -> Tuple[List[dict], int, bool]:
    """Compatibility wrapper: ``(records, valid_size, torn)``."""
    report = scan_wal_report(path)
    return report.records, report.valid, report.torn


# ----------------------------------------------------------------------
# segment path arithmetic
# ----------------------------------------------------------------------
def segment_path(directory: str, generation: int, segment: int) -> str:
    """Chain file for ``(generation, segment)``; segment 0 keeps the
    unsegmented ``wal.{g}`` name so pre-segmentation stores open as
    chains of length one."""
    base = f"wal.{generation:06d}"
    if segment == 0:
        return os.path.join(directory, base)
    return os.path.join(directory, f"{base}.{segment:06d}")


def compact_path(directory: str, generation: int) -> str:
    return os.path.join(directory, f"wal.{generation:06d}.compact")


def list_segments(directory: str, generation: int) -> List[int]:
    """Sorted chain segment indices of ``generation`` present on disk
    (the compacted file and temp files are not chain segments)."""
    base = f"wal.{generation:06d}"
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if name == base:
            found.append(0)
        elif name.startswith(base + "."):
            suffix = name[len(base) + 1:]
            if suffix.isdigit():
                found.append(int(suffix))
    return sorted(found)


def generation_wal_files(directory: str, generation: int) -> List[str]:
    """Every WAL file of a generation -- chain segments and compacted
    form alike -- for retirement and scrubbing."""
    paths = [segment_path(directory, generation, seg)
             for seg in list_segments(directory, generation)]
    cpath = compact_path(directory, generation)
    if os.path.exists(cpath):
        paths.append(cpath)
    return paths


# ----------------------------------------------------------------------
# one log file
# ----------------------------------------------------------------------
class WriteAheadLog:
    """An append-only, fsync-on-commit operation log (one file).

    ``create=True`` initializes a fresh file (magic header fsync'd, the
    directory entry fsync'd); otherwise the existing file is scanned, a
    torn/corrupt tail is truncated away, and the surviving records are
    exposed as ``recovered_records`` for the recovery layer to replay.

    ``retry`` governs transient-I/O-failure handling in :meth:`append`
    and during creation; see :class:`WalWriteError` for the exhaustion
    contract.
    """

    def __init__(
        self,
        path: str,
        io: Optional[StorageIO] = None,
        create: bool = False,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.path = path
        self._io = io if io is not None else StorageIO()
        self._retry = retry if retry is not None else RetryPolicy()
        self.recovered_records: List[dict] = []
        self.record_spans: List[Tuple[int, int]] = []
        self.truncated_tail = False
        #: The canonical description of the tail that was truncated on
        #: open (path, byte offset, record ordinal) -- ``None`` when
        #: the file ended cleanly.
        self.tail_error: Optional[str] = None
        if create:
            # O_EXCL-like freshness is the caller's concern (generation
            # numbering); a leftover file from a crashed checkpoint or
            # rotation is legitimately overwritten here.
            self._create_with_retry()
            self._size = len(WAL_MAGIC)
        else:
            report = scan_wal_report(path)
            self.recovered_records = report.records
            self.record_spans = list(report.spans)
            self.truncated_tail = report.torn
            self.tail_error = report.tail_message
            if report.torn:
                self._io.truncate(path, report.valid, "wal:open")
            self._size = report.valid
        self._handle: Optional[IO[bytes]] = None
        #: Written-but-not-fsync'd bytes outstanding (group commit).
        self._unsynced = False

    def _create_with_retry(self) -> None:
        """Write the fresh header, retrying transient I/O failures; a
        partial file is removed between attempts so a later scan never
        sees a half-written header as anything but a crash artifact."""
        last: Optional[OSError] = None
        for delay in list(self._retry.delays()) + [None]:
            try:
                with open(self.path, "wb") as handle:
                    self._io.write(handle, WAL_MAGIC, "wal:create")
                    self._io.fsync(handle, "wal:create")
                self._io.fsync_dir(os.path.dirname(self.path)
                                   or ".", "wal:create")
                return
            except OSError as exc:
                last = exc
                try:
                    os.remove(self.path)
                except OSError:
                    pass
                if delay is not None:
                    self._retry.sleep(delay)
        raise WalWriteError(
            f"{self.path}: could not create WAL segment after "
            f"{self._retry.attempts} attempts: {last}",
            cause=last,
        )

    # -- appending -----------------------------------------------------
    @property
    def size(self) -> int:
        """Bytes of committed log, the checkpoint-cadence metric."""
        return self._size

    @property
    def record_count(self) -> int:
        return len(self.record_spans)

    def _ensure_handle(self) -> IO[bytes]:
        if self._handle is None:
            self._handle = self._io.open_append(self.path)
        return self._handle

    def append(self, record: dict) -> int:
        """Durably append one record; returns its start offset.

        The record is on disk (written *and* fsync'd) when this
        returns -- the caller may then apply the operation in memory.
        A transient I/O failure is retried under the log's
        :class:`RetryPolicy`, restoring the tail (truncate back to the
        record's start) before each rewrite; exhaustion raises
        :class:`WalWriteError`.
        """
        framed = _frame(encode_payload(record))
        offset = self._size
        last: Optional[OSError] = None
        for delay in list(self._retry.delays()) + [None]:
            try:
                handle = self._ensure_handle()
                self._io.write(handle, framed, "wal:append")
                self._io.fsync(handle, "wal:append")
                self._size = offset + len(framed)
                self.record_spans.append((offset, self._size))
                return offset
            except OSError as exc:
                last = exc
                # A failed write may have torn bytes onto disk and a
                # failed fsync leaves the page cache unknowable --
                # restore the durable tail before retrying (or giving
                # up: an un-restored tail must be reported, because
                # only recovery's truncation can legalize it).
                try:
                    self._restore_tail(offset)
                except OSError as trunc_exc:
                    raise WalWriteError(
                        f"{self.path}: append failed at byte offset "
                        f"{offset} (record #{self.record_count}) and "
                        f"the tail could not be restored: {trunc_exc}",
                        cause=exc,
                        tail_intact=False,
                    ) from exc
                if delay is not None:
                    self._retry.sleep(delay)
        raise WalWriteError(
            f"{self.path}: append failed at byte offset {offset} "
            f"(record #{self.record_count}) after "
            f"{self._retry.attempts} attempts: {last}",
            cause=last,
        )

    def append_nosync(self, record: dict) -> int:
        """Append one record *without* fsyncing (group commit).

        The record is written and bookkept exactly as in
        :meth:`append`, but durability is deferred to a later
        :meth:`sync` -- callers pipeline several appends and coalesce
        their fsyncs.  The caller must not acknowledge the operation
        until a ``sync`` covering this record has returned.  Failure
        semantics match :meth:`append` (retry, tail restoration,
        :class:`WalWriteError` on exhaustion).
        """
        framed = _frame(encode_payload(record))
        offset = self._size
        last: Optional[OSError] = None
        for delay in list(self._retry.delays()) + [None]:
            try:
                handle = self._ensure_handle()
                self._io.write(handle, framed, "wal:append")
                self._unsynced = True
                self._size = offset + len(framed)
                self.record_spans.append((offset, self._size))
                return offset
            except OSError as exc:
                last = exc
                try:
                    self._restore_tail(offset)
                except OSError as trunc_exc:
                    raise WalWriteError(
                        f"{self.path}: append failed at byte offset "
                        f"{offset} (record #{self.record_count}) and "
                        f"the tail could not be restored: {trunc_exc}",
                        cause=exc,
                        tail_intact=False,
                    ) from exc
                if delay is not None:
                    self._retry.sleep(delay)
        raise WalWriteError(
            f"{self.path}: append failed at byte offset {offset} "
            f"(record #{self.record_count}) after "
            f"{self._retry.attempts} attempts: {last}",
            cause=last,
        )

    def sync(self) -> None:
        """Fsync any bytes appended via :meth:`append_nosync`.

        fsync flushes the file's dirty pages regardless of which handle
        wrote them, so this also covers appends whose handle has since
        been closed.  A failed fsync leaves the page-cache state
        unknowable -- no retry is meaningful -- so the error surfaces
        directly as :class:`WalWriteError` and the caller must degrade.
        """
        if not self._unsynced:
            return
        try:
            handle = self._ensure_handle()
            self._io.fsync(handle, "wal:sync")
        except OSError as exc:
            raise WalWriteError(
                f"{self.path}: sync failed with "
                f"{self.record_count} records appended: {exc}",
                cause=exc,
            ) from exc
        self._unsynced = False

    def _restore_tail(self, offset: int) -> None:
        self.close()
        self._io.truncate(self.path, offset, "wal:rollback")
        self._size = offset

    def rollback_to(self, offset: int) -> None:
        """Cut the log back to ``offset`` (a failed in-memory apply:
        the logged operation must not survive into replay)."""
        if offset > self._size:
            raise ValueError(f"cannot roll forward to {offset}")
        self.close()
        self._io.truncate(self.path, offset, "wal:rollback")
        self._size = offset
        while self.record_spans and self.record_spans[-1][0] >= offset:
            self.record_spans.pop()

    def drop_last_record(self) -> None:
        """Cut the final (just-rejected) record off the log, keeping
        ``recovered_records`` in step -- recovery's path for a durable
        but never-acknowledged tail operation."""
        if not self.record_spans:
            raise ValueError(f"{self.path}: no record to drop")
        start, _ = self.record_spans[-1]
        self.rollback_to(start)
        if self.recovered_records:
            self.recovered_records.pop()

    def record_source(self, position: int) -> Tuple[str, int]:
        """(file path, byte offset) of record ``position`` -- replay
        error context."""
        if position < len(self.record_spans):
            return self.path, self.record_spans[position][0]
        return self.path, self._size

    @property
    def closed(self) -> bool:
        return self._handle is None

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# the segmented chain
# ----------------------------------------------------------------------
class SegmentedWal:
    """The live WAL of one generation: a rotated chain of bounded
    segments, presenting the same append/rollback/replay surface as a
    single :class:`WriteAheadLog`.

    Append tokens are opaque ``(segment, offset)`` pairs -- callers
    hold them only to hand back to :meth:`rollback_to`.  Opening an
    existing chain enforces the rotation invariant: every non-final
    segment was sealed by a successful rotation and must scan clean
    end-to-end (a torn non-final segment is hard corruption, reported
    with path/offset/ordinal); only the final segment may carry a torn
    tail (truncated away) or a missing/torn header (a crash between
    rotation's file creation and its fsyncs -- the artifact is empty of
    acknowledged records and is recreated).
    """

    def __init__(
        self,
        directory: str,
        generation: int,
        io: Optional[StorageIO] = None,
        create: bool = False,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        retry: Optional[RetryPolicy] = None,
        retire_torn_creation: bool = False,
    ) -> None:
        self.directory = directory
        self.generation = generation
        self._retire_torn_creation = retire_torn_creation
        self._io = io if io is not None else StorageIO()
        self._segment_bytes = max(int(segment_bytes), len(WAL_MAGIC) + 1)
        self._retry = retry if retry is not None else RetryPolicy()
        self.recovered_records: List[dict] = []
        #: ``(segment, start, end)`` per record, recovered and appended.
        self._spans: List[Tuple[int, int, int]] = []
        self._sealed_sizes: Dict[int, int] = {}
        self.truncated_tail = False
        self.tail_error: Optional[str] = None
        #: Rotations performed by *this* process (not chain length).
        self.rotations = 0
        if create:
            self._active = WriteAheadLog(
                segment_path(directory, generation, 0),
                io=self._io, create=True, retry=self._retry,
            )
            self._active_index = 0
        else:
            self._open_chain()
        # Group-commit state: one fsync at a time, and a high-water
        # mark of active-segment bytes known durable so concurrent
        # ``sync_to`` calls can coalesce.  Everything recovered or
        # freshly created is already on disk and fsync'd.
        self._sync_lock = threading.Lock()
        self._synced_size = self._active.size

    def _open_chain(self) -> None:
        indices = list_segments(self.directory, self.generation)
        if not indices:
            raise FileNotFoundError(
                segment_path(self.directory, self.generation, 0)
            )
        if indices != list(range(len(indices))):
            raise WalRecordError(
                f"{segment_path(self.directory, self.generation, 0)}: "
                f"WAL segment chain has gaps: present {indices}"
            )
        final = indices[-1]
        # A crash between rotation's create and its fsyncs can leave a
        # final segment with a missing or torn header; it holds no
        # acknowledged record, so retire the artifact and let the
        # sealed predecessor resume as the active segment.
        while final > 0:
            try:
                scan_wal_report(
                    segment_path(self.directory, self.generation, final)
                )
                break
            except WalRecordError:
                os.remove(
                    segment_path(self.directory, self.generation, final)
                )
                final -= 1
        if final == 0 and self._retire_torn_creation:
            # A crash during the chain's very *creation* (a checkpoint
            # cutting the log over to this generation) leaves segment 0
            # itself header-less.  Like a rotation artifact it holds no
            # acknowledged record, but there is no sealed predecessor
            # to fall back on: for callers probing optional chains
            # (continuation recovery), retire the debris and report the
            # chain as absent rather than corrupt.
            path = segment_path(self.directory, self.generation, 0)
            try:
                scan_wal_report(path)
            except WalRecordError:
                os.remove(path)
                raise FileNotFoundError(path) from None
        for seg in range(final):
            path = segment_path(self.directory, self.generation, seg)
            report = scan_wal_report(path)
            if report.torn:
                raise WalRecordError(
                    f"non-final WAL segment is corrupt: "
                    f"{report.tail_message}"
                )
            self._ingest(seg, report)
            self._sealed_sizes[seg] = report.valid
        self._active = WriteAheadLog(
            segment_path(self.directory, self.generation, final),
            io=self._io, retry=self._retry,
        )
        self._active_index = final
        self.truncated_tail = self._active.truncated_tail
        self.tail_error = self._active.tail_error
        for start, end in self._active.record_spans:
            self._spans.append((final, start, end))
        self.recovered_records.extend(self._active.recovered_records)

    def _ingest(self, seg: int, report: WalScanReport) -> None:
        self.recovered_records.extend(report.records)
        for start, end in report.spans:
            self._spans.append((seg, start, end))

    # -- chain shape ---------------------------------------------------
    @property
    def size(self) -> int:
        """Total committed bytes across the chain (checkpoint cadence)."""
        return sum(self._sealed_sizes.values()) + self._active.size

    @property
    def segment_count(self) -> int:
        return self._active_index + 1

    @property
    def active_segment(self) -> int:
        return self._active_index

    @property
    def active_segment_size(self) -> int:
        return self._active.size

    @property
    def segment_paths(self) -> List[str]:
        return [segment_path(self.directory, self.generation, seg)
                for seg in range(self.segment_count)]

    def to_dict(self) -> dict:
        """Flat numeric view of the chain shape (the shared stats-object
        protocol -- what ``health()`` and the metrics gauge source show)."""
        return {
            "generation": self.generation,
            "size_bytes": self.size,
            "segment_count": self.segment_count,
            "active_segment": self.active_segment,
            "active_segment_bytes": self.active_segment_size,
            "rotations": self.rotations,
            "record_count": self.record_count,
        }

    @property
    def path(self) -> str:
        """The active segment's file (the append target)."""
        return self._active.path

    @property
    def record_count(self) -> int:
        return len(self._spans)

    def record_source(self, position: int) -> Tuple[str, int]:
        """(file path, byte offset) of record ``position``."""
        if position < len(self._spans):
            seg, start, _ = self._spans[position]
            return (
                segment_path(self.directory, self.generation, seg), start
            )
        return self._active.path, self._active.size

    # -- appending -----------------------------------------------------
    def append(self, record: dict) -> Tuple[int, int]:
        """Durably append one record; returns its rollback token.

        Rotates first when the active segment has outgrown the bound
        (and already holds at least one record -- a single oversized
        record never spins the rotation)."""
        if self._active.size >= self._segment_bytes \
                and self._active.record_count > 0:
            with self._sync_lock:
                self._active.sync()
                self._rotate()
                self._synced_size = self._active.size
        offset = self._active.append(record)
        self._spans.append((self._active_index, offset,
                            self._active.size))
        with self._sync_lock:
            self._synced_size = max(self._synced_size,
                                    self._active.size)
        return self._active_index, offset

    def append_nosync(self, record: dict) -> Tuple[int, int, int]:
        """Append one record without fsyncing; returns a sync token.

        The token is ``(segment, start, end)``: ``(segment, start)`` is
        a :meth:`rollback_to`-compatible prefix, and ``end`` is the
        active-segment byte the caller must see durable --
        :meth:`sync_to` with the token blocks (or no-ops, when another
        commit's fsync already covered it) until it is.  If the append
        triggers a rotation, the outgoing segment is fsync'd first so
        sealed segments stay durable end-to-end.
        """
        if self._active.size >= self._segment_bytes \
                and self._active.record_count > 0:
            with self._sync_lock:
                self._active.sync()
                self._rotate()
                self._synced_size = self._active.size
        offset = self._active.append_nosync(record)
        self._spans.append((self._active_index, offset,
                            self._active.size))
        return self._active_index, offset, self._active.size

    def sync_to(self, token: Tuple[int, int, int]) -> None:
        """Make the record behind an :meth:`append_nosync` token
        durable, coalescing with concurrent callers.

        Sealed segments are fsync'd before rotation, so a token from an
        earlier segment is already durable.  For the active segment a
        single fsync covers every byte written before it started; the
        high-water mark lets the commits whose records it swept wave
        their own fsync through.
        """
        seg, _start, end = token
        with self._sync_lock:
            if seg < self._active_index:
                return
            if end <= self._synced_size:
                return
            # Snapshot the size *before* fsync: bytes appended while
            # the fsync is in flight may not be covered by it.
            target = self._active.size
            self._active.sync()
            self._synced_size = max(self._synced_size, target)

    def sync(self) -> None:
        """Fsync the active segment (checkpoint cutover barrier)."""
        with self._sync_lock:
            target = self._active.size
            self._active.sync()
            self._synced_size = max(self._synced_size, target)

    def _rotate(self) -> None:
        nxt = self._active_index + 1
        path = segment_path(self.directory, self.generation, nxt)
        self._sealed_sizes[self._active_index] = self._active.size
        self._active.close()
        try:
            fresh = WriteAheadLog(path, io=self._io, create=True,
                                  retry=self._retry)
        except WalWriteError:
            # The chain stays on the sealed-but-still-final segment;
            # the header retry loop already removed the partial file,
            # so a reopen sees a clean (if oversized) chain.
            del self._sealed_sizes[self._active_index]
            self._active = WriteAheadLog(
                segment_path(self.directory, self.generation,
                             self._active_index),
                io=self._io, retry=self._retry,
            )
            # Reopening rescans: drop the duplicate span bookkeeping.
            self._active.record_spans = [
                (s, e) for seg, s, e in self._spans
                if seg == self._active_index
            ]
            self._active.recovered_records = []
            raise
        self._active = fresh
        self._active_index = nxt
        self.rotations += 1

    def rollback_to(self, token: Sequence[int]) -> None:
        """Cut the chain back to an append token (failed apply).

        Accepts both ``append`` tokens ``(segment, start)`` and
        ``append_nosync`` tokens ``(segment, start, end)``."""
        seg, offset = token[0], token[1]
        if seg != self._active_index:
            raise ValueError(
                f"rollback token {token} is not in the active segment "
                f"{self._active_index}"
            )
        try:
            self._active.rollback_to(offset)
        except OSError as exc:
            raise WalWriteError(
                f"{self._active.path}: rollback to byte offset {offset} "
                f"failed: {exc}",
                cause=exc,
                tail_intact=False,
            ) from exc
        while self._spans and self._spans[-1][0] == seg \
                and self._spans[-1][1] >= offset:
            self._spans.pop()
        with self._sync_lock:
            self._synced_size = min(self._synced_size,
                                    self._active.size)

    def seal_tail(self) -> None:
        """Re-truncate any on-disk bytes beyond the last acknowledged
        record -- the strand a failed append leaves behind when even
        its tail restoration failed (``tail_intact=False``).  Must run
        before the chain becomes a checkpoint's degradation fallback:
        a stranded record that would apply cleanly on replay would make
        the fallback reconstruction diverge from the snapshot being
        written.  Raises ``OSError`` when the disk still refuses the
        truncate (the caller's checkpoint fails before its commit
        point, changing nothing)."""
        size = self._active.size
        try:
            actual = os.path.getsize(self._active.path)
        except OSError:
            return
        if actual > size:
            self._active.close()
            self._io.truncate(self._active.path, size, "wal:rollback")

    def drop_last_record(self) -> None:
        """Truncate the chain's final record (recovery's path for a
        durable but never-acknowledged tail operation)."""
        if not self._spans:
            raise ValueError(f"{self.path}: no record to drop")
        seg, start, _ = self._spans[-1]
        if seg == self._active_index:
            self._active.rollback_to(start)
        else:
            # Rotation created an (empty) successor before the crash;
            # the doomed record sits at the tail of a sealed segment.
            path = segment_path(self.directory, self.generation, seg)
            self._io.truncate(path, start, "wal:rollback")
            self._sealed_sizes[seg] = start
        self._spans.pop()
        if self.recovered_records:
            self.recovered_records.pop()

    @property
    def closed(self) -> bool:
        return self._active.closed

    def close(self) -> None:
        self._active.close()

    def __enter__(self) -> "SegmentedWal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------
def compact_generation(
    directory: str,
    generation: int,
    io: Optional[StorageIO] = None,
) -> Optional[str]:
    """Merge a fully-checkpointed generation's WAL chain into one
    ``wal.{g}.compact`` file and retire the chain files.

    Only the valid records survive (a torn tail or a rotation artifact
    in the old chain belonged to an operation that was never
    acknowledged -- compaction is also how such damage is retired).
    The temp-write + rename + dirsync sequence makes the switch
    crash-atomic: readers prefer the compacted form, so a crash between
    the rename and the chain removals at worst leaves both on disk.
    Returns the compacted path, or ``None`` when the generation has no
    WAL files at all.  Must never be called on the *live* generation --
    its final segment legitimately grows.
    """
    if io is None:
        io = StorageIO()
    target = compact_path(directory, generation)
    indices = list_segments(directory, generation)
    if not indices:
        return target if os.path.exists(target) else None
    frames: List[bytes] = []
    for seg in indices:
        path = segment_path(directory, generation, seg)
        try:
            report = scan_wal_report(path)
        except WalRecordError:
            continue  # rotation artifact: no acknowledged records
        for record in report.records:
            frames.append(_frame(encode_payload(record)))
    tmp = target + ".tmp"
    with open(tmp, "wb") as handle:
        io.write(handle, WAL_MAGIC + b"".join(frames), "wal:compact")
        io.fsync(handle, "wal:compact")
    io.replace(tmp, target, "wal:compact")
    io.fsync_dir(directory, "wal:compact")
    for seg in indices:
        io.remove(segment_path(directory, generation, seg), "wal:compact")
    return target
