"""The write-ahead log of logical update operations.

File layout::

    +--------------------+   8-byte magic ``b"RXWAL01\\n"``
    | record | record | ...

    record := u32le payload_length | u32le crc32(payload) | payload

Payloads are canonical JSON (sorted keys, no whitespace) describing one
committed operation -- ``rename``/``insert``/``append``/``delete``/
``batch`` -- in the element-index coordinates of the document *at the
time the operation was applied*.  Replaying the records in order against
the snapshot they follow is deterministic, which is the whole contract:
the log stores the operation language (FLUX-style), never grammar
internals.

Durability protocol: :meth:`WriteAheadLog.append` writes the framed
record and fsyncs **before** the caller mutates the in-memory document.
A crash can therefore leave (a) no trace of the in-flight operation,
(b) a torn/corrupt tail record, or (c) a complete record whose apply
never ran -- recovery handles all three (see
:mod:`repro.storage.recovery`).  On open, a torn or checksum-corrupt
tail is truncated away (not fatal): those bytes belong to an operation
that was never acknowledged.  Anything *after* the first bad record is
dropped with it -- a valid-looking frame beyond a corrupt one cannot
have been acknowledged either.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Dict, IO, List, Optional, Sequence, Tuple

from repro.trees.unranked import XmlNode
from repro.trees.xml_io import parse_xml, serialize_xml

from repro.storage.faults import StorageIO

__all__ = [
    "WAL_MAGIC",
    "WalRecordError",
    "WriteAheadLog",
    "scan_wal",
    "rename_record",
    "insert_record",
    "append_record",
    "delete_record",
    "batch_record",
    "batch_ops_from_record",
    "content_from_record",
]

WAL_MAGIC = b"RXWAL01\n"

_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

#: Frames larger than this are torn/garbage length fields, never real
#: records (a batch of thousands of ops stays far below); bounding the
#: length keeps a corrupt tail from provoking a giant allocation.
_MAX_RECORD = 64 * 1024 * 1024


class WalRecordError(ValueError):
    """Raised on malformed WAL record payloads (not on torn tails)."""


# ----------------------------------------------------------------------
# record payloads (the logical operation language)
# ----------------------------------------------------------------------
def _encode_content(content: Sequence[XmlNode]) -> List[str]:
    return [serialize_xml(node) for node in content]


def content_from_record(encoded: Sequence[str]) -> List[XmlNode]:
    """Decode insert/append content back to structure trees."""
    return [parse_xml(text) for text in encoded]


def rename_record(index: int, new_tag: str) -> dict:
    return {"op": "rename", "i": index, "tag": new_tag}


def insert_record(index: int, content: Sequence[XmlNode]) -> dict:
    return {"op": "insert", "i": index, "xml": _encode_content(content)}


def append_record(parent_index: int, content: Sequence[XmlNode]) -> dict:
    return {"op": "append", "i": parent_index,
            "xml": _encode_content(content)}


def delete_record(index: int) -> dict:
    return {"op": "delete", "i": index}


def batch_record(ops: Sequence[object]) -> dict:
    """Encode a list of ``BatchOp`` instances as one atomic record."""
    from repro.updates.batch import (
        BatchAppend, BatchDelete, BatchInsert, BatchRename,
    )

    encoded: List[dict] = []
    for op in ops:
        if isinstance(op, BatchRename):
            encoded.append(rename_record(op.index, op.new_tag))
        elif isinstance(op, BatchInsert):
            encoded.append(insert_record(op.index, op.content))
        elif isinstance(op, BatchAppend):
            encoded.append(append_record(op.parent_index, op.content))
        elif isinstance(op, BatchDelete):
            encoded.append(delete_record(op.index))
        else:
            raise WalRecordError(f"cannot log batch op {op!r}")
    return {"op": "batch", "ops": encoded}


def batch_ops_from_record(record: dict) -> List[object]:
    """Decode a ``batch`` record back into ``BatchOp`` instances."""
    from repro.updates.batch import (
        BatchAppend, BatchDelete, BatchInsert, BatchRename,
    )

    ops: List[object] = []
    for entry in record["ops"]:
        kind = entry.get("op")
        if kind == "rename":
            ops.append(BatchRename(entry["i"], entry["tag"]))
        elif kind == "insert":
            ops.append(BatchInsert(entry["i"],
                                   content_from_record(entry["xml"])))
        elif kind == "append":
            ops.append(BatchAppend(entry["i"],
                                   content_from_record(entry["xml"])))
        elif kind == "delete":
            ops.append(BatchDelete(entry["i"]))
        else:
            raise WalRecordError(f"unknown batch op kind {kind!r}")
    return ops


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def encode_payload(record: dict) -> bytes:
    """Canonical JSON bytes for one record (stable across replays)."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


# ----------------------------------------------------------------------
# scanning
# ----------------------------------------------------------------------
def scan_wal(path: str) -> Tuple[List[dict], int, bool]:
    """Read every valid record of a WAL file.

    Returns ``(records, valid_size, torn)`` where ``valid_size`` is the
    byte offset just past the last valid record and ``torn`` reports
    whether trailing bytes beyond it were found (a torn or corrupt
    tail, to be truncated by the caller).  A file without the magic
    header raises :class:`WalRecordError` -- that is not a torn tail
    but a file that was never a WAL.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < len(WAL_MAGIC) or not data.startswith(WAL_MAGIC):
        raise WalRecordError(f"{path}: not a WAL file (bad magic)")
    records: List[dict] = []
    offset = len(WAL_MAGIC)
    valid = offset
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            break  # torn frame header
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if length > _MAX_RECORD or end > total:
            break  # torn payload (or garbage length field)
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # corrupt tail
        try:
            record = json.loads(payload.decode("utf-8"))
        except ValueError:
            break  # checksum collision on garbage: treat as corrupt tail
        records.append(record)
        offset = end
        valid = end
    return records, valid, valid != total


# ----------------------------------------------------------------------
# the log
# ----------------------------------------------------------------------
class WriteAheadLog:
    """An append-only, fsync-on-commit operation log.

    ``create=True`` initializes a fresh file (magic header, fsync'd);
    otherwise the existing file is scanned, a torn/corrupt tail is
    truncated away, and the surviving records are exposed as
    ``recovered_records`` for the recovery layer to replay.
    """

    def __init__(
        self,
        path: str,
        io: Optional[StorageIO] = None,
        create: bool = False,
    ) -> None:
        self.path = path
        self._io = io if io is not None else StorageIO()
        self.recovered_records: List[dict] = []
        self.truncated_tail = False
        if create:
            # O_EXCL-like freshness is the caller's concern (generation
            # numbering); a leftover file from a crashed checkpoint is
            # legitimately overwritten here.
            with open(path, "wb") as handle:
                self._io.write(handle, WAL_MAGIC, "wal:create")
                self._io.fsync(handle, "wal:create")
            self._size = len(WAL_MAGIC)
        else:
            records, valid, torn = scan_wal(path)
            self.recovered_records = records
            self.truncated_tail = torn
            if torn:
                self._io.truncate(path, valid, "wal:open")
            self._size = valid
        self._handle: Optional[IO[bytes]] = None

    # -- appending -----------------------------------------------------
    @property
    def size(self) -> int:
        """Bytes of committed log, the checkpoint-cadence metric."""
        return self._size

    def _ensure_handle(self) -> IO[bytes]:
        if self._handle is None:
            self._handle = self._io.open_append(self.path)
        return self._handle

    def append(self, record: dict) -> int:
        """Durably append one record; returns its start offset.

        The record is on disk (written *and* fsync'd) when this
        returns -- the caller may then apply the operation in memory.
        """
        framed = _frame(encode_payload(record))
        handle = self._ensure_handle()
        offset = self._size
        self._io.write(handle, framed, "wal:append")
        self._io.fsync(handle, "wal:append")
        self._size += len(framed)
        return offset

    def rollback_to(self, offset: int) -> None:
        """Cut the log back to ``offset`` (a failed in-memory apply:
        the logged operation must not survive into replay)."""
        if offset > self._size:
            raise ValueError(f"cannot roll forward to {offset}")
        self.close()
        self._io.truncate(self.path, offset, "wal:rollback")
        self._size = offset

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
