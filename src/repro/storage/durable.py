"""``DurableXml``: the crash-safe facade over ``CompressedXml``.

Commit protocol for every mutating call (the WAL-first rule)::

    validate cheaply -> WAL append + fsync -> apply in memory
                                           -> rollback WAL on failure
    -> maybe checkpoint (WAL grew past the threshold)

The logged record -- not the caller's arguments -- is what gets
applied, through the same :func:`repro.storage.recovery.apply_record`
dispatcher recovery uses, so a replay after a crash reconstructs
*exactly* the state the live process had.  An apply that raises (an
out-of-range index, a malformed fragment) rolls the WAL back to the
record's start offset and leaves the in-memory document untouched
(single ops are exception-safe; batches run transactionally), so a
failed operation is a no-op both on disk and in memory.

Checkpointing writes ``snapshot.(g+1)`` crash-atomically, creates an
empty ``wal.(g+1)``, and then switches the generation manifest -- the
atomic commit point.  Generation ``g`` is kept as the degradation
fallback; generations below it are retired.  The cadence check rides
the same after-update hook as the document's auto-recompression
policy: after each committed operation, a WAL that has outgrown
``checkpoint_wal_bytes`` triggers a checkpoint.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Union, TYPE_CHECKING

from repro.storage.faults import StorageIO
from repro.storage.recovery import (
    RecoveredDocument,
    StoreLayout,
    apply_record,
    read_manifest,
    recover,
    write_manifest,
)
from repro.storage.snapshot import write_snapshot
from repro.storage.wal import (
    WriteAheadLog,
    append_record,
    batch_record,
    delete_record,
    insert_record,
    rename_record,
)
from repro.trees.unranked import XmlNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api import CompressedXml
    from repro.updates.batch import BatchBuilder, BatchOp, BatchStats

__all__ = ["DurableXml", "DEFAULT_CHECKPOINT_WAL_BYTES"]

#: Checkpoint once the live WAL outgrows this many bytes.  Small enough
#: that recovery replays at most a few hundred operations, large enough
#: that steady-state traffic amortizes a snapshot over many commits.
DEFAULT_CHECKPOINT_WAL_BYTES = 256 * 1024


def _normalize_content(
    content: Union[XmlNode, Sequence[XmlNode]]
) -> List[XmlNode]:
    from repro.updates.batch import _normalize_content as normalize

    return list(normalize(content))


class DurableXml:
    """A ``CompressedXml`` whose updates survive process death.

    Construct with :meth:`create` (new store) or :meth:`open`
    (recover an existing one); never directly.  Read methods --
    ``select``/``tags``/``to_xml``/``element_count``/... -- are
    delegated to the in-memory document untouched; the update methods
    are wrapped in the WAL-first commit protocol.
    """

    def __init__(
        self,
        doc: "CompressedXml",
        directory: str,
        wal: WriteAheadLog,
        generation: int,
        io: StorageIO,
        checkpoint_wal_bytes: int,
    ) -> None:
        self._doc = doc
        self._layout = StoreLayout(directory)
        self._wal = wal
        self._generation = generation
        self._io = io
        self._checkpoint_wal_bytes = checkpoint_wal_bytes
        #: Populated by :meth:`open` with what recovery had to do.
        self.last_recovery: Optional[RecoveredDocument] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str,
        document: "CompressedXml",
        io: Optional[StorageIO] = None,
        checkpoint_wal_bytes: int = DEFAULT_CHECKPOINT_WAL_BYTES,
        overwrite: bool = False,
    ) -> "DurableXml":
        """Initialize a new store directory around ``document``.

        Writes ``snapshot.000000``, an empty ``wal.000000``, and the
        generation-0 manifest.  An existing store is refused unless
        ``overwrite=True`` (which restarts it at generation 0).
        """
        if io is None:
            io = StorageIO()
        os.makedirs(directory, exist_ok=True)
        layout = StoreLayout(directory)
        if not overwrite and os.path.exists(layout.manifest_path):
            raise FileExistsError(
                f"{directory} already holds a durable store; pass "
                f"overwrite=True to reinitialize it"
            )
        write_snapshot(layout.snapshot_path(0), document.export_state(),
                       io=io)
        wal = WriteAheadLog(layout.wal_path(0), io=io, create=True)
        write_manifest(directory, 0, io=io)
        return cls(document, directory, wal, 0, io, checkpoint_wal_bytes)

    @classmethod
    def from_xml(
        cls,
        directory: str,
        text: str,
        io: Optional[StorageIO] = None,
        checkpoint_wal_bytes: int = DEFAULT_CHECKPOINT_WAL_BYTES,
        overwrite: bool = False,
        **doc_kwargs,
    ) -> "DurableXml":
        """Compress ``text`` and :meth:`create` a store around it."""
        from repro.api import CompressedXml

        return cls.create(
            directory,
            CompressedXml.from_xml(text, **doc_kwargs),
            io=io,
            checkpoint_wal_bytes=checkpoint_wal_bytes,
            overwrite=overwrite,
        )

    @classmethod
    def open(
        cls,
        directory: str,
        io: Optional[StorageIO] = None,
        checkpoint_wal_bytes: int = DEFAULT_CHECKPOINT_WAL_BYTES,
        **doc_kwargs,
    ) -> "DurableXml":
        """Recover an existing store (newest snapshot + WAL replay).

        When recovery had to degrade to the previous snapshot
        generation, an immediate checkpoint re-establishes a healthy
        newest image before any new commits are accepted.  (A dropped
        tail record needs no checkpoint: the truncation already left
        the disk consistent.)
        """
        if io is None:
            io = StorageIO()
        result = recover(directory, io=io, **doc_kwargs)
        self = cls(result.doc, directory, result.wal, result.generation,
                   io, checkpoint_wal_bytes)
        self.last_recovery = result
        if result.degraded:
            self.checkpoint()
        return self

    # ------------------------------------------------------------------
    # the commit protocol
    # ------------------------------------------------------------------
    def _commit(self, record: dict):
        """WAL-first: persist the record, then apply it in memory."""
        offset = self._wal.append(record)
        try:
            result = apply_record(self._doc, record)
        except Exception:
            # The operation failed cleanly in memory (the single-op and
            # transactional-batch paths guarantee no partial state); it
            # must not survive into a future replay either.
            self._wal.rollback_to(offset)
            raise
        self._maybe_checkpoint()
        return result

    def rename(self, element_index: int, new_tag: str) -> None:
        """Durably relabel an element (see ``CompressedXml.rename``)."""
        self._commit(rename_record(element_index, new_tag))

    def insert(
        self,
        element_index: int,
        content: Union[XmlNode, Sequence[XmlNode]],
    ) -> None:
        """Durably insert elements before an element."""
        self._commit(insert_record(element_index,
                                   _normalize_content(content)))

    def append_child(
        self,
        parent_element_index: int,
        content: Union[XmlNode, Sequence[XmlNode]],
    ) -> None:
        """Durably append elements as last children of an element."""
        self._commit(append_record(parent_element_index,
                                   _normalize_content(content)))

    def delete(self, element_index: int) -> None:
        """Durably delete an element and its subtree."""
        self._commit(delete_record(element_index))

    def apply_batch(self, ops: Sequence["BatchOp"]) -> "BatchStats":
        """Durably apply a batch as ONE atomic record.

        Unlike the in-memory default (sequential error parity), a batch
        that fails part-way is rolled back entirely -- in memory via
        the transactional batch mode, on disk via WAL rollback -- so
        replay can never observe a half-applied batch.
        """
        return self._commit(batch_record(list(ops)))

    def batch(self) -> "BatchBuilder":
        """Collect operations for one durable :meth:`apply_batch`."""
        from repro.updates.batch import BatchBuilder

        return BatchBuilder(self)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self) -> None:
        if self._wal.size >= self._checkpoint_wal_bytes:
            self.checkpoint()

    def checkpoint(self) -> int:
        """Snapshot now and start a fresh WAL generation.

        Returns the new generation number.  Crash-safe at every step:
        until the manifest rename lands, the store still opens at the
        old generation with its complete WAL; afterwards the old
        generation is the degradation fallback and only generations
        below *it* are retired.
        """
        current = self._generation
        nxt = current + 1
        state = self._doc.export_state()
        write_snapshot(self._layout.snapshot_path(nxt), state, io=self._io)
        self._wal.close()
        new_wal = WriteAheadLog(self._layout.wal_path(nxt), io=self._io,
                                create=True)
        write_manifest(self._layout.directory, nxt, io=self._io)
        # -- the manifest rename above was the commit point ------------
        self._generation = nxt
        self._wal = new_wal
        for old in self._layout.generations_on_disk():
            if old < current:
                self._io.remove(self._layout.snapshot_path(old),
                                "checkpoint:clean")
                self._io.remove(self._layout.wal_path(old),
                                "checkpoint:clean")
        return nxt

    # ------------------------------------------------------------------
    # inspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def document(self) -> "CompressedXml":
        """The live in-memory document (reads are cheap and direct)."""
        return self._doc

    @property
    def directory(self) -> str:
        return self._layout.directory

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def wal_size(self) -> int:
        """Bytes in the live WAL (the checkpoint-cadence metric)."""
        return self._wal.size

    def close(self) -> None:
        self._wal.close()

    def __enter__(self) -> "DurableXml":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name: str):
        # Read-side API (select, tags, to_xml, element_count, ...) is
        # delegated to the document; mutators are overridden above.
        return getattr(self._doc, name)

    def __repr__(self) -> str:
        return (
            f"<DurableXml {self._layout.directory!r} "
            f"generation {self._generation}, "
            f"{self._doc.element_count} elements>"
        )
