"""``DurableXml``: the fault-tolerant facade over ``CompressedXml``.

Commit protocol for every mutating call (the WAL-first rule)::

    validate cheaply -> WAL append + fsync -> apply in memory
                                           -> rollback WAL on failure
    -> maybe checkpoint (WAL grew past the threshold)

The logged record -- not the caller's arguments -- is what gets
applied, through the same :func:`repro.storage.recovery.apply_record`
dispatcher recovery uses, so a replay after a crash reconstructs
*exactly* the state the live process had.  An apply that raises (an
out-of-range index, a malformed fragment) rolls the WAL back to the
record's start offset and leaves the in-memory document untouched
(single ops are exception-safe; batches run transactionally), so a
failed operation is a no-op both on disk and in memory.

``group_commit=True`` switches to the pipelined variant of the same
protocol for multi-threaded writers: append (no fsync) + apply run
under a short commit lock -- WAL order is apply order, and the
WAL-append-before-epoch-publish rule still holds -- while the fsync
runs outside it under shard-scoped locks, so commits on disjoint
shards overlap and coalesce their fsyncs
(:meth:`repro.storage.wal.SegmentedWal.sync_to`) and checkpoints
serialize from a pinned snapshot view without blocking the commit
stream (:meth:`DurableXml._checkpoint_concurrent`).

Disk faults: the WAL layer absorbs *transient* I/O errors with bounded
retry/backoff; when an append (or its rollback) fails *persistently*
the store flips into **read-only degraded mode** -- reads keep serving
from memory, every write raises :class:`StoreDegraded` carrying the
causing error, and the on-disk log still ends at (or truncates back
to) the last acknowledged operation.  A later, fully error-free
:meth:`checkpoint` on a healthy disk proves the path end-to-end and
clears degradation.  Auto-checkpoints (the cadence check after each
commit) never turn a committed update into an error: their failures
are recorded in ``last_checkpoint_error`` and surfaced by
:meth:`health`, while an *explicit* ``checkpoint()`` raises
:class:`CheckpointError`.  Because the manifest rename is the commit
point, a checkpoint that errors mid-flight re-reads the manifest to
learn which side of the point it died on -- a switch that landed is a
success (with a recorded cleanup error), not a rollback.

Checkpointing writes ``snapshot.(g+1)`` crash-atomically, creates an
empty ``wal.(g+1)`` chain, and then switches the generation manifest.
Generation ``g`` is kept as the degradation fallback -- its segment
chain compacted into one ``wal.g.compact`` file -- and generations
below it are retired.  :meth:`scrub` re-verifies every on-disk
artifact and audits the live indexes against streaming oracles (see
:mod:`repro.storage.scrub`); :meth:`health` reports the store's shape
without touching the disk.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from typing import List, Optional, Sequence, Union, TYPE_CHECKING

from repro.obs.tracing import trace_span
from repro.storage.faults import RetryPolicy, StorageIO
from repro.storage.recovery import (
    RecoveredDocument,
    RecoveryError,
    StoreLayout,
    apply_record,
    read_manifest,
    recover,
    write_manifest,
)
from repro.storage.snapshot import write_snapshot
from repro.storage.wal import (
    DEFAULT_SEGMENT_BYTES,
    SegmentedWal,
    WalWriteError,
    append_record,
    batch_record,
    compact_generation,
    delete_record,
    insert_record,
    rename_record,
)
from repro.trees.unranked import XmlNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api import CompressedXml
    from repro.storage.scrub import ScrubReport
    from repro.updates.batch import BatchBuilder, BatchOp, BatchStats

__all__ = [
    "DurableXml",
    "StoreDegraded",
    "CheckpointError",
    "DEFAULT_CHECKPOINT_WAL_BYTES",
]

#: Checkpoint once the live WAL chain outgrows this many bytes.  Small
#: enough that recovery replays at most a few hundred operations, large
#: enough that steady-state traffic amortizes a snapshot over many
#: commits (and rotates the 64 KiB segments a few times in between).
DEFAULT_CHECKPOINT_WAL_BYTES = 256 * 1024


class StoreDegraded(RuntimeError):
    """The store is serving reads only.

    Raised by every mutating call after a persistent I/O failure
    flipped the store read-only; ``cause`` is the error that did it
    (typically a :class:`repro.storage.wal.WalWriteError` wrapping an
    ``ENOSPC``/``EIO``).  A successful :meth:`DurableXml.checkpoint`
    on a healthy disk clears the condition.
    """

    def __init__(self, message: str,
                 cause: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.cause = cause


class CheckpointError(RuntimeError):
    """An explicit :meth:`DurableXml.checkpoint` failed before its
    commit point; the store continues at its previous generation with
    the complete WAL chain (nothing was lost)."""

    def __init__(self, message: str,
                 cause: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.cause = cause


def _normalize_content(
    content: Union[XmlNode, Sequence[XmlNode]]
) -> List[XmlNode]:
    from repro.updates.batch import _normalize_content as normalize

    return list(normalize(content))


def _sample_store(ref: "weakref.ref") -> dict:
    store = ref()
    if store is None:
        return {}
    sample = {
        "generation": store._generation,
        "degraded": int(store.degraded),
        "group_commit": int(store._group_commit),
        "checkpoint_wal_bytes": store._checkpoint_wal_bytes,
    }
    for key, value in store._wal.to_dict().items():
        sample["wal_" + key] = value
    return sample


class DurableXml:
    """A ``CompressedXml`` whose updates survive process death and
    whose storage survives a misbehaving disk.

    Construct with :meth:`create` (new store) or :meth:`open`
    (recover an existing one); never directly.  Read methods --
    ``select``/``tags``/``to_xml``/``element_count``/... -- are
    delegated to the in-memory document untouched; the update methods
    are wrapped in the WAL-first commit protocol.
    """

    def __init__(
        self,
        doc: "CompressedXml",
        directory: str,
        wal: SegmentedWal,
        generation: int,
        io: StorageIO,
        checkpoint_wal_bytes: int,
        wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        retry: Optional[RetryPolicy] = None,
        group_commit: bool = False,
    ) -> None:
        self._doc = doc
        self._layout = StoreLayout(directory)
        self._wal = wal
        self._generation = generation
        self._io = io
        self._checkpoint_wal_bytes = checkpoint_wal_bytes
        self._wal_segment_bytes = wal_segment_bytes
        self._retry = retry
        self._degraded_cause: Optional[BaseException] = None
        #: Pipelined group commit (see :meth:`_commit_group`): commits
        #: from multiple threads write + apply under one short lock and
        #: fsync outside it, coalescing; disjoint-shard commits overlap
        #: their fsyncs, same-shard commits serialize on shard locks.
        self._group_commit = group_commit
        self._commit_lock = threading.Lock()
        self._checkpoint_lock = threading.Lock()
        #: The generation the next checkpoint cutover targets.  Runs
        #: ahead of ``_generation`` when a concurrent checkpoint failed
        #: after its WAL cutover (the chain of that never-manifested
        #: generation holds live records; recovery's continuation
        #: replay folds it back in).
        self._next_generation = generation + 1
        #: Populated by :meth:`open` with what recovery had to do.
        self.last_recovery: Optional[RecoveredDocument] = None
        #: The most recent auto-checkpoint (or post-commit-point
        #: cleanup) failure; cleared by an error-free checkpoint.
        self.last_checkpoint_error: Optional[BaseException] = None
        #: The most recent :meth:`scrub` report, surfaced by health().
        self.last_scrub: Optional["ScrubReport"] = None
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        """Resolve the storage-side metric handles against the
        document's registry (no-op handles when metrics are disabled)
        and wire the per-site fsync histograms into the I/O layer."""
        obs = self._doc.metrics_registry
        self._obs = obs
        self._io.bind_metrics(obs)
        self._m_commit = obs.histogram(
            "repro_commit_seconds", "durable commit latency (end to end)")
        self._m_commit_stage = {
            stage: obs.histogram(
                "repro_commit_stage_seconds",
                "durable commit latency by stage", stage=stage)
            for stage in ("append", "apply", "fsync")
        }
        self._m_commits_total = {
            op: obs.counter("repro_commits_total",
                            "durable commits acknowledged", op=op)
            for op in ("rename", "insert", "append", "delete", "batch")
        }
        self._m_commit_failures = obs.counter(
            "repro_commit_failures_total",
            "durable commits that raised (degradation or apply error)")
        self._m_checkpoint = obs.histogram(
            "repro_checkpoint_seconds", "checkpoint latency")
        self._m_checkpoints_total = obs.counter(
            "repro_checkpoints_total", "checkpoints committed")
        self._m_degradations = obs.counter(
            "repro_degradations_total",
            "transitions into read-only degraded mode")
        self._m_recovery = obs.histogram(
            "repro_recovery_seconds", "recovery (open) latency")
        self._m_scrub = obs.histogram(
            "repro_scrub_seconds", "scrub pass latency")
        ref = weakref.ref(self)
        obs.register_source("repro_store", lambda: _sample_store(ref))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str,
        document: "CompressedXml",
        io: Optional[StorageIO] = None,
        checkpoint_wal_bytes: int = DEFAULT_CHECKPOINT_WAL_BYTES,
        wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        retry: Optional[RetryPolicy] = None,
        overwrite: bool = False,
        group_commit: bool = False,
    ) -> "DurableXml":
        """Initialize a new store directory around ``document``.

        Writes ``snapshot.000000``, an empty ``wal.000000``, and the
        generation-0 manifest.  An existing store is refused unless
        ``overwrite=True`` (which restarts it at generation 0).
        """
        if io is None:
            io = StorageIO()
        os.makedirs(directory, exist_ok=True)
        layout = StoreLayout(directory)
        if not overwrite and os.path.exists(layout.manifest_path):
            raise FileExistsError(
                f"{directory} already holds a durable store; pass "
                f"overwrite=True to reinitialize it"
            )
        write_snapshot(layout.snapshot_path(0), document.export_state(),
                       io=io)
        wal = SegmentedWal(directory, 0, io=io, create=True,
                           segment_bytes=wal_segment_bytes, retry=retry)
        write_manifest(directory, 0, io=io)
        return cls(document, directory, wal, 0, io, checkpoint_wal_bytes,
                   wal_segment_bytes=wal_segment_bytes, retry=retry,
                   group_commit=group_commit)

    @classmethod
    def from_xml(
        cls,
        directory: str,
        text: str,
        io: Optional[StorageIO] = None,
        checkpoint_wal_bytes: int = DEFAULT_CHECKPOINT_WAL_BYTES,
        wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        retry: Optional[RetryPolicy] = None,
        overwrite: bool = False,
        group_commit: bool = False,
        **doc_kwargs,
    ) -> "DurableXml":
        """Compress ``text`` and :meth:`create` a store around it."""
        from repro.api import CompressedXml

        return cls.create(
            directory,
            CompressedXml.from_xml(text, **doc_kwargs),
            io=io,
            checkpoint_wal_bytes=checkpoint_wal_bytes,
            wal_segment_bytes=wal_segment_bytes,
            retry=retry,
            overwrite=overwrite,
            group_commit=group_commit,
        )

    @classmethod
    def open(
        cls,
        directory: str,
        io: Optional[StorageIO] = None,
        checkpoint_wal_bytes: int = DEFAULT_CHECKPOINT_WAL_BYTES,
        wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        retry: Optional[RetryPolicy] = None,
        group_commit: bool = False,
        **doc_kwargs,
    ) -> "DurableXml":
        """Recover an existing store (newest snapshot + chain replay).

        When recovery had to degrade to the previous snapshot
        generation, an immediate checkpoint re-establishes a healthy
        newest image before any new commits are accepted.  (A dropped
        tail record needs no checkpoint: the truncation already left
        the disk consistent.)  When recovery found *continuation*
        generations -- WAL chains a group-commit checkpoint cut over to
        whose manifest switch never landed -- the store adopts the
        newest chain and folds the whole tail into a fresh generation
        with an immediate checkpoint.
        """
        if io is None:
            io = StorageIO()
        started = time.perf_counter()
        result = recover(directory, io=io,
                         wal_segment_bytes=wal_segment_bytes,
                         retry=retry, **doc_kwargs)
        recovery_elapsed = time.perf_counter() - started
        self = cls(result.doc, directory, result.wal, result.generation,
                   io, checkpoint_wal_bytes,
                   wal_segment_bytes=wal_segment_bytes, retry=retry,
                   group_commit=group_commit)
        self._m_recovery.observe(recovery_elapsed)
        self.last_recovery = result
        if result.continuation_generations:
            # The live state is snapshot.g + wal.g + the continuation
            # chains in order; appends now flow to the newest chain.
            # Checkpointing from here writes one snapshot covering the
            # whole sequence and retires the multi-chain shape.
            self._generation = result.continuation_generations[-1]
            self._next_generation = self._generation + 1
        if result.degraded or result.continuation_generations:
            self.checkpoint()
        return self

    # ------------------------------------------------------------------
    # the commit protocol
    # ------------------------------------------------------------------
    def _degrade(self, cause: BaseException) -> None:
        if self._degraded_cause is None:
            self._m_degradations.inc()
        self._degraded_cause = cause

    def _require_writable(self) -> None:
        if self._degraded_cause is not None:
            raise StoreDegraded(
                f"{self._layout.directory}: store is read-only "
                f"(degraded): {self._degraded_cause}",
                cause=self._degraded_cause,
            )

    def _commit(self, record: dict, heads: Optional[Sequence] = None):
        """WAL-first: persist the record, then apply it in memory.

        Dispatches to :meth:`_commit_group` in group-commit mode;
        ``heads`` are the shard heads the operation touches (resolved
        by the mutator wrappers, only when group commit is on).

        The commit latency histogram covers append+apply+fsync only --
        a cadence checkpoint triggered by this commit is timed by its
        own histogram, not folded into the commit's.
        """
        op = record.get("op", "unknown")
        started = time.perf_counter()
        with trace_span("commit", op=op,
                        group_commit=self._group_commit):
            try:
                if self._group_commit:
                    result = self._commit_group(
                        record, heads if heads is not None else ())
                else:
                    result = self._commit_serial(record)
            except Exception:
                self._m_commit_failures.inc()
                raise
        self._m_commit.observe(time.perf_counter() - started)
        counter = self._m_commits_total.get(op)
        if counter is not None:
            counter.inc()
        self._maybe_checkpoint()
        return result

    def _commit_serial(self, record: dict):
        """The serial commit path (see the module docstring)."""
        self._require_writable()
        append_started = time.perf_counter()
        try:
            with trace_span("wal_append"):
                token = self._wal.append(record)
        except WalWriteError as exc:
            # Retries are exhausted: the disk is persistently refusing
            # writes.  The chain still ends at (or recovery will
            # truncate it back to) the last acknowledged record; flip
            # read-only rather than surface a raw OSError mid-commit.
            self._degrade(exc)
            raise StoreDegraded(
                f"{self._layout.directory}: commit failed and the "
                f"store is now read-only: {exc}",
                cause=exc,
            ) from exc
        self._m_commit_stage["append"].observe(
            time.perf_counter() - append_started)
        apply_started = time.perf_counter()
        try:
            with trace_span("apply"):
                result = apply_record(self._doc, record)
        except Exception:
            # The operation failed cleanly in memory (the single-op and
            # transactional-batch paths guarantee no partial state); it
            # must not survive into a future replay either.
            try:
                self._wal.rollback_to(token)
            except WalWriteError as rollback_exc:
                # The disk would not even take the rollback: the
                # unacknowledged record is stranded in the log.
                # Recovery's drop-last replay handles exactly that
                # artifact, but nothing may be appended after it --
                # degrade, and re-raise the apply error (the operation
                # failed either way).
                self._degrade(rollback_exc)
            raise
        self._m_commit_stage["apply"].observe(
            time.perf_counter() - apply_started)
        return result

    def _commit_group(self, record: dict, heads: Sequence):
        """The pipelined commit path (``group_commit=True``).

        Lock order: spine gate (shared) -> shard locks (sorted) ->
        commit lock.  WAL append (no fsync) and the in-memory apply run
        under the short commit lock -- WAL order therefore *is* apply
        order -- and the fsync runs outside it, still under the shard
        locks: commits touching the same shard acknowledge in order,
        while disjoint-shard commits overlap their fsyncs and coalesce
        them (``SegmentedWal.sync_to``).  The WAL-before-epoch-publish
        rule of the serial path is preserved: the record is *written*
        before the apply bumps the grammar epoch; only its durability
        is deferred until just before acknowledgment.
        """
        locks = self._doc.shard_locks
        with locks.spine.shared():
            with locks.holding(heads):
                with self._commit_lock:
                    self._require_writable()
                    # Capture the chain: a concurrent checkpoint may
                    # swap self._wal before our sync_to runs (the old
                    # chain is fsync'd during the cutover, making the
                    # late sync_to a cheap no-op).
                    wal = self._wal
                    append_started = time.perf_counter()
                    try:
                        with trace_span("wal_append"):
                            token = wal.append_nosync(record)
                    except WalWriteError as exc:
                        self._degrade(exc)
                        raise StoreDegraded(
                            f"{self._layout.directory}: commit failed "
                            f"and the store is now read-only: {exc}",
                            cause=exc,
                        ) from exc
                    self._m_commit_stage["append"].observe(
                        time.perf_counter() - append_started)
                    apply_started = time.perf_counter()
                    try:
                        with trace_span("apply"):
                            result = apply_record(self._doc, record)
                    except Exception:
                        try:
                            wal.rollback_to(token)
                        except WalWriteError as rollback_exc:
                            self._degrade(rollback_exc)
                        raise
                    self._m_commit_stage["apply"].observe(
                        time.perf_counter() - apply_started)
                fsync_started = time.perf_counter()
                try:
                    with trace_span("fsync"):
                        wal.sync_to(token)
                except WalWriteError as exc:
                    # The record was applied in memory but could not be
                    # made durable -- the same persistent-failure shape
                    # as a serial append exhausting its retries.
                    self._degrade(exc)
                    raise StoreDegraded(
                        f"{self._layout.directory}: group-commit fsync "
                        f"failed and the store is now read-only: {exc}",
                        cause=exc,
                    ) from exc
                self._m_commit_stage["fsync"].observe(
                    time.perf_counter() - fsync_started)
        return result

    def _single_op_heads(self, element_index: int) -> Sequence:
        """The shard head owning one element (clamped: an end-of-range
        insert locks the last element's shard, which is conservative
        but always sound)."""
        doc = self._doc
        index = min(max(element_index, 0),
                    max(0, doc.element_count - 1))
        return (doc.shard_of(index),)

    def rename(self, element_index: int, new_tag: str) -> None:
        """Durably relabel an element (see ``CompressedXml.rename``)."""
        heads = (self._single_op_heads(element_index)
                 if self._group_commit else None)
        self._commit(rename_record(element_index, new_tag), heads)

    def insert(
        self,
        element_index: int,
        content: Union[XmlNode, Sequence[XmlNode]],
    ) -> None:
        """Durably insert elements before an element."""
        heads = (self._single_op_heads(element_index)
                 if self._group_commit else None)
        self._commit(insert_record(element_index,
                                   _normalize_content(content)), heads)

    def append_child(
        self,
        parent_element_index: int,
        content: Union[XmlNode, Sequence[XmlNode]],
    ) -> None:
        """Durably append elements as last children of an element."""
        heads = (self._single_op_heads(parent_element_index)
                 if self._group_commit else None)
        self._commit(append_record(parent_element_index,
                                   _normalize_content(content)), heads)

    def delete(self, element_index: int) -> None:
        """Durably delete an element and its subtree."""
        heads = (self._single_op_heads(element_index)
                 if self._group_commit else None)
        self._commit(delete_record(element_index), heads)

    def apply_batch(self, ops: Sequence["BatchOp"]) -> "BatchStats":
        """Durably apply a batch as ONE atomic record.

        Unlike the in-memory default (sequential error parity), a batch
        that fails part-way is rolled back entirely -- in memory via
        the transactional batch mode, on disk via WAL rollback -- so
        replay can never observe a half-applied batch.  In group-commit
        mode the batch holds the locks of every shard it touches, so
        disjoint-shard batches overlap their fsyncs while conflicting
        batches serialize.
        """
        ops = list(ops)
        heads = (self._doc.shard_heads_for(ops)
                 if self._group_commit else None)
        return self._commit(batch_record(ops), heads)

    def batch(self) -> "BatchBuilder":
        """Collect operations for one durable :meth:`apply_batch`."""
        from repro.updates.batch import BatchBuilder

        return BatchBuilder(self)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self) -> None:
        if self._wal.size < self._checkpoint_wal_bytes:
            return
        if self._group_commit and self._checkpoint_lock.locked():
            # Another thread is already checkpointing; the cadence
            # trigger is satisfied by that one.
            return
        try:
            self.checkpoint()
        except CheckpointError as exc:
            # The cadence checkpoint is an optimization; its failure
            # must not turn the just-acknowledged commit into an error.
            # The chain keeps growing and the next commit retries.
            self.last_checkpoint_error = exc

    def checkpoint(self) -> int:
        """Snapshot now and start a fresh WAL generation.

        Returns the new generation number.  Crash-safe at every step:
        until the manifest rename lands, the store still opens at the
        old generation with its complete chain; afterwards the old
        generation is the degradation fallback (compacted) and only
        generations below *it* are retired.  An I/O error before the
        commit point raises :class:`CheckpointError` and changes
        nothing; an error *after* it (detected by re-reading the
        manifest) is a success with the cleanup failure recorded.  A
        checkpoint that completes with no error at all also clears
        degraded mode -- the full write path was just proven healthy.

        In group-commit mode this dispatches to the *non-blocking*
        variant (:meth:`_checkpoint_concurrent`): the WAL cuts over
        first under the commit lock, and the snapshot serializes from a
        pinned :class:`~repro.view.SnapshotView` while writers keep
        committing into the new chain.
        """
        started = time.perf_counter()
        with trace_span("checkpoint",
                        group_commit=self._group_commit):
            if self._group_commit:
                generation = self._checkpoint_concurrent()
            else:
                generation = self._checkpoint_serial()
        self._m_checkpoint.observe(time.perf_counter() - started)
        self._m_checkpoints_total.inc()
        return generation

    def _checkpoint_serial(self) -> int:
        current = self._generation
        nxt = current + 1
        state = self._doc.export_state()
        try:
            # A failed append may have stranded an unacknowledged
            # record on disk; it must not survive into the fallback
            # chain this checkpoint is about to seal.
            self._wal.seal_tail()
            write_snapshot(self._layout.snapshot_path(nxt), state,
                           io=self._io)
            self._wal.close()
            new_wal = SegmentedWal(
                self._layout.directory, nxt, io=self._io, create=True,
                segment_bytes=self._wal_segment_bytes, retry=self._retry,
            )
        except (OSError, WalWriteError) as exc:
            raise CheckpointError(
                f"{self._layout.directory}: checkpoint to generation "
                f"{nxt} failed before the commit point: {exc}",
                cause=exc,
            ) from exc
        return self._switch_and_clean(current, nxt, new_wal=new_wal)

    def _switch_and_clean(
        self,
        current: int,
        nxt: int,
        new_wal: Optional[SegmentedWal] = None,
    ) -> int:
        """Manifest switch (the commit point) plus retirement and
        compaction.  ``new_wal`` is the not-yet-live chain of the
        serial path (installed after the switch, closed if the switch
        fails); the concurrent path passes ``None`` because its chain
        went live at the cutover and must survive a failed switch.
        """
        switch_error: Optional[BaseException] = None
        try:
            write_manifest(self._layout.directory, nxt, io=self._io)
        except OSError as exc:
            # The rename inside write_manifest is the commit point; an
            # error on the later directory fsync leaves the switch in
            # place.  Ask the disk which side we died on.
            try:
                committed = read_manifest(self._layout.directory) == nxt
            except RecoveryError:
                committed = False
            if not committed:
                if new_wal is not None:
                    new_wal.close()
                raise CheckpointError(
                    f"{self._layout.directory}: checkpoint to "
                    f"generation {nxt} failed at the manifest switch: "
                    f"{exc}",
                    cause=exc,
                ) from exc
            switch_error = exc
        # -- the manifest rename above was the commit point ------------
        self._generation = nxt
        if new_wal is not None:
            self._wal = new_wal
        self._next_generation = nxt + 1
        cleanup_error: Optional[BaseException] = None
        try:
            for old in self._layout.generations_on_disk():
                if old < current:
                    self._io.remove(self._layout.snapshot_path(old),
                                    "checkpoint:clean")
                    for path in self._layout.wal_files(old):
                        self._io.remove(path, "checkpoint:clean")
            # Snapshot-less WAL chains below the fallback, or between
            # the fallback and the new generation (never-manifested
            # cutover targets whose records the new snapshot covers),
            # are debris: retire them.
            for gen in self._wal_generations_on_disk():
                if gen < current or current < gen < nxt:
                    for path in self._layout.wal_files(gen):
                        self._io.remove(path, "checkpoint:clean")
            # The previous generation is now fully checkpointed: its
            # chain collapses to one compacted fallback file.
            compact_generation(self._layout.directory, current,
                               io=self._io)
        except OSError as exc:
            # Retirement/compaction failures are cosmetic -- the
            # checkpoint is committed; stray files are retried by the
            # next checkpoint (and reported by scrub).
            cleanup_error = exc
        error = switch_error or cleanup_error
        self.last_checkpoint_error = error
        if error is None:
            # An end-to-end error-free checkpoint is the proof of a
            # healthy disk that lifts read-only degradation.
            self._degraded_cause = None
        return nxt

    def _wal_generations_on_disk(self) -> List[int]:
        """Generations with any WAL file present (chain or compacted),
        snapshot or not -- the sweep basis for retiring debris chains."""
        found = set()
        for name in os.listdir(self._layout.directory):
            if not name.startswith("wal."):
                continue
            suffix = name.split(".")[1]
            if suffix.isdigit():
                found.add(int(suffix))
        return sorted(found)

    def _checkpoint_concurrent(self) -> int:
        """The non-blocking checkpoint of group-commit mode.

        Cutover first, serialize second: under the commit lock the old
        chain is fsync'd and sealed, the document is pinned
        (:meth:`~repro.api.CompressedXml.snapshot`), and a fresh chain
        goes live -- a few milliseconds during which commits queue on
        the lock.  The expensive part (exporting the pinned state and
        writing ``snapshot.(g+1)``) then runs against the immutable
        view while writers commit freely into the new chain.  A crash
        or error between cutover and manifest switch leaves the
        never-manifested chain on disk holding acknowledged records;
        recovery replays it as a *continuation* of the manifest
        generation (see :mod:`repro.storage.recovery`), and the next
        checkpoint attempt targets the generation after it.
        """
        with self._checkpoint_lock:
            current = self._generation
            nxt = self._next_generation
            with self._commit_lock:
                old_wal = self._wal
                try:
                    # Fsync the old chain's tail: pending sync_to calls
                    # on captured references become no-ops, and every
                    # acknowledged-or-applied record is durable before
                    # the pin.
                    old_wal.sync()
                    old_wal.seal_tail()
                    view = self._doc.snapshot()
                    new_wal = SegmentedWal(
                        self._layout.directory, nxt, io=self._io,
                        create=True,
                        segment_bytes=self._wal_segment_bytes,
                        retry=self._retry,
                    )
                except (OSError, WalWriteError) as exc:
                    raise CheckpointError(
                        f"{self._layout.directory}: checkpoint to "
                        f"generation {nxt} failed before the WAL "
                        f"cutover: {exc}",
                        cause=exc,
                    ) from exc
                self._wal = new_wal
                self._next_generation = nxt + 1
            try:
                try:
                    state = view.export_state()
                    write_snapshot(self._layout.snapshot_path(nxt),
                                   state, io=self._io)
                except (OSError, WalWriteError) as exc:
                    # Cutover already happened: commits are flowing
                    # into the new chain while the manifest still
                    # points at the old generation.  That is exactly
                    # the continuation shape recovery handles, so
                    # nothing is lost -- but the checkpoint failed.
                    raise CheckpointError(
                        f"{self._layout.directory}: checkpoint to "
                        f"generation {nxt} failed writing the "
                        f"snapshot (WAL already cut over; recovery "
                        f"replays the continuation chain): {exc}",
                        cause=exc,
                    ) from exc
            finally:
                view.close()
            old_wal.close()
            return self._switch_and_clean(current, nxt)

    # ------------------------------------------------------------------
    # scrub / health
    # ------------------------------------------------------------------
    def scrub(self, repair: bool = False) -> "ScrubReport":
        """Re-verify every on-disk artifact and audit the live indexes
        against streaming oracles; with ``repair=True`` rebuild exactly
        the inconsistent index rules and retire corrupt fallback files.
        See :mod:`repro.storage.scrub` for the full contract."""
        from repro.storage.scrub import run_scrub

        started = time.perf_counter()
        with trace_span("scrub", repair=repair):
            report = run_scrub(self, repair=repair)
        self._m_scrub.observe(time.perf_counter() - started)
        self.last_scrub = report
        return report

    def health(self) -> dict:
        """A structured, disk-untouched report of the store's shape:
        generation, segment chain, degradation, last errors, the most
        recent scrub findings, and a metrics summary."""
        wal = self._wal.to_dict()
        wal["segment_bytes_limit"] = self._wal_segment_bytes
        wal["tail_error"] = self._wal.tail_error
        return {
            "directory": self._layout.directory,
            "generation": self._generation,
            "element_count": self._doc.element_count,
            "degraded": self.degraded,
            "degraded_cause": str(self._degraded_cause)
            if self._degraded_cause is not None else None,
            "wal": wal,
            "mvcc": {
                "group_commit": self._group_commit,
                **self._doc.mvcc_info(),
            },
            "checkpoint_wal_bytes": self._checkpoint_wal_bytes,
            "last_checkpoint_error": str(self.last_checkpoint_error)
            if self.last_checkpoint_error is not None else None,
            "last_recovery": self.last_recovery.to_dict()
            if self.last_recovery is not None else None,
            "last_scrub": self.last_scrub.summary()
            if self.last_scrub is not None else None,
            "metrics": self._obs.summary(),
        }

    # ------------------------------------------------------------------
    # inspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def document(self) -> "CompressedXml":
        """The live in-memory document (reads are cheap and direct)."""
        return self._doc

    @property
    def directory(self) -> str:
        return self._layout.directory

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def degraded(self) -> bool:
        """Read-only mode after a persistent I/O failure."""
        return self._degraded_cause is not None

    @property
    def degraded_cause(self) -> Optional[BaseException]:
        return self._degraded_cause

    @property
    def wal_size(self) -> int:
        """Bytes in the live chain (the checkpoint-cadence metric)."""
        return self._wal.size

    @property
    def wal_segment_count(self) -> int:
        return self._wal.segment_count

    @property
    def wal_rotations(self) -> int:
        return self._wal.rotations

    def close(self) -> None:
        self._wal.close()

    def __enter__(self) -> "DurableXml":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name: str):
        # Read-side API (select, tags, to_xml, element_count, ...) is
        # delegated to the document; mutators are overridden above.
        return getattr(self._doc, name)

    def __repr__(self) -> str:
        state = " DEGRADED" if self._degraded_cause is not None else ""
        return (
            f"<DurableXml {self._layout.directory!r} "
            f"generation {self._generation}, "
            f"{self._doc.element_count} elements{state}>"
        )
