"""Online scrub: re-verify a live store's disk and index invariants.

A store can be damaged in ways recovery never sees: bit rot in a
snapshot that is not being read, a fallback WAL chain corrupted after
it was written, or index caches that have drifted from the grammar
(imported from a bad snapshot, or clobbered by a bug).  The ICDE
paper's whole value proposition is *incremental maintenance of derived
structures*; the robustness counterpart is an audit that proves those
structures still agree with the primary data -- and a repair path that
rebuilds exactly the inconsistent pieces instead of the world.

:func:`run_scrub` (surfaced as ``DurableXml.scrub``) checks two layers:

* **Disk**: every snapshot on disk re-read and checksum/invariant
  verified (:func:`repro.storage.snapshot.read_snapshot`), every WAL
  file -- live chain segments, fallback chains, compacted files --
  re-scanned frame by frame.  A torn tail on the *live* chain and any
  corruption elsewhere are findings (the live chain ends exactly at
  the last acknowledged record while the process is healthy).

* **Indexes**: the live :class:`repro.grammar.index.GrammarIndex`
  segments and :class:`repro.query.label_index.LabelIndex` censuses
  are compared, rule by cached rule, against fresh unregistered
  (``register=False``) recomputations over the same grammar; the
  document-level element count is cross-checked against two
  independent oracles (:func:`repro.storage.snapshot.
  document_element_count`'s bottom-up recount and a full
  :func:`repro.grammar.navigation.stream_elements` streaming walk,
  whose tag census also audits the label index's document totals).

Repair (``repair=True``) is deliberately minimal:

* a drifted index rule is *evicted* through the same observer channel
  an update would use (``rule_changed``), so the next query recomputes
  just that rule and its dependents -- never a wholesale rebuild
  (unless the document-level censuses disagree without any culprit
  rule, the one case that falls back to ``invalidate_all``);
* disk corruption is healed by one :meth:`DurableXml.checkpoint` --
  the in-memory document is authoritative, so a fresh generation
  (written *after* the index repairs, hence from repaired state)
  supersedes every damaged artifact -- followed by retiring any
  still-corrupt non-live file once the new live snapshot verifies.

Everything is reported as a :class:`ScrubReport` of typed
:class:`ScrubFinding` entries plus ``checked`` counters, so "no
findings" is distinguishable from "looked at nothing".
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.storage.recovery import RecoveryError, read_manifest
from repro.storage.snapshot import (
    SnapshotError,
    document_element_count,
    read_snapshot,
)
from repro.storage.wal import (
    WalRecordError,
    compact_path,
    list_segments,
    scan_wal_report,
    segment_path,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.durable import DurableXml

__all__ = ["ScrubFinding", "ScrubReport", "run_scrub"]


@dataclass
class ScrubFinding:
    """One verified inconsistency.

    ``kind`` is a closed vocabulary -- ``snapshot-corrupt``,
    ``wal-corrupt``, ``wal-tail-torn``, ``manifest-corrupt``,
    ``grammar-index-drift``, ``label-index-drift``,
    ``element-census-drift``, ``label-census-drift`` -- ``subject`` the
    file path or rule name, ``detail`` the evidence, ``repaired``
    whether the repair pass resolved it.
    """

    kind: str
    subject: str
    detail: str
    repaired: bool = False

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "detail": self.detail,
            "repaired": self.repaired,
        }


@dataclass
class ScrubReport:
    """Everything one scrub pass learned (and did)."""

    directory: str
    generation: int
    repair: bool
    findings: List[ScrubFinding] = field(default_factory=list)
    #: How much was actually verified: snapshots, wal_files,
    #: wal_records, index_rules, label_rules, elements.
    checked: Dict[str, int] = field(default_factory=dict)
    #: The error that stopped the repair checkpoint, if any.
    repair_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """No inconsistencies found (repaired ones still count as
        findings -- re-scrub to certify a clean store)."""
        return not self.findings

    @property
    def repaired_count(self) -> int:
        return sum(1 for f in self.findings if f.repaired)

    def summary(self) -> dict:
        return {
            "ok": self.ok,
            "generation": self.generation,
            "repair": self.repair,
            "findings": [f.as_dict() for f in self.findings],
            "repaired": self.repaired_count,
            "checked": dict(self.checked),
            "repair_error": self.repair_error,
        }

    def to_dict(self) -> dict:
        """Flat numeric view (the shared stats-object protocol); the
        full findings list stays on :meth:`summary`."""
        return {
            "ok": self.ok,
            "generation": self.generation,
            "findings": len(self.findings),
            "repaired": self.repaired_count,
            "elements_checked": self.checked.get("elements", 0),
            "wal_records_checked": self.checked.get("wal_records", 0),
        }


# ----------------------------------------------------------------------
# disk verification
# ----------------------------------------------------------------------
def _scrub_snapshot(path: str, report: ScrubReport) -> None:
    try:
        read_snapshot(path)
    except (SnapshotError, ValueError, OSError) as exc:
        report.findings.append(ScrubFinding(
            kind="snapshot-corrupt", subject=path, detail=str(exc),
        ))
    report.checked["snapshots"] = report.checked.get("snapshots", 0) + 1


def _scrub_wal_file(
    path: str, report: ScrubReport, final_segment: bool
) -> None:
    """Re-scan one WAL file.  A torn tail is reported even on a final
    segment: a *live* store's chain ends exactly at the last
    acknowledged record, so trailing garbage means a write failure or
    out-of-band damage happened since (recovery would truncate it, but
    the operator should know it is there)."""
    try:
        wal_report = scan_wal_report(path)
    except WalRecordError as exc:
        report.findings.append(ScrubFinding(
            kind="wal-corrupt", subject=path, detail=str(exc),
        ))
    except OSError as exc:
        report.findings.append(ScrubFinding(
            kind="wal-corrupt", subject=path, detail=str(exc),
        ))
    else:
        report.checked["wal_records"] = \
            report.checked.get("wal_records", 0) + len(wal_report.records)
        if wal_report.torn:
            kind = "wal-tail-torn" if final_segment else "wal-corrupt"
            report.findings.append(ScrubFinding(
                kind=kind, subject=path, detail=wal_report.tail_message,
            ))
    report.checked["wal_files"] = report.checked.get("wal_files", 0) + 1


def _scrub_disk(store: "DurableXml", report: ScrubReport) -> None:
    layout = store._layout
    directory = layout.directory
    try:
        manifest_generation = read_manifest(directory)
        if manifest_generation != store.generation:
            report.findings.append(ScrubFinding(
                kind="manifest-corrupt", subject=layout.manifest_path,
                detail=(f"manifest points at generation "
                        f"{manifest_generation}, live store is at "
                        f"{store.generation}"),
            ))
    except RecoveryError as exc:
        report.findings.append(ScrubFinding(
            kind="manifest-corrupt", subject=layout.manifest_path,
            detail=str(exc),
        ))
    for generation in layout.generations_on_disk():
        _scrub_snapshot(layout.snapshot_path(generation), report)
        segments = list_segments(directory, generation)
        for position, seg in enumerate(segments):
            _scrub_wal_file(
                segment_path(directory, generation, seg), report,
                final_segment=(position == len(segments) - 1),
            )
        compacted = compact_path(directory, generation)
        if os.path.exists(compacted):
            # Compaction wrote it whole: no legal torn tail here.
            _scrub_wal_file(compacted, report, final_segment=False)


# ----------------------------------------------------------------------
# index audits
# ----------------------------------------------------------------------
def _audit_grammar_index(store: "DurableXml", report: ScrubReport,
                         drifted: List[object]) -> None:
    from repro.grammar.index import GrammarIndex

    doc = store.document
    live = doc.index
    fresh = GrammarIndex(doc.grammar, register=False)
    for head in live.cached_rules():
        if not doc.grammar.has_rule(head):
            continue  # eviction in flight; nothing to compare against
        live_nodes = list(live.segments()[head])
        live_elems = list(live.element_segments(head))
        fresh_nodes = list(fresh.segments()[head])
        fresh_elems = list(fresh.element_segments(head))
        if live_nodes != fresh_nodes or live_elems != fresh_elems:
            report.findings.append(ScrubFinding(
                kind="grammar-index-drift", subject=str(head),
                detail=(f"cached segments {live_nodes}/{live_elems} != "
                        f"recomputed {fresh_nodes}/{fresh_elems}"),
            ))
            drifted.append(("grammar", head))
        report.checked["index_rules"] = \
            report.checked.get("index_rules", 0) + 1


def _audit_label_index(store: "DurableXml", report: ScrubReport,
                       drifted: List[object]) -> None:
    from repro.query.label_index import LabelIndex

    doc = store.document
    live = doc.label_index
    fresh = LabelIndex(doc.grammar, register=False)
    for head in live.cached_rules():
        if not doc.grammar.has_rule(head):
            continue
        live_counts = dict(live.rule_counts(head))
        fresh_counts = dict(fresh.rule_counts(head))
        if live_counts != fresh_counts:
            report.findings.append(ScrubFinding(
                kind="label-index-drift", subject=str(head),
                detail=(f"cached census {live_counts} != "
                        f"recomputed {fresh_counts}"),
            ))
            drifted.append(("label", head))
        report.checked["label_rules"] = \
            report.checked.get("label_rules", 0) + 1


def _audit_censuses(store: "DurableXml", report: ScrubReport) -> bool:
    """Document-level cross-checks against two independent oracles.
    Returns True when a document-level drift was found."""
    from repro.grammar.navigation import stream_elements

    doc = store.document
    grammar = doc.grammar
    streamed = 0
    tag_census: Counter = Counter()
    for _index, tag, _parent, _depth in stream_elements(grammar):
        streamed += 1
        tag_census[tag] += 1
    report.checked["elements"] = streamed
    drift = False
    indexed = doc.index.element_count
    recounted = document_element_count(grammar)
    if not (indexed == recounted == streamed):
        report.findings.append(ScrubFinding(
            kind="element-census-drift", subject=grammar.start.name
            if hasattr(grammar.start, "name") else str(grammar.start),
            detail=(f"index says {indexed} elements, bottom-up recount "
                    f"{recounted}, streaming walk {streamed}"),
        ))
        drift = True
    label_census = dict(doc.label_index.document_labels())
    streamed_census = dict(tag_census)
    if label_census != streamed_census:
        missing = {tag: count for tag, count in streamed_census.items()
                   if label_census.get(tag) != count}
        extra = {tag: count for tag, count in label_census.items()
                 if tag not in streamed_census}
        report.findings.append(ScrubFinding(
            kind="label-census-drift", subject="document",
            detail=(f"label index disagrees with the streamed tag "
                    f"census (mismatched: {missing}, phantom: {extra})"),
        ))
        drift = True
    return drift


# ----------------------------------------------------------------------
# repair
# ----------------------------------------------------------------------
def _repair_indexes(store: "DurableXml", report: ScrubReport,
                    drifted: List[object], census_drift: bool) -> None:
    doc = store.document
    for family, head in drifted:
        if family == "grammar":
            doc.index.rule_changed(head)
        else:
            doc.label_index.rule_changed(head)
    if census_drift and not drifted:
        # Document totals disagree but no cached rule is provably
        # wrong: the damage is outside the per-rule comparison's reach
        # (e.g. a poisoned dependency edge).  Rebuild wholesale -- the
        # one repair that is always sound.
        doc.index.invalidate_all()
        doc.label_index.invalidate_all()
    for finding in report.findings:
        if finding.kind in ("grammar-index-drift", "label-index-drift"):
            finding.repaired = True
        elif finding.kind in ("element-census-drift",
                              "label-census-drift"):
            finding.repaired = True


_DISK_KINDS = ("snapshot-corrupt", "wal-corrupt", "wal-tail-torn",
               "manifest-corrupt")


def _repair_disk(store: "DurableXml", report: ScrubReport) -> None:
    from repro.storage.durable import CheckpointError

    disk_findings = [f for f in report.findings
                     if f.kind in _DISK_KINDS]
    if not disk_findings:
        return
    # One checkpoint supersedes every damaged artifact: the in-memory
    # document (indexes just repaired) becomes the fresh live
    # generation, the previous chain is compacted, and generations
    # below it -- corrupt compacted segments included -- are retired.
    try:
        store.checkpoint()
    except CheckpointError as exc:
        report.repair_error = str(exc)
        return
    layout = store._layout
    # Certify the new live image before discarding anything it would
    # have to replace.
    try:
        read_snapshot(layout.snapshot_path(store.generation))
    except (SnapshotError, ValueError, OSError) as exc:
        report.repair_error = (
            f"post-repair snapshot failed verification: {exc}"
        )
        return
    for finding in disk_findings:
        path = finding.subject
        if not os.path.exists(path):
            finding.repaired = True  # retired by the checkpoint
            continue
        still_bad = False
        if finding.kind == "snapshot-corrupt":
            try:
                read_snapshot(path)
            except (SnapshotError, ValueError, OSError):
                still_bad = True
        elif finding.kind in ("wal-corrupt", "wal-tail-torn"):
            try:
                still_bad = scan_wal_report(path).torn
            except (WalRecordError, OSError):
                still_bad = True
        if still_bad and path != layout.snapshot_path(store.generation):
            # A corrupt non-live artifact that survived retirement
            # (e.g. the immediate fallback snapshot): the verified new
            # live image supersedes it -- retire it now.
            store._io.remove(path, "checkpoint:clean")
        finding.repaired = True


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def run_scrub(store: "DurableXml", repair: bool = False) -> ScrubReport:
    """One full scrub pass over a live :class:`DurableXml`.

    Read-only unless ``repair=True``.  Repair order matters: index
    rules are evicted first, so the checkpoint that heals the disk
    exports already-repaired index state into the new snapshot.
    """
    report = ScrubReport(
        directory=store.directory,
        generation=store.generation,
        repair=repair,
    )
    for key in ("snapshots", "wal_files", "wal_records", "index_rules",
                "label_rules", "elements"):
        report.checked.setdefault(key, 0)
    _scrub_disk(store, report)
    drifted: List[object] = []
    _audit_grammar_index(store, report, drifted)
    _audit_label_index(store, report, drifted)
    census_drift = _audit_censuses(store, report)
    if repair:
        _repair_indexes(store, report, drifted, census_drift)
        _repair_disk(store, report)
    return report
