"""Crash-atomic binary snapshots of a compressed document.

A snapshot is one self-contained binary image of a
:class:`repro.api.CompressedXml`:

* the SLCF grammar (symbol table + preorder-encoded rule bodies),
* the shard hierarchy (width, prefix, shard-head -> parent edges), so a
  reload adopts the spine instead of re-sharding,
* the structural index's per-rule node/element segments and the label
  index's per-rule censuses, so a reload answers ``select``/``tags``/
  axis queries without re-censusing a single rule (the per-RHS-node
  tables are keyed by object identity and rebuild lazily per rule in
  O(rule width) from the imported segments),
* the recompression baseline (dirty rules, ``_baselined``, last
  compressed size) -- the occurrence-maintenance state that keeps the
  dirty-scoped census sound across a restart.

Wire format (all integers LEB128 varints unless noted)::

    b"RXSNAP01"                                  8-byte magic
    body...
    u32le crc32(body)                            trailing checksum

    body := version(=1) kin element_count flags last_compressed_size
            symbol_table start_id rules [shards] segments [labels] dirty

``flags``: bit0 ``baselined``, bit1 shard section present, bit2 label
section present.  Rule bodies are preorder symbol-id streams; ids
``>= len(symbols)`` encode parameters ``y1, y2, ...`` (child counts are
implied by symbol ranks, so no structure bytes are needed).

Snapshots are written temp-file-then-``os.replace`` with fsyncs on both
the file and its directory, through the crash-point
:class:`~repro.storage.faults.StorageIO` layer; a reader either sees
the complete old image or the complete new one.  :func:`read_snapshot`
raises :class:`SnapshotError` on *any* corruption -- the recovery layer
turns that into generation degradation, never a crash.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.grammar.slcf import Grammar, GrammarError
from repro.trees.node import Node
from repro.trees.symbols import Alphabet, Symbol, parameter_symbol

from repro.storage.faults import StorageIO

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "ShardState",
    "DocumentState",
    "write_snapshot",
    "read_snapshot",
    "document_element_count",
]

SNAPSHOT_MAGIC = b"RXSNAP01"
SNAPSHOT_VERSION = 1

_CRC = struct.Struct("<I")


class SnapshotError(ValueError):
    """Raised when a snapshot file is corrupt or malformed."""


@dataclass
class ShardState:
    """The spine-sharding policy's persistent state."""

    width: int
    prefix: str
    #: shard head -> spine rule holding its single reference.
    parents: Dict[Symbol, Symbol]


@dataclass
class DocumentState:
    """Everything a :class:`CompressedXml` needs to resume exactly.

    Produced by ``CompressedXml.export_state`` and by
    :func:`read_snapshot`; consumed by ``CompressedXml.from_state``.
    """

    grammar: Grammar
    kin: int
    element_count: int
    baselined: bool
    last_compressed_size: int
    #: Rules dirtied since the last recompression (the dirty-scoped
    #: census seed); symbols of ``grammar``'s alphabet.
    dirty_rules: List[Symbol] = field(default_factory=list)
    shard: Optional[ShardState] = None
    #: head -> (node segments, element segments), the GrammarIndex state.
    segments: Dict[Symbol, Tuple[List[int], List[int]]] = \
        field(default_factory=dict)
    #: head -> {label: count}, the LabelIndex censuses.
    label_counts: Optional[Dict[Symbol, Dict[str, int]]] = None


# ----------------------------------------------------------------------
# varints
# ----------------------------------------------------------------------
def _put_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise SnapshotError(f"cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _put_bytes(out: bytearray, data: bytes) -> None:
    _put_uvarint(out, len(data))
    out.extend(data)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def uvarint(self) -> int:
        result = shift = 0
        data, pos, total = self.data, self.pos, len(self.data)
        while True:
            if pos >= total:
                raise SnapshotError("truncated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self.pos = pos
                return result
            shift += 7
            if shift > 63:
                raise SnapshotError("varint overflow")

    def raw(self, length: int) -> bytes:
        end = self.pos + length
        if end > len(self.data):
            raise SnapshotError("truncated byte string")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def string(self) -> str:
        return self.raw(self.uvarint()).decode("utf-8")

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.data)


# ----------------------------------------------------------------------
# grammar body codec
# ----------------------------------------------------------------------
def _collect_symbols(grammar: Grammar) -> List[Symbol]:
    """Every non-parameter symbol occurring in the grammar, rule heads
    first (deterministic order for stable snapshots)."""
    ordered: List[Symbol] = []
    seen = set()
    for head in grammar.rules:
        if head not in seen:
            seen.add(head)
            ordered.append(head)
    for rhs in grammar.rules.values():
        stack = [rhs]
        while stack:
            node = stack.pop()
            symbol = node.symbol
            if not symbol.is_parameter and symbol not in seen:
                seen.add(symbol)
                ordered.append(symbol)
            stack.extend(node.children)
    return ordered

def _encode_body(out: bytearray, rhs: Node, ids: Dict[Symbol, int],
                 n_symbols: int) -> None:
    tokens: List[int] = []
    stack = [rhs]
    while stack:
        node = stack.pop()
        symbol = node.symbol
        if symbol.is_parameter:
            tokens.append(n_symbols + symbol.param_index - 1)
        else:
            tokens.append(ids[symbol])
        stack.extend(reversed(node.children))
    _put_uvarint(out, len(tokens))
    for token in tokens:
        _put_uvarint(out, token)


def _decode_body(reader: _Reader, symbols: List[Symbol]) -> Node:
    count = reader.uvarint()
    if count == 0:
        raise SnapshotError("empty rule body")
    n_symbols = len(symbols)

    def read_node() -> Node:
        token = reader.uvarint()
        if token < n_symbols:
            symbol = symbols[token]
        else:
            symbol = parameter_symbol(token - n_symbols + 1)
        node = Node.__new__(Node)
        node.symbol = symbol
        node.children = []
        node.parent = None
        return node

    consumed = 1
    root = read_node()
    stack = [root]
    while stack:
        node = stack[-1]
        if len(node.children) == node.symbol.rank:
            stack.pop()
            continue
        if consumed >= count:
            raise SnapshotError("rule body ends mid-tree")
        child = read_node()
        consumed += 1
        child.parent = node
        node.children.append(child)
        stack.append(child)
    if consumed != count:
        raise SnapshotError("rule body has trailing tokens")
    return root


# ----------------------------------------------------------------------
# encode
# ----------------------------------------------------------------------
def encode_state(state: DocumentState) -> bytes:
    """Serialize a :class:`DocumentState` to snapshot bytes."""
    grammar = state.grammar
    out = bytearray()
    _put_uvarint(out, SNAPSHOT_VERSION)
    _put_uvarint(out, state.kin)
    _put_uvarint(out, state.element_count)
    flags = (1 if state.baselined else 0)
    if state.shard is not None:
        flags |= 2
    if state.label_counts is not None:
        flags |= 4
    out.append(flags)
    _put_uvarint(out, state.last_compressed_size)

    symbols = _collect_symbols(grammar)
    ids = {symbol: index for index, symbol in enumerate(symbols)}
    _put_uvarint(out, len(symbols))
    for symbol in symbols:
        _put_bytes(out, symbol.name.encode("utf-8"))
        _put_uvarint(out, symbol.rank)
        out.append(1 if symbol.is_nonterminal else 0)
    _put_uvarint(out, ids[grammar.start])

    _put_uvarint(out, len(grammar.rules))
    for head, rhs in grammar.rules.items():
        _put_uvarint(out, ids[head])
        _encode_body(out, rhs, ids, len(symbols))

    if state.shard is not None:
        shard = state.shard
        _put_uvarint(out, shard.width)
        _put_bytes(out, shard.prefix.encode("utf-8"))
        _put_uvarint(out, len(shard.parents))
        for head, parent in shard.parents.items():
            _put_uvarint(out, ids[head])
            _put_uvarint(out, ids[parent])

    _put_uvarint(out, len(state.segments))
    for head, (node_segs, elem_segs) in state.segments.items():
        if len(node_segs) != head.rank + 1 or \
                len(elem_segs) != head.rank + 1:
            raise SnapshotError(
                f"rule {head!r}: segment arity does not match rank"
            )
        _put_uvarint(out, ids[head])
        for value in node_segs:
            _put_uvarint(out, value)
        for value in elem_segs:
            _put_uvarint(out, value)

    if state.label_counts is not None:
        _put_uvarint(out, len(state.label_counts))
        for head, counts in state.label_counts.items():
            _put_uvarint(out, ids[head])
            _put_uvarint(out, len(counts))
            for label, count in counts.items():
                label_symbol = grammar.alphabet.get(label)
                if label_symbol is None or label_symbol not in ids:
                    raise SnapshotError(
                        f"census label {label!r} has no grammar symbol"
                    )
                _put_uvarint(out, ids[label_symbol])
                _put_uvarint(out, count)

    _put_uvarint(out, len(state.dirty_rules))
    for head in state.dirty_rules:
        _put_uvarint(out, ids[head])

    body = bytes(out)
    return SNAPSHOT_MAGIC + body + _CRC.pack(zlib.crc32(body))


# ----------------------------------------------------------------------
# decode
# ----------------------------------------------------------------------
def decode_state(data: bytes) -> DocumentState:
    """Parse snapshot bytes back into a :class:`DocumentState`.

    The grammar is rebuilt over a fresh alphabet and fully validated;
    any structural problem raises :class:`SnapshotError`.
    """
    if len(data) < len(SNAPSHOT_MAGIC) + _CRC.size or \
            not data.startswith(SNAPSHOT_MAGIC):
        raise SnapshotError("not a snapshot file (bad magic)")
    body = data[len(SNAPSHOT_MAGIC):-_CRC.size]
    (expected,) = _CRC.unpack(data[-_CRC.size:])
    if zlib.crc32(body) != expected:
        raise SnapshotError("snapshot checksum mismatch")
    try:
        return _decode_body_sections(_Reader(body))
    except SnapshotError:
        raise
    except (GrammarError, ValueError, IndexError, KeyError) as exc:
        raise SnapshotError(f"malformed snapshot: {exc}") from exc


def _decode_body_sections(reader: _Reader) -> DocumentState:
    version = reader.uvarint()
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(f"unsupported snapshot version {version}")
    kin = reader.uvarint()
    element_count = reader.uvarint()
    flags = reader.raw(1)[0]
    last_compressed_size = reader.uvarint()

    n_symbols = reader.uvarint()
    alphabet = Alphabet()
    symbols: List[Symbol] = []
    for _ in range(n_symbols):
        name = reader.string()
        rank = reader.uvarint()
        kind = reader.raw(1)[0]
        if kind == 1:
            symbols.append(alphabet.nonterminal(name, rank))
        else:
            symbols.append(alphabet.terminal(name, rank))

    def symbol_at(index: int) -> Symbol:
        if index >= n_symbols:
            raise SnapshotError(f"symbol id {index} out of range")
        return symbols[index]

    start = symbol_at(reader.uvarint())
    grammar = Grammar(alphabet, start)
    n_rules = reader.uvarint()
    for _ in range(n_rules):
        head = symbol_at(reader.uvarint())
        if head in grammar.rules:
            raise SnapshotError(f"duplicate rule for {head!r}")
        grammar.set_rule(head, _decode_body(reader, symbols))

    shard: Optional[ShardState] = None
    if flags & 2:
        width = reader.uvarint()
        prefix = reader.string()
        parents: Dict[Symbol, Symbol] = {}
        for _ in range(reader.uvarint()):
            head = symbol_at(reader.uvarint())
            parents[head] = symbol_at(reader.uvarint())
        shard = ShardState(width=width, prefix=prefix, parents=parents)

    segments: Dict[Symbol, Tuple[List[int], List[int]]] = {}
    for _ in range(reader.uvarint()):
        head = symbol_at(reader.uvarint())
        node_segs = [reader.uvarint() for _ in range(head.rank + 1)]
        elem_segs = [reader.uvarint() for _ in range(head.rank + 1)]
        segments[head] = (node_segs, elem_segs)

    label_counts: Optional[Dict[Symbol, Dict[str, int]]] = None
    if flags & 4:
        label_counts = {}
        for _ in range(reader.uvarint()):
            head = symbol_at(reader.uvarint())
            counts: Dict[str, int] = {}
            for _ in range(reader.uvarint()):
                label = symbol_at(reader.uvarint())
                counts[label.name] = reader.uvarint()
            label_counts[head] = counts

    dirty = [symbol_at(reader.uvarint())
             for _ in range(reader.uvarint())]
    if not reader.exhausted:
        raise SnapshotError("trailing bytes after snapshot body")

    grammar.validate()
    return DocumentState(
        grammar=grammar,
        kin=kin,
        element_count=element_count,
        baselined=bool(flags & 1),
        last_compressed_size=last_compressed_size,
        dirty_rules=dirty,
        shard=shard,
        segments=segments,
        label_counts=label_counts,
    )


# ----------------------------------------------------------------------
# file IO (crash-atomic)
# ----------------------------------------------------------------------
def write_snapshot(
    path: str, state: DocumentState, io: Optional[StorageIO] = None
) -> None:
    """Write a snapshot crash-atomically (temp file + ``os.replace``).

    A crash at any point leaves either the previous file intact or the
    complete new image -- never a half-written snapshot under ``path``
    (a stray ``*.tmp`` is harmless and overwritten next time).
    """
    if io is None:
        io = StorageIO()
    data = encode_state(state)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        io.write(handle, data, "snapshot:write")
        io.fsync(handle, "snapshot:write")
    io.replace(tmp, path, "snapshot:commit")
    io.fsync_dir(os.path.dirname(os.path.abspath(path)),
                 "snapshot:commit")


def read_snapshot(path: str) -> DocumentState:
    """Read and fully validate a snapshot file.

    Raises :class:`SnapshotError` on any corruption (including a bad
    element-count cross-check, see :func:`document_element_count`);
    raises ``FileNotFoundError`` when the file does not exist.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    state = decode_state(data)
    # Independent invariant check: recount the document's elements from
    # the grammar alone (O(|G|), not O(N)) and compare with both the
    # stored count and the imported start-rule segments.  A snapshot
    # whose checksum collides into a consistent-looking but wrong image
    # is caught here instead of surfacing as query nonsense later.
    recounted = document_element_count(state.grammar)
    if recounted != state.element_count:
        raise SnapshotError(
            f"element count mismatch: snapshot says "
            f"{state.element_count}, grammar generates {recounted}"
        )
    start_segments = state.segments.get(state.grammar.start)
    if start_segments is not None and sum(start_segments[1]) != recounted:
        raise SnapshotError("start-rule element segments are inconsistent")
    return state


def document_element_count(grammar: Grammar) -> int:
    """Elements of ``valG(S)``, recounted bottom-up from rule bodies.

    Independent of any index state: per rule, count the non-``⊥``
    terminals of the body plus the callees' totals (arguments live in
    the caller's body and are counted there; parameters contribute 0).
    """
    totals: Dict[Symbol, int] = {}

    def resolve(head: Symbol) -> int:
        stack = [head]
        while stack:
            current = stack[-1]
            if current in totals:
                stack.pop()
                continue
            missing: List[Symbol] = []
            count = 0
            walk = [grammar.rhs(current)]
            while walk:
                node = walk.pop()
                symbol = node.symbol
                if symbol.is_terminal:
                    if not symbol.is_bottom:
                        count += 1
                elif symbol.is_nonterminal:
                    cached = totals.get(symbol)
                    if cached is None:
                        missing.append(symbol)
                    else:
                        count += cached
                walk.extend(node.children)
            if missing:
                stack.extend(missing)
                continue
            totals[current] = count
            stack.pop()
        return totals[head]

    return resolve(grammar.start)
