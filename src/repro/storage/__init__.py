"""Durability for compressed XML documents: WAL, snapshots, recovery.

The paper's claim is that updates on grammar-compressed XML are cheap
enough to apply in place; this package makes them *durable* without
giving that up.  The design is the classic logical-WAL + checkpoint
pair, specialized to the SLCF grammar model:

* :mod:`repro.storage.wal` -- a write-ahead log of the *logical*
  operations (``rename/insert/append/delete/apply_batch``), each a
  length-prefixed, CRC32-checksummed, fsync'd record appended *before*
  the in-memory mutation.  Replaying the log against a snapshot is
  deterministic, so the log never needs to capture grammar internals.

* :mod:`repro.storage.snapshot` -- a binary, versioned, checksummed
  image of a :class:`repro.api.CompressedXml`: the grammar itself plus
  the shard hierarchy and the structural/label index tables, so a
  reload neither re-shards nor re-censuses.

* :mod:`repro.storage.recovery` -- generation manifests and the
  open-time protocol: newest valid snapshot + WAL tail replay, with
  graceful degradation to the previous generation when the newest
  snapshot is corrupt.

* :mod:`repro.storage.durable` -- :class:`DurableXml`, the facade
  combining the above behind the ``CompressedXml`` API.

* :mod:`repro.storage.faults` -- the injectable crash-point layer all
  file mutation goes through, driving the fault-injection test suite.
"""

from repro.storage.durable import DurableXml
from repro.storage.faults import (
    CRASH_POINTS,
    FaultyIO,
    SimulatedCrash,
    StorageIO,
)
from repro.storage.recovery import RecoveryError, recover
from repro.storage.snapshot import (
    DocumentState,
    SnapshotError,
    read_snapshot,
    write_snapshot,
)
from repro.storage.wal import WalRecordError, WriteAheadLog

__all__ = [
    "DurableXml",
    "StorageIO",
    "FaultyIO",
    "SimulatedCrash",
    "CRASH_POINTS",
    "RecoveryError",
    "recover",
    "DocumentState",
    "SnapshotError",
    "read_snapshot",
    "write_snapshot",
    "WalRecordError",
    "WriteAheadLog",
]
