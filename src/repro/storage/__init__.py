"""Durability for compressed XML documents: WAL, snapshots, recovery.

The paper's claim is that updates on grammar-compressed XML are cheap
enough to apply in place; this package makes them *durable* without
giving that up -- and, since PR 7, *self-healing* under a misbehaving
disk.  The design is the classic logical-WAL + checkpoint pair,
specialized to the SLCF grammar model:

* :mod:`repro.storage.wal` -- a write-ahead log of the *logical*
  operations (``rename/insert/append/delete/apply_batch``), each a
  length-prefixed, CRC32-checksummed, fsync'd record appended *before*
  the in-memory mutation.  The live log is a chain of size-bounded
  segments (:class:`SegmentedWal`) rotated on a threshold and compacted
  once fully checkpointed, so damage is quarantined per segment;
  transient I/O errors are retried with bounded backoff and exhaustion
  surfaces as a typed :class:`WalWriteError`.

* :mod:`repro.storage.snapshot` -- a binary, versioned, checksummed
  image of a :class:`repro.api.CompressedXml`: the grammar itself plus
  the shard hierarchy and the structural/label index tables, so a
  reload neither re-shards nor re-censuses.

* :mod:`repro.storage.recovery` -- generation manifests and the
  open-time protocol: newest valid snapshot + WAL chain replay, with
  graceful degradation to the previous generation when the newest
  snapshot is corrupt.

* :mod:`repro.storage.durable` -- :class:`DurableXml`, the facade
  combining the above behind the ``CompressedXml`` API; a persistent
  write failure flips it into read-only degraded mode
  (:class:`StoreDegraded`) instead of corrupting the log.

* :mod:`repro.storage.scrub` -- the online audit/repair pass
  (``DurableXml.scrub``): disk checksums re-verified, index caches
  compared against streaming oracles, inconsistent rules rebuilt.

* :mod:`repro.storage.faults` -- the injectable fault layer all file
  mutation goes through: simulated kills *and* injected ``errno``
  failures at the same labeled points, driving the crash and
  error-injection test matrices.
"""

from repro.storage.durable import (
    CheckpointError,
    DurableXml,
    StoreDegraded,
)
from repro.storage.faults import (
    CRASH_POINTS,
    FaultyIO,
    RetryPolicy,
    SimulatedCrash,
    StorageIO,
)
from repro.storage.recovery import RecoveryError, recover
from repro.storage.scrub import ScrubFinding, ScrubReport
from repro.storage.snapshot import (
    DocumentState,
    SnapshotError,
    read_snapshot,
    write_snapshot,
)
from repro.storage.wal import (
    SegmentedWal,
    WalRecordError,
    WalWriteError,
    WriteAheadLog,
)

__all__ = [
    "DurableXml",
    "StoreDegraded",
    "CheckpointError",
    "StorageIO",
    "FaultyIO",
    "RetryPolicy",
    "SimulatedCrash",
    "CRASH_POINTS",
    "RecoveryError",
    "recover",
    "ScrubFinding",
    "ScrubReport",
    "DocumentState",
    "SnapshotError",
    "read_snapshot",
    "write_snapshot",
    "WalRecordError",
    "WalWriteError",
    "WriteAheadLog",
    "SegmentedWal",
]
