"""Store layout, generation manifests, and the recovery protocol.

A durable store is one directory::

    store/
      MANIFEST          JSON {"format": "repro-store", "version": 1,
                              "generation": N}
      snapshot.000N     binary snapshot at generation N
      wal.000N          segment 0 of the chain committed since snapshot N
      wal.000N.000001   further chain segments (size-bounded rotation)
      snapshot.000N-1   previous generation, kept as the degradation
      wal.000N-1.compact  ... fallback (its chain compacted to one file)
                        until the next checkpoint retires it

The manifest is the single source of truth for which generation is
live, and it is only ever switched by an atomic temp-file +
``os.replace`` -- that rename is the commit point of a checkpoint.  A
checkpoint therefore orders: write ``snapshot.N+1`` (crash-atomic),
create ``wal.N+1`` (empty, fsync'd), switch the manifest, then retire
generation ``N-1`` and compact generation ``N``'s chain.  A crash
anywhere before the switch leaves the store at generation ``N`` with at
most some stray ``N+1`` files, which the next checkpoint simply
overwrites.

Recovery (:func:`recover`) reads the manifest, loads ``snapshot.N``,
verifies its checksum and element-count invariants, and replays
``wal.N``'s segment chain.  When ``snapshot.N`` is corrupt (bit rot,
torn by a dying disk), it *degrades*: load ``snapshot.N-1`` and replay
generation ``N-1``'s log (compacted form preferred) in full before
``wal.N`` -- replay is deterministic, so the result is the same
document.  Only a log's *last* record may fail to apply: for the live
chain that is the operation that crashed between its fsync and its
acknowledgment, and for the fallback log it is an operation whose
in-memory apply failed but whose WAL rollback could not reach the disk
before the store degraded.  Either way the record was never
acknowledged; it is dropped and truncated like a torn tail.  A failing
record anywhere else is real corruption and raises
:class:`RecoveryError` with the file path, byte offset, and record
ordinal of the offender.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional, Union, TYPE_CHECKING

from repro.storage.faults import RetryPolicy, StorageIO
from repro.storage.snapshot import SnapshotError, read_snapshot
from repro.storage.wal import (
    DEFAULT_SEGMENT_BYTES,
    SegmentedWal,
    WalRecordError,
    WriteAheadLog,
    batch_ops_from_record,
    compact_path,
    content_from_record,
    generation_wal_files,
    list_segments,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api import CompressedXml

__all__ = [
    "MANIFEST_NAME",
    "RecoveryError",
    "StoreLayout",
    "read_manifest",
    "write_manifest",
    "apply_record",
    "recover",
    "RecoveredDocument",
]

MANIFEST_NAME = "MANIFEST"
MANIFEST_FORMAT = "repro-store"
MANIFEST_VERSION = 1

#: Either log shape replay understands: the live segment chain, or a
#: single file (a fallback generation's compacted log).
ReplayableLog = Union[SegmentedWal, WriteAheadLog]


class RecoveryError(RuntimeError):
    """The store cannot be recovered (no valid snapshot generation, a
    corrupt manifest, a broken WAL segment chain, or a non-tail WAL
    record that fails to apply)."""


class StoreLayout:
    """Path arithmetic for one store directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.manifest_path = os.path.join(directory, MANIFEST_NAME)

    def snapshot_path(self, generation: int) -> str:
        return os.path.join(self.directory, f"snapshot.{generation:06d}")

    def wal_path(self, generation: int) -> str:
        """Segment 0 of a generation's chain (the PR-6 name)."""
        return os.path.join(self.directory, f"wal.{generation:06d}")

    def compact_path(self, generation: int) -> str:
        return compact_path(self.directory, generation)

    def wal_segments(self, generation: int) -> List[int]:
        return list_segments(self.directory, generation)

    def wal_files(self, generation: int) -> List[str]:
        """Every WAL file of a generation (chain + compacted form)."""
        return generation_wal_files(self.directory, generation)

    def generations_on_disk(self) -> List[int]:
        """Generations with a snapshot file present (stray or live)."""
        found = []
        for name in os.listdir(self.directory):
            if name.startswith("snapshot.") and not name.endswith(".tmp"):
                suffix = name[len("snapshot."):]
                if suffix.isdigit():
                    found.append(int(suffix))
        return sorted(found)


def read_manifest(directory: str) -> int:
    """The live generation number, or a :class:`RecoveryError`."""
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise RecoveryError(
            f"{directory}: not a durable store (no {MANIFEST_NAME})"
        ) from None
    except ValueError as exc:
        raise RecoveryError(f"{path}: corrupt manifest: {exc}") from exc
    if manifest.get("format") != MANIFEST_FORMAT or \
            not isinstance(manifest.get("generation"), int):
        raise RecoveryError(f"{path}: unrecognized manifest {manifest!r}")
    return manifest["generation"]


def write_manifest(
    directory: str, generation: int, io: Optional[StorageIO] = None
) -> None:
    """Atomically point the store at ``generation`` (the commit point).

    The rename is followed by a directory-entry fsync (under its own
    fault point): without it a power cut can roll the *name* back even
    though the rename "succeeded"."""
    if io is None:
        io = StorageIO()
    path = os.path.join(directory, MANIFEST_NAME)
    data = json.dumps({
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "generation": generation,
    }, sort_keys=True).encode("utf-8")
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        io.write(handle, data, "manifest:write")
        io.fsync(handle, "manifest:write")
    io.replace(tmp, path, "manifest:commit")
    io.fsync_dir(directory, "manifest:commit")


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def apply_record(doc: "CompressedXml", record: dict) -> None:
    """Apply one logged operation to an in-memory document.

    Shared by recovery replay and by the tests; must stay in exact
    correspondence with what :class:`repro.storage.durable.DurableXml`
    logs before applying.
    """
    op = record.get("op")
    if op == "rename":
        doc.rename(record["i"], record["tag"])
    elif op == "insert":
        doc.insert(record["i"], content_from_record(record["xml"]))
    elif op == "append":
        doc.append_child(record["i"], content_from_record(record["xml"]))
    elif op == "delete":
        doc.delete(record["i"])
    elif op == "batch":
        doc.apply_batch(batch_ops_from_record(record), transactional=True)
    else:
        raise WalRecordError(f"unknown WAL record kind {op!r}")


@dataclass
class RecoveredDocument:
    """What :func:`recover` hands the :class:`DurableXml` facade."""

    doc: "CompressedXml"
    generation: int
    wal: SegmentedWal
    replayed: int
    #: The newest snapshot was corrupt; the previous generation plus a
    #: full-log replay reconstructed the state.  The facade should
    #: checkpoint immediately to re-establish a healthy newest image.
    degraded: bool
    #: A log's final unacknowledged record failed to apply and was
    #: dropped (truncated) -- together with ``degraded`` this is the
    #: signal that the on-disk state was repaired during open.
    dropped_tail_record: bool
    #: Generations *above* the manifest generation whose WAL chains
    #: held committed records: a group-commit checkpoint cut the WAL
    #: over but crashed (or failed) before its manifest switch.  The
    #: chains were replayed, in order, after the live chain; ``wal`` is
    #: the newest of them, and the facade folds the whole sequence into
    #: one fresh generation with an immediate checkpoint.
    continuation_generations: List[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Flat numeric view (the shared stats-object protocol)."""
        return {
            "generation": self.generation,
            "replayed": self.replayed,
            "degraded": self.degraded,
            "dropped_tail_record": self.dropped_tail_record,
            "continuation_generations": len(self.continuation_generations),
        }


def _replay(
    doc: "CompressedXml",
    wal: ReplayableLog,
    allow_drop_last: bool,
) -> tuple:
    """Replay a log's recovered records; returns (applied, dropped)."""
    records = wal.recovered_records
    applied = 0
    for position, record in enumerate(list(records)):
        try:
            apply_record(doc, record)
        except Exception as exc:
            if allow_drop_last and position == len(records) - 1:
                # The crash happened between the record's fsync and the
                # in-memory apply being acknowledged -- or the apply
                # itself failed and the WAL rollback never reached the
                # disk.  Either way the operation was never
                # acknowledged: drop it like a torn tail.
                wal.drop_last_record()
                return applied, True
            path, offset = wal.record_source(position)
            raise RecoveryError(
                f"{path}: WAL record #{position} at byte offset "
                f"{offset} ({record.get('op')!r}) failed to apply "
                f"during replay: {exc}"
            ) from exc
        applied += 1
    return applied, False


# ----------------------------------------------------------------------
# the open protocol
# ----------------------------------------------------------------------
def _open_fallback_log(
    layout: StoreLayout, generation: int, io: StorageIO
) -> Optional[ReplayableLog]:
    """The previous generation's log for degraded replay: compacted
    form when present, the raw segment chain otherwise."""
    compacted = layout.compact_path(generation)
    if os.path.exists(compacted):
        return WriteAheadLog(compacted, io=io)
    try:
        return SegmentedWal(layout.directory, generation, io=io)
    except FileNotFoundError:
        return None


def recover(
    directory: str,
    io: Optional[StorageIO] = None,
    wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    retry: Optional[RetryPolicy] = None,
    **doc_kwargs,
) -> RecoveredDocument:
    """Open a store: newest valid snapshot + WAL chain replay.

    ``doc_kwargs`` (``auto_recompress_factor``, ...) are forwarded to
    ``CompressedXml.from_state`` -- runtime policy is the caller's,
    while the grammar/shard/index state comes from the snapshot.
    """
    from repro.api import CompressedXml

    if io is None:
        io = StorageIO()
    layout = StoreLayout(directory)
    generation = read_manifest(directory)

    doc: Optional[CompressedXml] = None
    degraded = False
    newest_error: Optional[Exception] = None
    try:
        state = read_snapshot(layout.snapshot_path(generation))
        doc = CompressedXml.from_state(state, **doc_kwargs)
    except (SnapshotError, FileNotFoundError, ValueError) as exc:
        newest_error = exc

    dropped = False
    replayed = 0
    if doc is None:
        # Degradation: the previous generation's snapshot plus a *full*
        # replay of its log reconstructs the exact pre-checkpoint state
        # (replay is deterministic); the live chain then replays on top.
        previous = generation - 1
        if previous < 0:
            raise RecoveryError(
                f"{directory}: snapshot generation {generation} is "
                f"unreadable and no previous generation exists: "
                f"{newest_error}"
            )
        try:
            state = read_snapshot(layout.snapshot_path(previous))
            doc = CompressedXml.from_state(state, **doc_kwargs)
        except (SnapshotError, FileNotFoundError, ValueError) as exc:
            raise RecoveryError(
                f"{directory}: generations {generation} and {previous} "
                f"are both unreadable ({newest_error}; {exc})"
            ) from exc
        degraded = True
        try:
            previous_wal = _open_fallback_log(layout, previous, io)
        except WalRecordError as exc:
            raise RecoveryError(
                f"{directory}: generation {previous} WAL needed for "
                f"degraded recovery is corrupt: {exc}"
            ) from exc
        if previous_wal is not None:
            # Every acknowledged record here precedes the checkpoint
            # that produced the (now corrupt) newest snapshot and must
            # replay cleanly -- but the *last* record may be a failed
            # apply whose WAL rollback never reached the degrading
            # disk, and that one was never acknowledged: drop it.
            applied, dropped_prev = _replay(doc, previous_wal,
                                            allow_drop_last=True)
            replayed += applied
            dropped = dropped or dropped_prev
            previous_wal.close()

    # The live generation's chain.  Missing is legal only in the
    # degraded path (a checkpoint died after the manifest switch could
    # not have happened -- but a dying disk may lose files); treat as
    # empty.
    try:
        wal = SegmentedWal(directory, generation, io=io,
                           segment_bytes=wal_segment_bytes, retry=retry)
    except FileNotFoundError:
        if not degraded:
            raise RecoveryError(
                f"{directory}: live WAL {layout.wal_path(generation)} "
                f"is missing"
            ) from None
        wal = SegmentedWal(directory, generation, io=io, create=True,
                           segment_bytes=wal_segment_bytes, retry=retry)
    except WalRecordError as exc:
        raise RecoveryError(
            f"{directory}: live WAL chain for generation {generation} "
            f"is corrupt: {exc}"
        ) from exc

    # Continuation chains: a group-commit checkpoint cuts the WAL over
    # to generation g+1 *before* writing the snapshot and switching the
    # manifest, so a crash in that window leaves acknowledged records
    # in chains above the manifest generation.  Probe upward; the
    # chains replay, in order, after the live chain.  Chains that are
    # all empty are the old (serial) checkpoint's stray artifact and
    # are ignored exactly as before.
    probed = []
    cont = generation + 1
    while True:
        try:
            cont_wal = SegmentedWal(directory, cont, io=io,
                                    segment_bytes=wal_segment_bytes,
                                    retry=retry,
                                    retire_torn_creation=True)
        except FileNotFoundError:
            break
        except WalRecordError as exc:
            raise RecoveryError(
                f"{directory}: continuation WAL chain for generation "
                f"{cont} is corrupt: {exc}"
            ) from exc
        probed.append((cont, cont_wal))
        cont += 1
    continuation = probed if any(w.record_count for _, w in probed) \
        else []

    # Only the final chain of the whole sequence may drop its last
    # record: every earlier chain was sealed by a cutover, so its
    # records were applied before later acknowledged operations built
    # on them.
    applied, dropped_live = _replay(
        doc, wal, allow_drop_last=not continuation
    )
    replayed += applied
    dropped = dropped or dropped_live

    if continuation:
        for position, (gen, cont_wal) in enumerate(continuation):
            final = position == len(continuation) - 1
            applied, dropped_cont = _replay(
                doc, cont_wal, allow_drop_last=final
            )
            replayed += applied
            dropped = dropped or dropped_cont
        wal.close()
        for _gen, cont_wal in continuation[:-1]:
            cont_wal.close()
        wal = continuation[-1][1]
    else:
        for _gen, cont_wal in probed:
            cont_wal.close()

    return RecoveredDocument(
        doc=doc,
        generation=generation,
        wal=wal,
        replayed=replayed,
        degraded=degraded,
        dropped_tail_record=dropped,
        continuation_generations=[gen for gen, _ in continuation],
    )
