"""The injectable fault layer under all durable file mutation.

Every side-effecting filesystem primitive the storage subsystem performs
-- writing bytes, fsync, ``os.replace``, truncation, directory fsync,
file creation and removal -- goes through a :class:`StorageIO` instance.
The default implementation simply performs the operation;
:class:`FaultyIO` is the fault-injection double the test harness swaps
in.  It models two distinct failure families at the same labeled sites:

* **Crashes** -- raise :class:`SimulatedCrash` at a scheduled point,
  emulating the process being killed at exactly that instant.  Crash
  semantics model a process kill, not media loss: bytes handed to the OS
  before the crash survive, a ``mid-write`` crash leaves a *torn* prefix
  of the payload behind, and everything after the raise simply never
  executes.  :class:`SimulatedCrash` deliberately subclasses
  ``BaseException``: the storage code's internal ``except Exception``
  error handling (e.g. the WAL rollback on a failed apply) must not be
  able to "survive" a kill.

* **I/O errors** -- raise ``OSError`` with a scheduled ``errno``
  (``EIO``, ``ENOSPC``, ``EROFS``, ...) at a labeled point, emulating a
  dying disk, a full filesystem, or a read-only remount.  Unlike a
  crash, the process lives on: an error can be *transient* (the next
  ``error_count`` hits at the label fail, later ones succeed -- the
  retry/backoff path in :mod:`repro.storage.wal` must absorb it) or
  *persistent* (every hit from the trigger on fails -- the degradation
  path in :mod:`repro.storage.durable` must flip the store read-only).
  An error at a ``mid-write`` point leaves a torn prefix, exactly like a
  mid-write kill, so the tail-restoration logic is exercised too.

Fault points are labeled (``"wal:append:before-fsync"``, ...).  The full
registry is :data:`CRASH_POINTS`, which both the kill matrix and the
error-injection matrix iterate; :class:`FaultyIO` additionally supports
triggering at the *n*-th point hit overall (any label), which is what
the Hypothesis property tests use to cover every reachable interleaving.

:class:`RetryPolicy` lives here too: the bounded-exponential-backoff
schedule ``WriteAheadLog.append``/``fsync`` retry transient failures
under, with an injectable ``sleep`` so tests never wait on a real clock.
"""

from __future__ import annotations

import errno as _errno
import os
import time
from typing import Callable, Dict, IO, Iterator, Optional

__all__ = [
    "StorageIO",
    "FaultyIO",
    "SimulatedCrash",
    "RetryPolicy",
    "CRASH_POINTS",
]


class SimulatedCrash(BaseException):
    """The process was "killed" at a labeled crash point.

    A ``BaseException`` on purpose: internal ``except Exception``
    recovery paths in the storage code must not swallow a kill.
    """

    def __init__(self, label: str) -> None:
        super().__init__(label)
        self.label = label


#: Every labeled fault point the storage subsystem can hit, for the
#: kill-at-every-point and error-at-every-point matrix tests.  Compound
#: labels are formed as ``"<site>:<phase>"`` where the site names the
#: protocol step and the phase one of ``before-write`` / ``mid-write`` /
#: ``after-write`` / ``before-fsync`` / ``after-fsync`` /
#: ``before-rename`` / ``after-rename`` / ``before-truncate`` /
#: ``after-truncate`` / ``before-dirsync`` / ``after-dirsync`` /
#: ``before-remove``.
CRASH_POINTS = tuple(
    f"{site}:{phase}"
    for site, phases in (
        # One committed operation record appended to the live WAL segment.
        ("wal:append", ("before-write", "mid-write", "after-write",
                        "before-fsync", "after-fsync")),
        # A fresh WAL segment (header) created at checkpoint/create time
        # or by a size-triggered rotation; the directory fsync makes the
        # new name durable.
        ("wal:create", ("before-write", "mid-write", "after-write",
                        "before-fsync", "after-fsync",
                        "before-dirsync", "after-dirsync")),
        # Torn-tail truncation while opening an existing WAL segment.
        ("wal:open", ("before-truncate", "after-truncate")),
        # Rolling the WAL back after an in-memory apply failed (or after
        # a failed append left a torn prefix behind).
        ("wal:rollback", ("before-truncate", "after-truncate")),
        # A fully-checkpointed segment chain compacted into one file:
        # temp write + rename + dirsync, then the chain files removed.
        ("wal:compact", ("before-write", "mid-write", "after-write",
                         "before-fsync", "after-fsync",
                         "before-rename", "after-rename",
                         "before-dirsync", "after-dirsync",
                         "before-remove")),
        # Snapshot image written to its temp file.
        ("snapshot:write", ("before-write", "mid-write", "after-write",
                            "before-fsync", "after-fsync")),
        # Temp snapshot renamed over its final name (+ dir entry fsync).
        ("snapshot:commit", ("before-rename", "after-rename",
                             "before-dirsync", "after-dirsync")),
        # Manifest written to its temp file, then renamed (the atomic
        # generation switch -- the commit point of a checkpoint), then
        # the directory entry fsync'd.
        ("manifest:write", ("before-write", "mid-write", "after-write",
                            "before-fsync", "after-fsync")),
        ("manifest:commit", ("before-rename", "after-rename",
                             "before-dirsync", "after-dirsync")),
        # Old-generation files removed after a completed checkpoint.
        ("checkpoint:clean", ("before-remove",)),
        # CompressedXml.save_grammar: the text grammar written to a temp
        # file and renamed over the target, with both fsyncs.
        ("grammar:save", ("before-write", "mid-write", "after-write",
                          "before-fsync", "after-fsync",
                          "before-rename", "after-rename",
                          "before-dirsync", "after-dirsync")),
    )
    for phase in phases
)


class RetryPolicy:
    """Bounded exponential backoff for transient I/O failures.

    ``attempts`` is the total number of tries (the first one included);
    between consecutive tries the policy sleeps ``base_delay *
    multiplier**i`` seconds, capped at ``max_delay``.  ``sleep`` is
    injectable so tests drive the schedule without a real clock --
    ``RetryPolicy(sleep=delays.append)`` records the backoff sequence
    instead of waiting it out.
    """

    def __init__(
        self,
        attempts: int = 5,
        base_delay: float = 0.005,
        max_delay: float = 0.25,
        multiplier: float = 4.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.sleep = sleep

    def delays(self) -> Iterator[float]:
        """The backoff sequence between tries (``attempts - 1`` values)."""
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            yield min(delay, self.max_delay)
            delay *= self.multiplier

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(attempts={self.attempts}, "
            f"base_delay={self.base_delay}, max_delay={self.max_delay})"
        )


class StorageIO:
    """All side-effecting filesystem primitives, behind fault points.

    The default implementation is the real thing; tests inject
    :class:`FaultyIO`.  Reads are not routed through here -- a killed
    process cannot corrupt data by reading, and a read error surfaces
    naturally as the typed corruption errors of the scan/decode layers.

    :meth:`bind_metrics` attaches a per-site fsync latency histogram
    (``repro_fsync_seconds{site=...}``) -- fsync is where commit latency
    actually lives, and the per-site split is what distinguishes "the
    WAL device is slow" from "checkpoints are slow".  Unbound (the
    default), :meth:`fsync` takes the original untimed path.
    """

    #: Class-level default so subclasses with their own ``__init__``
    #: (``FaultyIO``) need no cooperation; ``bind_metrics`` shadows it
    #: with instance state.
    _fsync_metrics: Optional[Dict[str, object]] = None
    _metrics_registry = None

    #: Sites pre-declared at bind time so a scrape sees the fsync
    #: surface before the first sync happens (the rest appear lazily).
    _FSYNC_SITES = ("wal:append", "wal:create", "wal:compact",
                    "snapshot:write", "manifest:write")

    def bind_metrics(self, registry) -> None:
        """Resolve fsync latency histograms against ``registry``."""
        self._metrics_registry = registry
        self._fsync_metrics = {
            site: registry.histogram(
                "repro_fsync_seconds",
                "fsync latency by storage site", site=site)
            for site in self._FSYNC_SITES
        }

    def crash_point(self, label: str) -> None:
        """Hook invoked at every labeled point; a no-op in production."""

    # -- primitives ----------------------------------------------------
    def open_append(self, path: str) -> IO[bytes]:
        return open(path, "ab")

    def write(self, handle: IO[bytes], data: bytes, site: str) -> None:
        """Write ``data``, with before/mid/after fault points."""
        self.crash_point(site + ":before-write")
        self._write_payload(handle, data, site)
        self.crash_point(site + ":after-write")

    def _write_payload(self, handle: IO[bytes], data: bytes,
                       site: str) -> None:
        handle.write(data)

    def fsync(self, handle: IO[bytes], site: str) -> None:
        self.crash_point(site + ":before-fsync")
        metrics = self._fsync_metrics
        if metrics is None:
            handle.flush()
            os.fsync(handle.fileno())
        else:
            histogram = metrics.get(site)
            if histogram is None:
                histogram = metrics[site] = (
                    self._metrics_registry.histogram(
                        "repro_fsync_seconds",
                        "fsync latency by storage site", site=site)
                )
            started = time.perf_counter()
            handle.flush()
            os.fsync(handle.fileno())
            histogram.observe(time.perf_counter() - started)
        self.crash_point(site + ":after-fsync")

    def replace(self, source: str, destination: str, site: str) -> None:
        """Atomic rename, with before/after fault points."""
        self.crash_point(site + ":before-rename")
        os.replace(source, destination)
        self.crash_point(site + ":after-rename")

    def truncate(self, path: str, size: int, site: str) -> None:
        self.crash_point(site + ":before-truncate")
        with open(path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())
        self.crash_point(site + ":after-truncate")

    def remove(self, path: str, site: str) -> None:
        self.crash_point(site + ":before-remove")
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def fsync_dir(self, path: str, site: Optional[str] = None) -> None:
        """Flush directory metadata (new/renamed files) so the *name*
        survives a crash too; best effort on platforms whose directories
        cannot be opened.  With a ``site``, the flush is bracketed by
        ``<site>:before-dirsync`` / ``<site>:after-dirsync`` fault
        points -- every ``os.replace`` commit point threads one."""
        if site is not None:
            self.crash_point(site + ":before-dirsync")
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        if site is not None:
            self.crash_point(site + ":after-dirsync")


class FaultyIO(StorageIO):
    """A :class:`StorageIO` that kills the process -- or fails with a
    scheduled ``errno`` -- at a chosen fault point.

    Crash scheduling (exactly one of the two, or neither when an error
    schedule is given):

    * ``FaultyIO(crash_label="wal:append:after-write", occurrence=2)``
      crashes the second time that exact label is hit;
    * ``FaultyIO(crash_invocation=k)`` crashes at the *k*-th fault point
      hit overall (1-based, any label) -- the mode the property tests
      use to sweep every reachable point of a concrete run.

    Error scheduling (independent of, and combinable with, a crash
    schedule -- an errno injection followed by a later kill exercises
    the interleavings the Hypothesis sweep draws):

    * ``FaultyIO(error_label="wal:append:before-fsync",
      error_errno=errno.EIO, error_count=2)`` fails the first two hits
      of that label with ``EIO`` and lets later hits succeed (a
      *transient* fault the retry path must absorb);
    * ``FaultyIO(error_label=..., error_persistent=True)`` fails every
      hit from the trigger on (a *persistent* fault -- full disk,
      read-only remount -- the degradation path must survive);
    * ``FaultyIO(error_invocation=k, ...)`` triggers the error window at
      the *k*-th point hit overall instead of at a specific label; with
      ``error_persistent=True`` every labeled point from the *k*-th on
      fails, emulating the whole device going bad mid-run.

    ``arm()``/``disarm()`` gate the countdowns so a test can build the
    store cleanly and inject faults only into the phase under test.
    Once crashed, *every* later primitive raises again (the process is
    dead); ``occurrences`` records how often each label was reached,
    which the matrix tests use to skip never-reached labels.
    """

    def __init__(
        self,
        crash_label: Optional[str] = None,
        occurrence: int = 1,
        crash_invocation: Optional[int] = None,
        torn_fraction: float = 0.5,
        error_label: Optional[str] = None,
        error_invocation: Optional[int] = None,
        error_errno: int = _errno.EIO,
        error_count: int = 1,
        error_persistent: bool = False,
        error_occurrence: int = 1,
    ) -> None:
        if crash_label is not None and crash_invocation is not None:
            raise ValueError(
                "schedule exactly one of crash_label / crash_invocation"
            )
        if error_label is not None and error_invocation is not None:
            raise ValueError(
                "schedule exactly one of error_label / error_invocation"
            )
        has_crash = crash_label is not None or crash_invocation is not None
        has_error = error_label is not None or error_invocation is not None
        if not has_crash and not has_error:
            raise ValueError(
                "schedule exactly one of crash_label / crash_invocation "
                "(or an error_label / error_invocation)"
            )
        self._crash_label = crash_label
        self._label_countdown = occurrence
        self._invocation_countdown = crash_invocation or 0
        self._has_crash = has_crash
        self._torn_fraction = torn_fraction
        self._error_label = error_label
        self._error_label_countdown = error_occurrence
        self._error_invocation_countdown = error_invocation or 0
        self._has_error = has_error
        self._error_errno = error_errno
        self._error_budget = error_count
        self._error_persistent = error_persistent
        self._error_triggered = False
        self._armed = True
        self.crashed = False
        #: I/O errors actually raised, in order: (label, errno) pairs.
        self.errors_injected: list = []
        self.occurrences: Dict[str, int] = {}

    def arm(self) -> None:
        self._armed = True

    def disarm(self) -> None:
        self._armed = False

    def _crash_due(self, label: str) -> bool:
        if self.crashed:
            return True
        if not self._has_crash:
            return False
        if self._crash_label is not None:
            if label == self._crash_label:
                self._label_countdown -= 1
                return self._label_countdown <= 0
            return False
        self._invocation_countdown -= 1
        return self._invocation_countdown <= 0

    def _error_due(self, label: str) -> bool:
        if not self._has_error:
            return False
        if not self._error_triggered:
            if self._error_label is not None:
                if label != self._error_label:
                    return False
                self._error_label_countdown -= 1
                if self._error_label_countdown > 0:
                    return False
            else:
                self._error_invocation_countdown -= 1
                if self._error_invocation_countdown > 0:
                    return False
            self._error_triggered = True
        elif self._error_label is not None and not self._error_persistent \
                and label != self._error_label:
            # A transient label-scheduled fault only ever fails its own
            # label; persistent faults (a dead device) fail everything.
            return False
        if self._error_persistent:
            return True
        if self._error_budget > 0:
            self._error_budget -= 1
            return True
        return False

    def _raise_error(self, label: str) -> None:
        self.errors_injected.append((label, self._error_errno))
        raise OSError(
            self._error_errno,
            f"{os.strerror(self._error_errno)} [injected at {label}]",
        )

    def crash_point(self, label: str) -> None:
        if not self._armed:
            return
        self.occurrences[label] = self.occurrences.get(label, 0) + 1
        if self._crash_due(label):
            self.crashed = True
            raise SimulatedCrash(label)
        if self._error_due(label):
            self._raise_error(label)

    def _write_payload(self, handle, data: bytes, site: str) -> None:
        # A mid-write kill or error leaves a torn prefix of the payload
        # on disk: the bytes were handed to the OS before the fault.
        label = site + ":mid-write"
        if not self._armed:
            handle.write(data)
            return
        self.occurrences[label] = self.occurrences.get(label, 0) + 1
        if self._crash_due(label):
            self.crashed = True
            self._tear(handle, data)
            raise SimulatedCrash(label)
        if self._error_due(label):
            self._tear(handle, data)
            self._raise_error(label)
        handle.write(data)

    def _tear(self, handle, data: bytes) -> None:
        cut = max(1, int(len(data) * self._torn_fraction)) \
            if len(data) > 1 else 0
        handle.write(data[:cut])
        handle.flush()
