"""The injectable crash-point layer under all durable file mutation.

Every side-effecting filesystem primitive the storage subsystem performs
-- writing bytes, fsync, ``os.replace``, truncation, file creation and
removal -- goes through a :class:`StorageIO` instance.  The default
implementation simply performs the operation; :class:`FaultyIO` is the
fault-injection double the test harness swaps in: it raises
:class:`SimulatedCrash` at a scheduled *crash point*, emulating the
process being killed at exactly that instant.

Crash-point semantics model a **process kill, not media loss**: bytes
the code handed to the OS before the crash survive (our WAL/commit
protocols must therefore be correct for both "record fully on disk" and
"record torn/absent"), a ``mid-write`` crash leaves a *torn* prefix of
the payload behind, and everything after the raise simply never
executes.  :class:`SimulatedCrash` deliberately subclasses
``BaseException``: the storage code's internal ``except Exception``
error handling (e.g. the WAL rollback on a failed apply) must not be
able to "survive" a kill.

Crash points are labeled (``"wal:append:before-fsync"``, ...).  The
full registry is :data:`CRASH_POINTS`, which the matrix test iterates;
:class:`FaultyIO` additionally supports crashing at the *n*-th crash
point hit overall (any label), which is what the Hypothesis property
test uses to cover every reachable interleaving.
"""

from __future__ import annotations

import os
from typing import Dict, IO, Optional

__all__ = [
    "StorageIO",
    "FaultyIO",
    "SimulatedCrash",
    "CRASH_POINTS",
]


class SimulatedCrash(BaseException):
    """The process was "killed" at a labeled crash point.

    A ``BaseException`` on purpose: internal ``except Exception``
    recovery paths in the storage code must not swallow a kill.
    """

    def __init__(self, label: str) -> None:
        super().__init__(label)
        self.label = label


#: Every labeled crash point the storage subsystem can hit, for the
#: kill-at-every-point matrix test.  Compound labels are formed as
#: ``"<site>:<phase>"`` where the site names the protocol step and the
#: phase one of ``before-write`` / ``mid-write`` / ``after-write`` /
#: ``before-fsync`` / ``after-fsync`` / ``before-rename`` /
#: ``after-rename`` / ``before-truncate`` / ``after-truncate``.
CRASH_POINTS = tuple(
    f"{site}:{phase}"
    for site, phases in (
        # One committed operation record appended to the live WAL.
        ("wal:append", ("before-write", "mid-write", "after-write",
                        "before-fsync", "after-fsync")),
        # A fresh WAL file (header) created at checkpoint/create time.
        ("wal:create", ("before-write", "mid-write", "after-write",
                        "before-fsync", "after-fsync")),
        # Torn-tail truncation while opening an existing WAL.
        ("wal:open", ("before-truncate", "after-truncate")),
        # Rolling the WAL back after an in-memory apply failed.
        ("wal:rollback", ("before-truncate", "after-truncate")),
        # Snapshot image written to its temp file.
        ("snapshot:write", ("before-write", "mid-write", "after-write",
                            "before-fsync", "after-fsync")),
        # Temp snapshot renamed over its final name.
        ("snapshot:commit", ("before-rename", "after-rename")),
        # Manifest written to its temp file, then renamed (the atomic
        # generation switch -- the commit point of a checkpoint).
        ("manifest:write", ("before-write", "mid-write", "after-write",
                            "before-fsync", "after-fsync")),
        ("manifest:commit", ("before-rename", "after-rename")),
        # Old-generation files removed after a completed checkpoint.
        ("checkpoint:clean", ("before-remove",)),
    )
    for phase in phases
)


class StorageIO:
    """All side-effecting filesystem primitives, behind crash points.

    The default implementation is the real thing; tests inject
    :class:`FaultyIO`.  Reads are not routed through here -- a killed
    process cannot corrupt data by reading.
    """

    def crash_point(self, label: str) -> None:
        """Hook invoked at every labeled point; a no-op in production."""

    # -- primitives ----------------------------------------------------
    def open_append(self, path: str) -> IO[bytes]:
        return open(path, "ab")

    def write(self, handle: IO[bytes], data: bytes, site: str) -> None:
        """Write ``data``, with before/mid/after crash points."""
        self.crash_point(site + ":before-write")
        self._write_payload(handle, data, site)
        self.crash_point(site + ":after-write")

    def _write_payload(self, handle: IO[bytes], data: bytes,
                       site: str) -> None:
        handle.write(data)

    def fsync(self, handle: IO[bytes], site: str) -> None:
        self.crash_point(site + ":before-fsync")
        handle.flush()
        os.fsync(handle.fileno())
        self.crash_point(site + ":after-fsync")

    def replace(self, source: str, destination: str, site: str) -> None:
        """Atomic rename, with before/after crash points."""
        self.crash_point(site + ":before-rename")
        os.replace(source, destination)
        self.crash_point(site + ":after-rename")

    def truncate(self, path: str, size: int, site: str) -> None:
        self.crash_point(site + ":before-truncate")
        with open(path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())
        self.crash_point(site + ":after-truncate")

    def remove(self, path: str, site: str) -> None:
        self.crash_point(site + ":before-remove")
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def fsync_dir(self, path: str) -> None:
        """Flush directory metadata (new/renamed files); best effort on
        platforms whose directories cannot be opened."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


class FaultyIO(StorageIO):
    """A :class:`StorageIO` that kills the process at a chosen point.

    Two scheduling modes:

    * ``FaultyIO(crash_label="wal:append:after-write", occurrence=2)``
      crashes the second time that exact label is hit;
    * ``FaultyIO(crash_invocation=k)`` crashes at the *k*-th crash
      point hit overall (1-based, any label) -- the mode the property
      test uses to sweep every reachable point of a concrete run.

    ``arm()``/``disarm()`` gate the countdown so a test can build the
    store cleanly and inject faults only into the phase under test.
    Once crashed, *every* later primitive raises again (the process is
    dead); ``occurrences`` records how often each label was reached,
    which the matrix test uses to skip never-reached labels.
    """

    def __init__(
        self,
        crash_label: Optional[str] = None,
        occurrence: int = 1,
        crash_invocation: Optional[int] = None,
        torn_fraction: float = 0.5,
    ) -> None:
        if (crash_label is None) == (crash_invocation is None):
            raise ValueError(
                "schedule exactly one of crash_label / crash_invocation"
            )
        self._crash_label = crash_label
        self._label_countdown = occurrence
        self._invocation_countdown = crash_invocation or 0
        self._torn_fraction = torn_fraction
        self._armed = True
        self.crashed = False
        self.occurrences: Dict[str, int] = {}

    def arm(self) -> None:
        self._armed = True

    def disarm(self) -> None:
        self._armed = False

    def _due(self, label: str) -> bool:
        if not self._armed:
            return False
        self.occurrences[label] = self.occurrences.get(label, 0) + 1
        if self.crashed:
            return True
        if self._crash_label is not None:
            if label == self._crash_label:
                self._label_countdown -= 1
                return self._label_countdown <= 0
            return False
        self._invocation_countdown -= 1
        return self._invocation_countdown <= 0

    def crash_point(self, label: str) -> None:
        if self._due(label):
            self.crashed = True
            raise SimulatedCrash(label)

    def _write_payload(self, handle, data: bytes, site: str) -> None:
        # A mid-write kill leaves a torn prefix of the payload on disk:
        # the bytes were handed to the OS before the process died.
        if self._due(site + ":mid-write"):
            self.crashed = True
            cut = max(1, int(len(data) * self._torn_fraction)) \
                if len(data) > 1 else 0
            handle.write(data[:cut])
            handle.flush()
            raise SimulatedCrash(site + ":mid-write")
        handle.write(data)
