"""Minimal DAGs of ranked trees.

The paper's lineage starts here: Buneman, Grohe & Koch showed XML trees
shrink to ~10% of their edges when repeated *subtrees* are shared (the
minimal DAG); SLCF grammars generalize the sharing to repeated *patterns*
(connected subgraphs) and reach ~3%.  This module provides

* :func:`minimal_dag_signatures` -- hash-consing of subtrees,
* :func:`dag_statistics` -- edge counts of tree vs. minimal DAG,
* :func:`dag_to_grammar` -- the DAG as an SLCF grammar (every shared
  subtree becomes a rank-0 rule), the natural input for GrammarRePair and
  a baseline in the static-compression experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.grammar.slcf import Grammar
from repro.repair.pruning import prune_grammar
from repro.trees.node import Node, node_count
from repro.trees.symbols import Alphabet, Symbol

__all__ = [
    "minimal_dag_signatures",
    "DagStats",
    "dag_statistics",
    "dag_to_grammar",
]


def minimal_dag_signatures(root: Node) -> Tuple[Dict[int, int], Dict[int, int], Dict[int, Node]]:
    """Hash-cons the subtrees of ``root``.

    Returns ``(signature_of, occurrences, representative)``:

    * ``signature_of``: ``id(node) -> signature`` (equal subtrees share a
      signature),
    * ``occurrences``: ``signature -> number of occurrences in the tree``,
    * ``representative``: ``signature -> first node with that signature``.
    """
    signature_of: Dict[int, int] = {}
    interned: Dict[Tuple, int] = {}
    occurrences: Dict[int, int] = {}
    representative: Dict[int, Node] = {}

    # Postorder: children are signed before their parents.
    order: List[Node] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(node.children)
    for node in reversed(order):
        key = (node.symbol,) + tuple(
            signature_of[id(child)] for child in node.children
        )
        signature = interned.get(key)
        if signature is None:
            signature = len(interned)
            interned[key] = signature
            representative[signature] = node
        signature_of[id(node)] = signature
        occurrences[signature] = occurrences.get(signature, 0) + 1
    return signature_of, occurrences, representative


@dataclass(frozen=True)
class DagStats:
    """Sharing statistics of a tree's minimal DAG."""

    tree_nodes: int
    tree_edges: int
    dag_nodes: int
    dag_edges: int

    @property
    def ratio(self) -> float:
        """DAG edges over tree edges -- the Buneman et al. measure."""
        if self.tree_edges == 0:
            return 1.0
        return self.dag_edges / self.tree_edges


def dag_statistics(root: Node) -> DagStats:
    """Compute minimal-DAG sharing statistics in one pass."""
    signature_of, _occ, representative = minimal_dag_signatures(root)
    dag_nodes = len(representative)
    dag_edges = sum(
        len(node.children) for node in representative.values()
    )
    total = node_count(root)
    return DagStats(
        tree_nodes=total,
        tree_edges=total - 1,
        dag_nodes=dag_nodes,
        dag_edges=dag_edges,
    )


def dag_to_grammar(
    root: Node,
    alphabet: Alphabet,
    min_subtree_nodes: int = 2,
    start_name: str = "S",
    rule_prefix: str = "D",
    prune: bool = True,
) -> Grammar:
    """Express the minimal DAG as an SLCF grammar.

    Every subtree occurring more than once (and having at least
    ``min_subtree_nodes`` nodes) becomes a rank-0 rule referenced wherever
    the subtree occurs.  With ``prune=True`` the standard pruning phase
    drops shares that do not pay for themselves, mirroring how DAG
    compressors only count *beneficial* sharing.

    The input tree is not modified.
    """
    from repro.trees.node import deep_copy

    signature_of, occurrences, representative = minimal_dag_signatures(root)

    start = alphabet.get(start_name)
    if start is None:
        start = alphabet.nonterminal(start_name, 0)
    elif not (start.is_nonterminal and start.rank == 0):
        # Document labels may shadow the default name (e.g. Treebank's "S").
        start = alphabet.fresh_nonterminal(0, prefix=start_name)
    grammar = Grammar(alphabet, start)

    rule_for: Dict[int, Symbol] = {}
    for signature, node in representative.items():
        if (
            occurrences[signature] > 1
            and node_count(node) >= min_subtree_nodes
        ):
            rule_for[signature] = alphabet.fresh_nonterminal(0, rule_prefix)

    # Build each signature's expression bottom-up: signature numbers are
    # assigned in a children-first order, so every child expression exists
    # when its parent is built.  Shared children become rule references;
    # unshared multi-occurrence children are necessarily tiny (below the
    # sharing threshold) and are copied per use.
    expression: Dict[int, Node] = {}
    used: Dict[int, bool] = {}

    def instance(signature: int) -> Node:
        head = rule_for.get(signature)
        if head is not None:
            return Node(head)
        template = expression[signature]
        if used.get(signature):
            return deep_copy(template)
        used[signature] = True
        return template

    root_signature = signature_of[id(root)]
    for signature in sorted(representative):
        node = representative[signature]
        expression[signature] = Node(
            node.symbol,
            [instance(signature_of[id(child)]) for child in node.children],
        )

    for signature, head in rule_for.items():
        grammar.set_rule(head, expression[signature])
    grammar.set_rule(start, expression[root_signature])
    if prune:
        prune_grammar(grammar)
    return grammar
