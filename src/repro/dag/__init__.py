"""Minimal DAG compression (Buneman/Grohe/Koch baseline)."""

from repro.dag.minimal_dag import (
    DagStats,
    dag_statistics,
    dag_to_grammar,
    minimal_dag_signatures,
)

__all__ = [
    "DagStats",
    "dag_statistics",
    "dag_to_grammar",
    "minimal_dag_signatures",
]
