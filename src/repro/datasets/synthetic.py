"""Synthetic structural analogs of the paper's evaluation corpora.

The six Table III files are not redistributable, so each generator below
reproduces the *structural regime* the compressors are sensitive to (see
DESIGN.md §3):

========== ======== ===== ============ ====================================
corpus     paper    dp    paper ratio  regime reproduced here
           #edges
========== ======== ===== ============ ====================================
EXI-Weblog 93 434    2      0.04%      flat list of identical records
EXI-Telec. 177 633   6      0.06%      deep records, periodic variants
NCBI       3 642 224 3     <0.01%      huge uniform list, tiny alphabet
XMark      167 864   11    13.17%      auction site, random optional parts
Medline    2 866 079 6      4.12%      citations, variable-length sublists
Treebank   2 437 665 35    20.67%      high-entropy deep parse trees
========== ======== ===== ============ ====================================

All generators are deterministic in ``seed`` and scale by an approximate
*edge count* so experiments can sweep document sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.trees.unranked import XmlNode

__all__ = [
    "CorpusSpec",
    "CORPORA",
    "make_corpus",
    "exi_weblog",
    "exi_telecomp",
    "ncbi",
    "xmark",
    "medline",
    "treebank",
]


def exi_weblog(edges: int = 4000, seed: int = 0) -> XmlNode:
    """Web-server log: one flat record shape repeated verbatim (dp 2)."""
    fields = ("ip", "user", "ts", "request", "status", "bytes")
    per_entry = 1 + len(fields)
    entries = max(1, edges // per_entry)
    root = XmlNode("log")
    for _ in range(entries):
        root.children.append(
            XmlNode("entry", [XmlNode(field) for field in fields])
        )
    return root


def ncbi(edges: int = 6000, seed: int = 0) -> XmlNode:
    """SNP list: an extremely long, perfectly uniform list (dp 3)."""
    per_record = 4  # snp(position, alleles(observed))
    records = max(1, edges // per_record)
    root = XmlNode("snps")
    for _ in range(records):
        root.children.append(
            XmlNode(
                "snp",
                [XmlNode("position"), XmlNode("alleles", [XmlNode("observed")])],
            )
        )
    return root


def exi_telecomp(edges: int = 4000, seed: int = 0) -> XmlNode:
    """Telemetry messages: deeper records with a *periodic* variant (dp 6).

    Every fourth message carries an extra diagnostics block -- regular
    enough to compress extremely well, but not a single repeated shape.
    """
    def message(with_diagnostics: bool) -> XmlNode:
        header = XmlNode(
            "header",
            [
                XmlNode("source", [XmlNode("address", [XmlNode("octets")])]),
                XmlNode("target", [XmlNode("address", [XmlNode("octets")])]),
            ],
        )
        body_children = [
            XmlNode("payload", [XmlNode("value", [XmlNode("unit")])]),
        ]
        if with_diagnostics:
            body_children.append(
                XmlNode("diagnostics", [XmlNode("code"), XmlNode("severity")])
            )
        return XmlNode("message", [header, XmlNode("body", body_children)])

    per_message = 11  # without diagnostics
    messages = max(1, edges // per_message)
    root = XmlNode("telemetry")
    for index in range(messages):
        root.children.append(message(index % 4 == 3))
    return root


def xmark(edges: int = 4000, seed: int = 0) -> XmlNode:
    """Auction-site analog of XMark: randomized optional content (dp ~11).

    Regions hold items with optional ``payment``/``shipping`` and a
    description of randomly nested ``parlist``/``listitem`` markup; people
    have optional phone/homepage; auctions reference items with variable
    bidder lists.  Moderate compressibility.
    """
    rng = random.Random(seed)
    root = XmlNode("site")
    regions = XmlNode("regions")
    people = XmlNode("people")
    auctions = XmlNode("open_auctions")
    root.children = [regions, people, auctions]
    edge_budget = [edges]

    def spend(node_edges: int) -> bool:
        edge_budget[0] -= node_edges
        return edge_budget[0] > 0

    def description(depth: int = 0) -> XmlNode:
        if depth >= 3 or rng.random() < 0.5:
            return XmlNode("text")
        items = [
            XmlNode("listitem", [description(depth + 1)])
            for _ in range(rng.randint(1, 3))
        ]
        return XmlNode("parlist", items)

    def item() -> XmlNode:
        children = [
            XmlNode("location"),
            XmlNode("quantity"),
            XmlNode("name"),
            XmlNode("description", [description()]),
        ]
        if rng.random() < 0.4:
            children.append(XmlNode("payment"))
        if rng.random() < 0.3:
            children.append(XmlNode("shipping"))
        return XmlNode("item", children)

    def person() -> XmlNode:
        children = [XmlNode("name"), XmlNode("emailaddress")]
        if rng.random() < 0.5:
            children.append(XmlNode("phone"))
        if rng.random() < 0.25:
            children.append(
                XmlNode("address",
                        [XmlNode("street"), XmlNode("city"), XmlNode("country")])
            )
        if rng.random() < 0.3:
            children.append(XmlNode("homepage"))
        return XmlNode("person", children)

    def auction() -> XmlNode:
        bidders = [
            XmlNode("bidder", [XmlNode("date"), XmlNode("increase")])
            for _ in range(rng.randint(0, 4))
        ]
        return XmlNode(
            "auction",
            [XmlNode("itemref"), XmlNode("reserve")] + bidders
            + [XmlNode("current")],
        )

    region_names = ("africa", "asia", "europe", "namerica")
    region_nodes = [XmlNode(name) for name in region_names]
    regions.children = region_nodes
    while True:
        choice = rng.random()
        if choice < 0.45:
            node = item()
            rng.choice(region_nodes).children.append(node)
        elif choice < 0.75:
            node = person()
            people.children.append(node)
        else:
            node = auction()
            auctions.children.append(node)
        if not spend(sum(1 for _ in node.preorder())):
            return root


def medline(edges: int = 4000, seed: int = 0) -> XmlNode:
    """Citation records: fixed skeleton, variable-length author/mesh lists."""
    rng = random.Random(seed)
    root = XmlNode("MedlineCitationSet")
    edge_budget = edges
    while edge_budget > 0:
        authors = [
            XmlNode("Author",
                    [XmlNode("LastName"), XmlNode("ForeName"), XmlNode("Initials")])
            for _ in range(1 + min(rng.randrange(1, 9), rng.randrange(1, 9)))
        ]
        mesh = [
            XmlNode("MeshHeading", [XmlNode("DescriptorName")])
            for _ in range(rng.randint(1, 6))
        ]
        journal = XmlNode(
            "Journal",
            [
                XmlNode("ISSN"),
                XmlNode("JournalIssue",
                        [XmlNode("Volume"), XmlNode("Issue"),
                         XmlNode("PubDate", [XmlNode("Year"), XmlNode("Month")])]),
            ],
        )
        article_children = [journal, XmlNode("ArticleTitle"),
                            XmlNode("AuthorList", authors), XmlNode("Language")]
        if rng.random() < 0.35:
            article_children.append(XmlNode("Abstract", [XmlNode("AbstractText")]))
        citation = XmlNode(
            "MedlineCitation",
            [
                XmlNode("PMID"),
                XmlNode("DateCreated",
                        [XmlNode("Year"), XmlNode("Month"), XmlNode("Day")]),
                XmlNode("Article", article_children),
                XmlNode("MeshHeadingList", mesh),
            ],
        )
        root.children.append(citation)
        edge_budget -= sum(1 for _ in citation.preorder())
    return root


#: A toy probabilistic grammar for the Treebank analog: weighted
#: productions per constituent.  Real parse trees mix strong local
#: regularity (recurring constituent shapes) with deep, varied nesting --
#: pure random shapes would be incompressible, pure templates too regular.
_TREEBANK_PCFG = {
    "S": ((("NP", "VP"), 6), (("NP", "VP", "PU"), 2), (("S", "CC", "S"), 1)),
    "NP": ((("DT", "NN"), 5), (("DT", "JJ", "NN"), 3), (("NP", "PP"), 2),
           (("PRP",), 2), (("NNP",), 2), (("NP", "SBAR"), 1)),
    "VP": ((("VBD", "NP"), 4), (("VBZ", "NP"), 3), (("VP", "PP"), 2),
           (("MD", "VP"), 1), (("VBD",), 2)),
    "PP": ((("IN", "NP"), 1),),
    "SBAR": ((("WDT", "VP"), 1), (("IN", "S"), 1)),
}

_TREEBANK_LEAVES = (
    "DT NN JJ PRP NNP VBD VBZ MD IN WDT CC PU".split()
)


def treebank(edges: int = 4000, seed: int = 0, max_depth: int = 28) -> XmlNode:
    """Parse-tree corpus: deep, varied structure (poorest compression).

    Sentences are drawn from a small probabilistic grammar, so constituent
    shapes recur (some compression is possible) while the trees remain deep
    and diverse (far less than the list-like corpora).
    """
    rng = random.Random(seed)
    root = XmlNode("corpus")
    edge_budget = edges

    def constituent(label: str, depth: int) -> XmlNode:
        productions = _TREEBANK_PCFG.get(label)
        if productions is None or depth >= max_depth:
            return XmlNode(label)
        total = sum(weight for _, weight in productions)
        pick = rng.uniform(0, total)
        for body, weight in productions:
            pick -= weight
            if pick <= 0:
                break
        return XmlNode(
            label, [constituent(child, depth + 1) for child in body]
        )

    while edge_budget > 0:
        sentence = XmlNode("sentence", [constituent("S", 1)])
        root.children.append(sentence)
        edge_budget -= sum(1 for _ in sentence.preorder())
    return root


@dataclass(frozen=True)
class CorpusSpec:
    """A corpus generator plus the paper's reference statistics."""

    name: str
    short: str
    generator: Callable[[int, int], XmlNode]
    default_edges: int
    paper_edges: int
    paper_depth: int
    paper_ratio_percent: float  # Table III's "ratio" column

    def generate(self, edges: Optional[int] = None, seed: int = 0) -> XmlNode:
        return self.generator(edges or self.default_edges, seed)


#: The evaluation corpora, in Table III order.
CORPORA: Dict[str, CorpusSpec] = {
    spec.name: spec
    for spec in (
        CorpusSpec("EXI-Weblog", "EW", exi_weblog, 4000, 93434, 2, 0.04),
        CorpusSpec("XMark", "XM", xmark, 6000, 167864, 11, 13.17),
        CorpusSpec("EXI-Telecomp", "ET", exi_telecomp, 4000, 177633, 6, 0.06),
        CorpusSpec("Treebank", "TB", treebank, 6000, 2437665, 35, 20.67),
        CorpusSpec("Medline", "MD", medline, 6000, 2866079, 6, 4.12),
        CorpusSpec("NCBI", "NC", ncbi, 6000, 3642224, 3, 0.01),
    )
}


def make_corpus(name: str, edges: Optional[int] = None, seed: int = 0) -> XmlNode:
    """Generate the named corpus analog (see :data:`CORPORA` for names)."""
    try:
        spec = CORPORA[name]
    except KeyError:
        known = ", ".join(sorted(CORPORA))
        raise KeyError(f"unknown corpus {name!r}; known: {known}") from None
    return spec.generate(edges, seed)
