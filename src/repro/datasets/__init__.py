"""Synthetic structural analogs of the paper's six corpora."""

from repro.datasets.synthetic import (
    CORPORA,
    CorpusSpec,
    exi_telecomp,
    exi_weblog,
    make_corpus,
    medline,
    ncbi,
    treebank,
    xmark,
)

__all__ = [
    "CORPORA",
    "CorpusSpec",
    "make_corpus",
    "exi_weblog",
    "exi_telecomp",
    "ncbi",
    "xmark",
    "medline",
    "treebank",
]
