"""Naive label-path evaluation on a decompressed tree.

This is the correctness oracle the grammar-native engine is
property-tested against, and the "decompress-then-walk" baseline
``benchmarks/bench_query.py`` measures the engine's speedup over: index
the plain :class:`~repro.trees.unranked.XmlNode` tree once (document
order, children lists, subtree extents), then evaluate the path
set-at-a-time with plain list scans.  Semantics are identical to
:func:`repro.query.engine.select` by construction -- both are defined
over document-order element indices.
"""

from __future__ import annotations

from typing import Dict, List

from repro.query.parser import CHILD, LabelPath, parse_path
from repro.trees.unranked import XmlNode

__all__ = ["naive_select", "naive_count"]

_VIRTUAL_ROOT = -1


def _index_tree(root: XmlNode):
    """One preorder pass: tags, children index lists, subtree extents."""
    tags: List[str] = []
    children: List[List[int]] = []
    extents: List[int] = []
    order: List[XmlNode] = []
    positions: Dict[int, int] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        positions[id(node)] = len(order)
        order.append(node)
        tags.append(node.tag)
        children.append([])
        extents.append(0)
        stack.extend(reversed(node.children))
    for position, node in enumerate(order):
        children[position] = [
            positions[id(child)] for child in node.children
        ]
    # Extents bottom-up: reversed preorder sees children before parents.
    for position in reversed(range(len(order))):
        extents[position] = 1 + sum(
            extents[child] for child in children[position]
        )
    return tags, children, extents


def naive_select(root: XmlNode, path: "LabelPath | str") -> List[int]:
    """Evaluate a label path on a plain tree; sorted element indices."""
    parsed = parse_path(path)
    tags, children, extents = _index_tree(root)
    contexts: List[int] = [_VIRTUAL_ROOT]
    for step in parsed:
        seen: set = set()
        for context in contexts:
            if step.axis == CHILD:
                candidates = [0] if context == _VIRTUAL_ROOT \
                    else children[context]
            elif context == _VIRTUAL_ROOT:
                candidates = range(len(tags))
            else:
                candidates = range(context + 1, context + extents[context])
            matches = [
                index
                for index in candidates
                if step.label is None or tags[index] == step.label
            ]
            if step.position is not None:
                matches = matches[step.position - 1:step.position]
            seen.update(matches)
        if not seen:
            return []
        contexts = sorted(seen)
    return contexts


def naive_count(root: XmlNode, path: "LabelPath | str") -> int:
    return len(naive_select(root, path))
