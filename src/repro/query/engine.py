"""Label-path evaluation directly on the grammar.

The evaluator is set-at-a-time: a context set of document-order element
indices is mapped through one :class:`~repro.query.parser.QueryStep` at a
time.  Child-axis steps ride the :class:`~repro.grammar.index.GrammarIndex`
navigation primitives (``children``/``tag_of``, one ``O(depth·rule-width)``
descent each); descendant-axis steps ride :func:`iter_matching_elements`,
a single derivation walk that skips a whole RHS/derivation subtree in O(1)
when

* it lies entirely outside the requested element range (structural index's
  cached subtree sizes), or
* its census for the queried label is zero
  (:class:`~repro.query.label_index.LabelIndex` count tables) --

so a selective query touches ``O(matches · depth)`` derivation nodes
instead of the ``O(N)`` elements a decompress-then-walk pays, which is the
whole point of querying in the compressed domain.

:func:`extract_subtree` serializes one element's subtree by *partial
derivation*: the binary-preorder window covering the element and its
first-child subtree is streamed off the grammar (again skipping derivation
subtrees before the window in O(1)), rebuilt into a ranked tree, and
decoded -- no full decompression, cost ``O(depth · rule-width + output)``.
"""

from __future__ import annotations

import threading
from itertools import islice
from typing import Dict, Iterator, List, Optional, Tuple

from repro.grammar.index import GrammarIndex, check_element_index
from repro.grammar.kernel import GrammarKernel, kernel_stream_preorder
from repro.grammar.navigation import stream_preorder
from repro.query.label_index import LabelIndex
from repro.query.parser import CHILD, LabelPath, QueryStep, parse_path
from repro.trees.binary import decode_binary
from repro.trees.node import Node
from repro.trees.symbols import Symbol
from repro.trees.unranked import XmlNode

__all__ = [
    "select",
    "count_matches",
    "iter_matching_elements",
    "extract_subtree",
    "reset_prune_counter",
    "read_prune_counter",
]

#: Per-thread census-prune accounting for the observability layer: the
#: facade resets it before a query's walk and reads it after, feeding
#: the ``repro_query_pruned_subtrees_total`` counter.  Thread-local so
#: concurrent snapshot readers never see each other's prunes; the walk
#: itself accumulates into a local int and flushes once per generator
#: close, keeping the hot loop free of thread-local traffic.
_PRUNE_STATS = threading.local()


def reset_prune_counter() -> None:
    """Zero this thread's pruned-subtree count."""
    _PRUNE_STATS.pruned = 0


def read_prune_counter() -> int:
    """Derivation subtrees census-pruned on this thread since the reset."""
    return getattr(_PRUNE_STATS, "pruned", 0)

#: The virtual context above the document root: XPath's root node.  A
#: child step from here reaches element 0; a descendant step reaches every
#: element.
_VIRTUAL_ROOT = -1


# ----------------------------------------------------------------------
# pruned derivation walks
# ----------------------------------------------------------------------
def _elems_and_matches(
    gindex: GrammarIndex,
    lindex: Optional[LabelIndex],
    head: Symbol,
    node: Node,
    env: Tuple,
    label: Optional[str],
) -> Tuple[int, int]:
    """(elements, queried-label occurrences) of an RHS subtree with
    parameters bound.  With no label test the element count doubles as the
    match count, so the zero-census prune degenerates to the (harmless)
    empty-subtree skip."""
    _nodes, elems, params = gindex.rule_table(head)[id(node)]
    if label is None:
        for param in params:
            elems += env[param - 1][3]
        return elems, elems
    count, _params = lindex.node_table(head, label)[id(node)]
    for param in params:
        binding = env[param - 1]
        elems += binding[3]
        count += binding[4]
    return elems, count


def iter_matching_elements(
    gindex: GrammarIndex,
    lindex: Optional[LabelIndex],
    lo: int,
    hi: Optional[int],
    label: Optional[str] = None,
) -> Iterator[int]:
    """Element indices in ``[lo, hi)`` whose tag equals ``label``.

    ``label=None`` matches every element (then ``lindex`` may be ``None``).
    One preorder walk of the derivation; any subtree generating only
    elements before ``lo`` -- or none of the queried label -- is skipped in
    O(1) via the cached count tables, and the walk stops at the first
    subtree starting at or past ``hi``.
    """
    if label is not None and lindex is None:
        raise ValueError("a label test needs a LabelIndex")
    total = gindex.element_count
    if hi is None or hi > total:
        hi = total
    if lo >= hi:
        return
    kernel = gindex.active_kernel()
    if kernel is not None:
        yield from _iter_matching_kernel(
            gindex, kernel, lindex, lo, hi, label
        )
        return
    yield from _iter_matching_objects(gindex, lindex, lo, hi, label)


def _iter_matching_objects(
    gindex: GrammarIndex,
    lindex: Optional[LabelIndex],
    lo: int,
    hi: int,
    label: Optional[str],
) -> Iterator[int]:
    """The object-graph walk (the ``use_kernel=False`` fallback);
    bounds already validated and clamped by the dispatcher."""
    grammar = gindex.grammar
    position = 0  # element index where the current subtree starts
    # Items: (node, env, head), or (None, skipped_elements, None) cursor
    # markers for body segments hopped over without being walked; env
    # entries are 5-tuples (node, env, head, elements, label matches) with
    # the counts precomputed at binding time so parameter lookups stay
    # O(1).
    stack: List[Tuple[Optional[Node], object, Optional[Symbol]]] = [
        (grammar.rhs(grammar.start), (), grammar.start)
    ]
    pruned = 0
    try:
        while stack:
            node, env, head = stack.pop()
            if node is None:
                position += env  # a pre-counted body-segment hop
                continue
            symbol = node.symbol
            if symbol.is_parameter:
                binding = env[symbol.param_index - 1]
                stack.append((binding[0], binding[1], binding[2]))
                continue
            elems, matches = _elems_and_matches(
                gindex, lindex, head, node, env, label
            )
            if position + elems <= lo:
                position += elems  # entirely before the window
                continue
            if position >= hi:
                return  # preorder: everything later starts further right
            if matches == 0:
                position += elems  # census prune: nothing inside
                pruned += 1
                continue
            if symbol.is_terminal:
                if not symbol.is_bottom:
                    if position >= lo and (
                        label is None or symbol.name == label
                    ):
                        yield position
                    position += 1
                for child in reversed(node.children):
                    stack.append((child, env, head))
                continue
            if (label is not None
                    and lindex.rule_label_count(symbol, label) == 0):
                # Every match below this application arrives through its
                # arguments: hop over the whole body via the cached
                # element segments (virtual preorder: seg0, arg1, seg1,
                # ..., argk, segk) and visit only the argument subtrees.
                # This is what keeps a deep nested-application chain --
                # the shape update traffic leaves sibling lists in --
                # from being re-walked link by link.
                pruned += 1
                segments = gindex.element_segments(symbol)
                for child_pos in range(len(node.children), 0, -1):
                    if segments[child_pos]:
                        stack.append((None, segments[child_pos], None))
                    stack.append((node.children[child_pos - 1], env, head))
                if segments[0]:
                    stack.append((None, segments[0], None))
                continue
            outer_env = env
            inner_env = tuple(
                (child, outer_env, head)
                + _elems_and_matches(
                    gindex, lindex, head, child, outer_env, label
                )
                for child in node.children
            )
            stack.append((grammar.rhs(symbol), inner_env, symbol))
    finally:
        if pruned:
            _PRUNE_STATS.pruned = (
                getattr(_PRUNE_STATS, "pruned", 0) + pruned
            )


def _iter_matching_kernel(
    gindex: GrammarIndex,
    kernel: GrammarKernel,
    lindex: Optional[LabelIndex],
    lo: int,
    hi: int,
    label: Optional[str],
) -> Iterator[int]:
    """Flat-array twin of the walk above (identical yields and prune
    accounting), descending per-rule :class:`RulePack` arrays instead of
    the object graph.

    Stack items are ``(pack, pos, env, lc)`` with ``lc`` the pack's
    per-position label-count array (``None`` when every element matches)
    -- fetched once per rule entry, not per node, which also folds the
    per-node ``node_table`` dict probes of the object walk into one
    C-array read.  Hop markers are ``(None, skipped, None, None)``; env
    entries ``(pack, pos, env, elements, matches, lc)``.
    """
    position = 0
    packs = kernel._packs
    root = kernel.pack(gindex.grammar.start)
    root_lc = root.label_counts(lindex, label) if label is not None else None
    # Consecutive stack items overwhelmingly share a pack (children are
    # pushed together), so the unpacked ``pack.walk`` columns are cached
    # across iterations and refreshed only when the popped pack changes.
    # ``bodies`` (the pack's zero-hop memo for this label) rides along,
    # with a walk-local cache so re-entering a pack after a callee
    # detour is a single dict probe rather than a node-table check.
    stack = [(root, 0, (), root_lc)]
    cur = None
    bodies: Optional[dict] = None
    hop_segs: dict = {}
    bodies_of: dict = {}
    pruned = 0
    try:
        while stack:
            pack, pos, env, lc = stack.pop()
            if pack is not cur:
                if pack is None:
                    position += pos  # a pre-counted body-segment hop
                    continue
                cur = pack
                (kind, sym, rank, nxt, _nn, nelems, all_params, _no,
                 sym_objs, sym_names, _enter, _target, _table) = pack.walk
                hop_segs = pack.hop_segs
                if label is not None:
                    bodies = bodies_of.get(pack)
                    if bodies is None:
                        bodies = pack.label_hop(lindex, label)[1]
                        bodies_of[pack] = bodies
            k = kind[pos]
            if k == 3:
                b = env[sym[pos] - 1]
                stack.append((b[0], b[1], b[2], b[5]))
                continue
            elems = nelems[pos]
            params = all_params[pos]
            if label is None:
                if params:
                    for p in params:
                        elems += env[p - 1][3]
                matches = elems
            else:
                matches = lc[pos]
                if params:
                    for p in params:
                        b = env[p - 1]
                        elems += b[3]
                        matches += b[4]
            if position + elems <= lo:
                position += elems  # entirely before the window
                continue
            if position >= hi:
                return  # preorder: everything later starts further right
            if matches == 0:
                position += elems  # census prune: nothing inside
                pruned += 1
                continue
            if k <= 1:
                if k == 1:
                    if position >= lo and (
                        label is None or sym_names[pos] == label
                    ):
                        yield position
                    position += 1
                r = rank[pos]
                if r == 2:
                    child = pos + 1
                    stack.append((pack, nxt[child], env, lc))
                    stack.append((pack, child, env, lc))
                elif r == 1:
                    stack.append((pack, pos + 1, env, lc))
                elif r:
                    child = pos + 1
                    kids = []
                    for _ in range(r):
                        kids.append(child)
                        child = nxt[child]
                    for c in reversed(kids):
                        stack.append((pack, c, env, lc))
                continue
            sym_obj = sym_objs[pos]
            if label is not None:
                body = bodies.get(pos)
                if body is None:
                    body = lindex.rule_label_count(sym_obj, label)
                    bodies[pos] = body
                if body == 0:
                    # Zero-census application: hop the body segments,
                    # visit only the argument subtrees (same shape as
                    # the object walk -- and deliberately *without*
                    # packing the callee, which the walk never enters).
                    # Segments and child layout are memoised per
                    # position (both structural, so pack-versioned);
                    # the leading segment is added inline instead of
                    # via a hop marker.
                    pruned += 1
                    h = hop_segs.get(pos)
                    if h is None:
                        segments = gindex.element_segments(sym_obj)
                        kids = []
                        child = pos + 1
                        for _ in range(rank[pos]):
                            kids.append(child)
                            child = nxt[child]
                        h = (segments, kids)
                        hop_segs[pos] = h
                    segments, kids = h
                    r = len(kids)
                    if r == 1:
                        s1 = segments[1]
                        if s1:
                            stack.append((None, s1, None, None))
                        stack.append((pack, kids[0], env, lc))
                    else:
                        for child_pos in range(r, 0, -1):
                            if segments[child_pos]:
                                stack.append(
                                    (None, segments[child_pos], None, None)
                                )
                            stack.append((pack, kids[child_pos - 1], env, lc))
                    position += segments[0]
                    continue
            callee = packs.get(sym_obj)
            if callee is None:
                callee = kernel.pack(sym_obj)
            callee_lc = (
                callee.label_counts(lindex, label)
                if label is not None else None
            )
            r = rank[pos]
            if r:
                outer_env = env
                bindings = []
                child = pos + 1
                for _ in range(r):
                    ce = nelems[child]
                    if label is None:
                        pp = all_params[child]
                        if pp:
                            for p in pp:
                                ce += outer_env[p - 1][3]
                        cm = ce
                    else:
                        cm = lc[child]
                        pp = all_params[child]
                        if pp:
                            for p in pp:
                                b = outer_env[p - 1]
                                ce += b[3]
                                cm += b[4]
                    bindings.append((pack, child, outer_env, ce, cm, lc))
                    child = nxt[child]
                inner_env: Tuple = tuple(bindings)
            else:
                inner_env = ()
            stack.append((callee, 0, inner_env, callee_lc))
    finally:
        if pruned:
            _PRUNE_STATS.pruned = (
                getattr(_PRUNE_STATS, "pruned", 0) + pruned
            )


def _iter_window_symbols(
    gindex: GrammarIndex, lo: int, hi: int
) -> Iterator[Symbol]:
    """Terminal symbols of the *binary preorder* node window ``[lo, hi)``.

    The node-count analog of the element walk above: subtrees before the
    window are skipped in O(1), the walk returns at the first subtree
    starting past ``hi``.  This is the partial derivation behind
    :func:`extract_subtree`.
    """
    if lo >= hi:
        return
    kernel = gindex.active_kernel()
    if kernel is not None:
        yield from _iter_window_kernel(gindex, kernel, lo, hi)
        return
    grammar = gindex.grammar
    position = 0
    # Items: (node, env, head); env entries are (node, env, head, nodes).
    stack: List[Tuple[Node, Tuple, Symbol]] = [
        (grammar.rhs(grammar.start), (), grammar.start)
    ]

    def subtree_nodes(head: Symbol, node: Node, env: Tuple) -> int:
        nodes, _elems, params = gindex.rule_table(head)[id(node)]
        for param in params:
            nodes += env[param - 1][3]
        return nodes

    while stack:
        node, env, head = stack.pop()
        symbol = node.symbol
        if symbol.is_parameter:
            binding = env[symbol.param_index - 1]
            stack.append((binding[0], binding[1], binding[2]))
            continue
        nodes = subtree_nodes(head, node, env)
        if position + nodes <= lo:
            position += nodes
            continue
        if position >= hi:
            return
        if symbol.is_terminal:
            if position >= lo:
                yield symbol
            position += 1
            for child in reversed(node.children):
                stack.append((child, env, head))
        else:
            outer_env = env
            inner_env = tuple(
                (child, outer_env, head)
                + (subtree_nodes(head, child, outer_env),)
                for child in node.children
            )
            stack.append((grammar.rhs(symbol), inner_env, symbol))


def _iter_window_kernel(
    gindex: GrammarIndex, kernel: GrammarKernel, lo: int, hi: int
) -> Iterator[Symbol]:
    """Flat-array twin of the node-window walk above.  Env entries are
    ``(pack, pos, env, nodes)``."""
    position = 0
    packs = kernel._packs
    stack = [(kernel.pack(gindex.grammar.start), 0, ())]
    cur = None
    while stack:
        pack, pos, env = stack.pop()
        if pack is not cur:
            cur = pack
            (kind, sym, rank, nxt, nnodes, _ne, all_params, _no,
             sym_objs, _names, _enter, _target, _table) = pack.walk
        k = kind[pos]
        if k == 3:
            b = env[sym[pos] - 1]
            stack.append((b[0], b[1], b[2]))
            continue
        nodes = nnodes[pos]
        pp = all_params[pos]
        if pp:
            for p in pp:
                nodes += env[p - 1][3]
        if position + nodes <= lo:
            position += nodes
            continue
        if position >= hi:
            return
        if k <= 1:
            if position >= lo:
                yield sym_objs[pos]
            position += 1
            r = rank[pos]
            if r == 2:
                child = pos + 1
                stack.append((pack, nxt[child], env))
                stack.append((pack, child, env))
            elif r == 1:
                stack.append((pack, pos + 1, env))
            elif r:
                child = pos + 1
                kids = []
                for _ in range(r):
                    kids.append(child)
                    child = nxt[child]
                for c in reversed(kids):
                    stack.append((pack, c, env))
        else:
            sobj = sym_objs[pos]
            callee = packs.get(sobj)
            if callee is None:
                callee = kernel.pack(sobj)
            r = rank[pos]
            if r:
                outer_env = env
                bindings = []
                child = pos + 1
                for _ in range(r):
                    cn = nnodes[child]
                    pp = all_params[child]
                    if pp:
                        for p in pp:
                            cn += outer_env[p - 1][3]
                    bindings.append((pack, child, outer_env, cn))
                    child = nxt[child]
                inner_env: Tuple = tuple(bindings)
            else:
                inner_env = ()
            stack.append((callee, 0, inner_env))


# ----------------------------------------------------------------------
# subtree extraction (partial derivation)
# ----------------------------------------------------------------------
def extract_subtree(gindex: GrammarIndex, element_index: int) -> XmlNode:
    """The unranked subtree rooted at an element, by partial derivation.

    Streams exactly the binary-preorder window covering the element and
    its first-child subtree (element + descendants in the FCNS encoding),
    rebuilds the ranked tree from the symbol ranks, and decodes it.  The
    element's next-sibling slot lies outside the window by construction;
    the reconstruction caps it (and nothing else) with ``⊥``.

    The document root (element 0) short-circuits: its subtree *is* the
    whole document, so there is no window to locate and nothing to skip
    -- the symbols come straight off :func:`stream_preorder` (constant
    work per node, no count-table lookups) instead of the full-window
    walk, which pays subtree-size arithmetic per streamed symbol just to
    skip nothing.
    """
    check_element_index(element_index)
    bottom = gindex.grammar.alphabet.bottom()
    if element_index == 0:
        if gindex.element_count == 0:  # pragma: no cover - no document
            raise IndexError("element index 0 out of range (0 elements)")
        kernel = gindex.active_kernel()
        if kernel is not None:
            return decode_binary(
                _rebuild_binary(kernel_stream_preorder(kernel), bottom)
            )
        return decode_binary(
            _rebuild_binary(stream_preorder(gindex.grammar), bottom)
        )
    start = gindex.preorder_of_element(element_index)
    terminator = gindex.end_of_children_position(element_index)
    symbols = _iter_window_symbols(gindex, start, terminator + 1)
    return decode_binary(_rebuild_binary(symbols, bottom))


def _rebuild_binary(symbols: Iterator[Symbol], bottom: Symbol) -> Node:
    """Rebuild a ranked tree from a preorder symbol stream.

    An exhausted stream caps the remaining open slot with ``⊥`` -- for a
    window this is the target's next-sibling slot, which lies outside the
    window by construction (and nothing else); for a whole-document
    stream it never triggers.
    """
    root: Optional[Node] = None
    # Frames: [symbol, collected children]; a frame closes when its child
    # list reaches the symbol's rank.
    frames: List[List[object]] = [[next(symbols), []]]
    while frames:
        symbol, kids = frames[-1]
        if len(kids) == symbol.rank:
            frames.pop()
            node = Node(symbol, kids)
            if frames:
                frames[-1][1].append(node)
            else:
                root = node
            continue
        next_symbol = next(symbols, None)
        if next_symbol is None:
            next_symbol = bottom  # the capped next-sibling slot
        frames.append([next_symbol, []])
    assert root is not None
    return root


# ----------------------------------------------------------------------
# path evaluation
# ----------------------------------------------------------------------
def _step_matches(
    gindex: GrammarIndex,
    lindex: Optional[LabelIndex],
    context: int,
    step: QueryStep,
) -> Iterator[int]:
    """Document-order matches of one step from one context element."""
    label = step.label
    if step.axis == CHILD:
        if context == _VIRTUAL_ROOT:
            if label is None or gindex.tag_of(0) == label:
                yield 0
            return
        for child, tag in gindex.children_with_tags(context):
            if label is None or tag == label:
                yield child
        return
    if context == _VIRTUAL_ROOT:
        lo, hi = 0, None  # descendants of the root node: every element
    else:
        lo = context + 1
        hi = context + gindex.element_subtree_extent(context)
    yield from iter_matching_elements(gindex, lindex, lo, hi, label)


def select(
    gindex: GrammarIndex,
    lindex: Optional[LabelIndex],
    path: "LabelPath | str",
) -> List[int]:
    """Evaluate a label path; returns sorted unique element indices.

    The results live in the same document-order coordinate space as every
    update operation, so they can be handed directly to
    ``rename``/``delete``/``apply_batch`` (subject to the usual sequential
    -semantics shifting between operations).
    """
    parsed = parse_path(path)
    contexts: List[int] = [_VIRTUAL_ROOT]
    for step in parsed:
        seen: set = set()
        for context in contexts:
            matches = _step_matches(gindex, lindex, context, step)
            if step.position is not None:
                # The n-th match of this context, document order.
                matches = islice(
                    matches, step.position - 1, step.position
                )
            seen.update(matches)
        if not seen:
            return []
        contexts = sorted(seen)
    return contexts


def count_matches(
    gindex: GrammarIndex,
    lindex: Optional[LabelIndex],
    path: "LabelPath | str",
) -> int:
    """Number of elements a path selects.

    ``//label`` -- one descendant step from the root, no positional
    predicate -- is answered in O(1) from the label index's start-rule
    census; everything else falls back to full evaluation.
    """
    parsed = parse_path(path)
    if (
        len(parsed) == 1
        and parsed.steps[0].axis != CHILD
        and parsed.steps[0].position is None
        and lindex is not None
    ):
        label = parsed.steps[0].label
        if label is not None:
            return lindex.document_label_count(label)
        return gindex.element_count
    return len(select(gindex, lindex, parsed))
