"""Grammar-native query engine: label paths evaluated on the grammar.

This package is the read-side counterpart of :mod:`repro.updates`: where
the update layer mutates the compressed document without decompressing it,
the query layer *navigates* it without decompressing it, following Maneth
& Sebastian's observation that grammar-compressed XML supports fast
structural navigation directly on the SLP.

* :mod:`repro.query.parser` -- label-path expressions (``/a/b//c`` style:
  child and descendant axes, label or ``*`` tests, optional positional
  predicates),
* :mod:`repro.query.label_index` -- :class:`LabelIndex`, per-rule
  label-census tables maintained through the grammar observer channel,
  the third persistent index beside :class:`~repro.grammar.index.GrammarIndex`
  and :class:`~repro.core.occurrence_index.GrammarOccurrenceIndex`,
* :mod:`repro.query.engine` -- set-at-a-time evaluation over element
  indices, with derivation subtrees skipped in O(1) when their label
  census is zero, plus subtree extraction by partial derivation,
* :mod:`repro.query.naive` -- the decompressed-tree evaluation the engine
  is property-tested against.

Results are document-order element indices -- the same coordinate space
every update operation of :class:`repro.api.CompressedXml` accepts, so a
``select`` feeds directly into a batch of updates.
"""

from repro.query.engine import (
    count_matches,
    extract_subtree,
    iter_matching_elements,
    select,
)
from repro.query.label_index import LabelIndex
from repro.query.naive import naive_select
from repro.query.parser import LabelPath, QueryStep, QuerySyntaxError, parse_path

__all__ = [
    "LabelPath",
    "QueryStep",
    "QuerySyntaxError",
    "parse_path",
    "LabelIndex",
    "select",
    "count_matches",
    "extract_subtree",
    "iter_matching_elements",
    "naive_select",
]
