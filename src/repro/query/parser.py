"""Label-path expressions: the query engine's input language.

The language is the structural core of XPath, restricted to what the
paper's structure-only documents can answer::

    path      := step+
    step      := axis test predicate?
    axis      := '/'            (child)
               | '//'           (descendant)
    test      := NAME | '*'
    predicate := '[' INT ']'    (1-based position among the step's matches
                                 *per context element*, document order)

Examples: ``/log``, ``/log/entry``, ``//status``, ``/log//request``,
``/log/entry[3]/ip``, ``//entry/*[2]``.

Paths are absolute: evaluation starts at a virtual node *above* the
document root (as XPath's root node sits above the document element), so
``/a`` matches the root element only if it is labeled ``a``, and a
leading ``//`` reaches every element including the root.  Positional
predicates count matches per context element in document order --
``/log/entry[3]`` is the third ``entry`` child of each ``log``.

The grammar is deliberately tiny and hand-parsed; it needs no tokenizer
beyond a regular expression per step.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

__all__ = ["QuerySyntaxError", "QueryStep", "LabelPath", "parse_path"]

CHILD = "child"
DESCENDANT = "descendant"

#: Tag names accepted by the parser -- the same shape ``xml_io`` accepts.
_STEP = re.compile(
    r"(?P<axis>//|/)"
    r"(?P<test>\*|[A-Za-z_][\w.\-:]*)"
    r"(?:\[(?P<position>\d+)\])?"
)


class QuerySyntaxError(ValueError):
    """Raised for a malformed label-path expression."""


class QueryStep:
    """One location step: axis, label test, optional positional predicate.

    ``label`` is ``None`` for the wildcard ``*``; ``position`` is the
    1-based positional predicate or ``None``.
    """

    __slots__ = ("axis", "label", "position")

    def __init__(
        self, axis: str, label: Optional[str], position: Optional[int] = None
    ) -> None:
        if axis not in (CHILD, DESCENDANT):
            raise QuerySyntaxError(f"unknown axis {axis!r}")
        if position is not None and position < 1:
            raise QuerySyntaxError(
                f"positional predicate must be >= 1, got [{position}]"
            )
        self.axis = axis
        self.label = label
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        text = "//" if self.axis == DESCENDANT else "/"
        text += self.label if self.label is not None else "*"
        if self.position is not None:
            text += f"[{self.position}]"
        return f"<QueryStep {text}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QueryStep)
            and self.axis == other.axis
            and self.label == other.label
            and self.position == other.position
        )

    def __hash__(self) -> int:
        return hash((self.axis, self.label, self.position))


class LabelPath:
    """A parsed path: an immutable sequence of :class:`QueryStep`."""

    __slots__ = ("steps", "text")

    def __init__(self, steps: List[QueryStep], text: str) -> None:
        if not steps:
            raise QuerySyntaxError("a path needs at least one step")
        self.steps: Tuple[QueryStep, ...] = tuple(steps)
        self.text = text

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LabelPath {self.text!r}>"


def parse_path(text: str) -> LabelPath:
    """Parse a label-path expression; raises :class:`QuerySyntaxError`.

    Accepts a :class:`LabelPath` unchanged, so API entry points can take
    either the text or a pre-parsed path.
    """
    if isinstance(text, LabelPath):
        return text
    if not isinstance(text, str):
        raise QuerySyntaxError(f"path must be a string, got {text!r}")
    stripped = text.strip()
    if not stripped:
        raise QuerySyntaxError("empty path")
    if not stripped.startswith("/"):
        raise QuerySyntaxError(
            f"path must be absolute (start with '/' or '//'): {text!r}"
        )
    steps: List[QueryStep] = []
    position = 0
    while position < len(stripped):
        match = _STEP.match(stripped, position)
        if match is None:
            raise QuerySyntaxError(
                f"malformed step at offset {position} in {text!r}"
            )
        axis = DESCENDANT if match.group("axis") == "//" else CHILD
        test = match.group("test")
        label = None if test == "*" else test
        predicate = match.group("position")
        steps.append(
            QueryStep(
                axis, label, int(predicate) if predicate is not None else None
            )
        )
        position = match.end()
    return LabelPath(steps, stripped)
