"""Pinned, immutable reader snapshots of a compressed document.

:meth:`repro.api.CompressedXml.snapshot` pins the grammar's current
epoch (:meth:`repro.grammar.slcf.Grammar.pin`) and hands back a
:class:`SnapshotView`: a read-only document facade whose every query --
``select``, ``count``, ``tags``, ``subtree_xml``, the navigation axes,
``to_xml`` -- evaluates against the grammar *as of the pin*, no matter
how many updates, batches, reshards, or recompressions writers commit
afterwards.

The view never touches a live mutable rule body.  It resolves rules
through :meth:`Grammar.rule_at`, which serves either the copy-on-write
overlay (the pristine pre-image preserved before the first
post-pin rewrite of the rule) or a lazily made private copy of the
still-unchanged live body.  Because those resolved bodies are private
and stable, the view owns its *own* structural and label indexes
(``register=False`` -- no observer traffic ever reaches them), so a
writer-side eviction, wholesale reset, or reshard can never free tables
the pinned epoch still needs.

Views are cheap to create (no eager copying: one pin, two empty
indexes, a handful of captured counters) and must be closed --
``close()``, a ``with`` block, or garbage collection -- to let the
epoch's overlay be reclaimed.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from repro.grammar.index import GrammarIndex
from repro.grammar.slcf import Grammar, GrammarError
from repro.query.engine import count_matches, extract_subtree
from repro.query.engine import select as engine_select
from repro.query.label_index import LabelIndex
from repro.trees.binary import decode_binary
from repro.trees.node import Node
from repro.trees.symbols import Symbol
from repro.trees.xml_io import serialize_xml

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api import CompressedXml
    from repro.storage.snapshot import DocumentState

__all__ = ["SnapshotView"]


class _FrozenRules:
    """Mapping facade over the rules of one pinned epoch."""

    __slots__ = ("_grammar", "_epoch")

    def __init__(self, grammar: Grammar, epoch: int) -> None:
        self._grammar = grammar
        self._epoch = epoch

    def __getitem__(self, head: Symbol) -> Node:
        try:
            return self._grammar.rule_at(self._epoch, head)
        except GrammarError:
            raise KeyError(head) from None

    def get(self, head: Symbol, default=None):
        if not self._grammar.has_rule_at(self._epoch, head):
            return default
        return self._grammar.rule_at(self._epoch, head)

    def __contains__(self, head: Symbol) -> bool:
        return self._grammar.has_rule_at(self._epoch, head)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._grammar.heads_at(self._epoch))

    def __len__(self) -> int:
        return len(self._grammar.heads_at(self._epoch))

    def keys(self) -> List[Symbol]:
        return self._grammar.heads_at(self._epoch)

    def values(self):
        for head in self._grammar.heads_at(self._epoch):
            yield self[head]

    def items(self):
        for head in self._grammar.heads_at(self._epoch):
            yield head, self[head]


class _FrozenGrammar:
    """Read-only duck-type of :class:`Grammar` at one pinned epoch.

    Provides exactly the surface the read path uses -- ``rhs``,
    ``has_rule``, ``start``, ``alphabet``, the ``rules`` mapping,
    iteration -- plus no-op observer registration so index classes can
    be constructed against it.  Anything that would mutate is absent by
    design.
    """

    __slots__ = ("_grammar", "_epoch", "alphabet", "start", "rules")

    def __init__(self, grammar: Grammar, epoch: int) -> None:
        self._grammar = grammar
        self._epoch = epoch
        self.alphabet = grammar.alphabet
        self.start = grammar.start
        self.rules = _FrozenRules(grammar, epoch)

    def rhs(self, head: Symbol) -> Node:
        return self._grammar.rule_at(self._epoch, head)

    def has_rule(self, head: Symbol) -> bool:
        return self._grammar.has_rule_at(self._epoch, head)

    def nonterminals(self) -> List[Symbol]:
        return self._grammar.heads_at(self._epoch)

    def __len__(self) -> int:
        return len(self._grammar.heads_at(self._epoch))

    def __iter__(self):
        return iter(self.rules.items())

    def register_observer(self, observer: object) -> None:
        """No-op: a frozen epoch never changes, so there is nothing to
        observe (views build their indexes with ``register=False``
        anyway)."""

    def unregister_observer(self, observer: object) -> None:
        """No-op, see :meth:`register_observer`."""


class SnapshotView:
    """An immutable view of a :class:`~repro.api.CompressedXml` at the
    epoch that was current when :meth:`~repro.api.CompressedXml.snapshot`
    was called.

    Read-only counterpart of the document facade: the query, navigation,
    and serialization surface is identical, and every answer reflects
    the pinned state.  Close the view (``with doc.snapshot() as view:``)
    to release the pin.
    """

    def __init__(self, doc: "CompressedXml") -> None:
        # Constructed by CompressedXml.snapshot() under the document
        # write lock: nothing can mutate between reading the counters
        # below and pinning the epoch, so they all describe one state.
        grammar = doc.grammar
        self._grammar = grammar
        self.epoch = grammar.pin()
        self._frozen = _FrozenGrammar(grammar, self.epoch)
        # The view's private index inherits the document's kernel policy.
        # Frozen grammars expose no ``_reader_pins``, so the view's
        # descents stay kernel-served while the *live* document falls
        # back to object descents (whose ``rhs()`` reads are the CoW
        # preservation points) for as long as this pin exists -- packs
        # over the frozen private bodies can never be invalidated, the
        # flat-table analog of the pinned copy-on-write rule tables.
        self._index = GrammarIndex(
            self._frozen, register=False, use_kernel=doc._use_kernel
        )
        self._label_index: Optional[LabelIndex] = None
        self._kin = doc._kin
        self._element_count = doc.element_count
        self._compressed_size = doc.compressed_size
        self._baselined = doc._baselined
        self._last_compressed_size = doc._last_compressed_size
        self._dirty_rules = list(doc._dirty.changed)
        self._shard_state = None
        if doc.shard_manager is not None:
            self._shard_state = doc.shard_manager.export_state()
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the pin (idempotent).  The epoch's copy-on-write
        overlay is reclaimed when its last view closes."""
        if not self._closed:
            self._closed = True
            self._grammar.unpin(self.epoch)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SnapshotView":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _require_open(self) -> None:
        if self._closed:
            raise ValueError("snapshot view is closed")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def element_count(self) -> int:
        return self._element_count

    @property
    def edge_count(self) -> int:
        return self._element_count - 1

    @property
    def compressed_size(self) -> int:
        return self._compressed_size

    @property
    def compression_ratio(self) -> float:
        edges = self.edge_count
        if edges == 0:
            return 1.0
        return self._compressed_size / edges

    def tags(
        self, start: Optional[int] = None, stop: Optional[int] = None
    ) -> Iterator[str]:
        """Element tags in document order, as of the pinned epoch."""
        self._require_open()
        for symbol in self._index.iter_element_symbols(
            0 if start is None else start, stop
        ):
            yield symbol.name

    def tag_of(self, element_index: int) -> str:
        self._require_open()
        return self._index.tag_of(element_index)

    # ------------------------------------------------------------------
    # navigation axes
    # ------------------------------------------------------------------
    def parent_of(self, element_index: int) -> Optional[int]:
        self._require_open()
        return self._index.parent_of(element_index)

    def depth_of(self, element_index: int) -> int:
        self._require_open()
        return self._index.depth_of(element_index)

    def first_child(self, element_index: int) -> Optional[int]:
        self._require_open()
        return self._index.first_child(element_index)

    def next_sibling(self, element_index: int) -> Optional[int]:
        self._require_open()
        return self._index.next_sibling(element_index)

    def children(self, element_index: int) -> Iterator[int]:
        self._require_open()
        return self._index.children(element_index)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def label_index(self) -> LabelIndex:
        if self._label_index is None:
            self._label_index = LabelIndex(self._frozen, register=False)
        return self._label_index

    def select(self, path: str) -> List[int]:
        """Label-path matches at the pinned epoch (same dialect as
        :meth:`CompressedXml.select`)."""
        self._require_open()
        return engine_select(self._index, self.label_index, path)

    def count(self, path: str) -> int:
        self._require_open()
        return count_matches(self._index, self.label_index, path)

    def subtree_xml(
        self, element_index: int, indent: Optional[int] = None
    ) -> str:
        self._require_open()
        return serialize_xml(
            extract_subtree(self._index, element_index), indent=indent
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_document(self, budget: int = 50_000_000):
        from repro.grammar.derivation import expand

        self._require_open()
        return decode_binary(expand(self._frozen, budget=budget))

    def to_xml(
        self, indent: Optional[int] = None, budget: int = 50_000_000
    ) -> str:
        return serialize_xml(self.to_document(budget=budget), indent=indent)

    def export_state(self) -> "DocumentState":
        """The pinned state in :class:`DocumentState` form.

        This is what lets a checkpoint serialize without blocking
        writers: the state is assembled from the frozen bodies (aliased,
        not copied -- they are immutable by contract), so a concurrent
        commit stream never shows through.
        """
        from repro.storage.snapshot import DocumentState, ShardState

        self._require_open()
        grammar = self._grammar
        frozen = Grammar(grammar.alphabet, grammar.start)
        for head in grammar.heads_at(self.epoch):
            dict.__setitem__(
                frozen.rules, head, grammar.rule_at(self.epoch, head)
            )
        shard = None
        if self._shard_state is not None:
            width, prefix, parents = self._shard_state
            shard = ShardState(width=width, prefix=prefix,
                               parents=dict(parents))
        index = GrammarIndex(frozen, register=False)
        label_index = LabelIndex(frozen, register=False)
        return DocumentState(
            grammar=frozen,
            kin=self._kin,
            element_count=self._element_count,
            baselined=self._baselined,
            last_compressed_size=self._last_compressed_size,
            dirty_rules=[
                head for head in self._dirty_rules
                if frozen.has_rule(head)
            ],
            shard=shard,
            segments=index.export_segments(),
            label_counts=label_index.export_counts(),
        )

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"epoch {self.epoch}"
        return (
            f"<SnapshotView {state}, {self._element_count} elements, "
            f"grammar size {self._compressed_size}>"
        )
