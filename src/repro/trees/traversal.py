"""Iterative traversals and node addressing for ranked trees.

Nodes are addressed by their 0-based *preorder index*, the same convention
the update operations (Section V-C) use to designate update positions.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.trees.node import Node

__all__ = [
    "preorder",
    "postorder",
    "preorder_with_index",
    "node_at_preorder",
    "preorder_index_of",
    "preorder_labels",
    "leaves",
    "ancestors",
    "find_first",
]


def preorder(root: Node) -> Iterator[Node]:
    """Preorder (node before children) traversal."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def postorder(root: Node) -> Iterator[Node]:
    """Postorder (children before node) traversal, iteratively."""
    # Classic two-stack postorder: reverse of a right-to-left preorder.
    stack = [root]
    output: List[Node] = []
    while stack:
        node = stack.pop()
        output.append(node)
        stack.extend(node.children)
    return reversed(output)


def preorder_with_index(root: Node) -> Iterator[Tuple[int, Node]]:
    """Preorder traversal paired with 0-based preorder indices."""
    for index, node in enumerate(preorder(root)):
        yield index, node


def node_at_preorder(root: Node, index: int) -> Node:
    """Return the node with the given 0-based preorder index.

    Raises :class:`IndexError` if the tree has fewer nodes.
    """
    if index < 0:
        raise IndexError(f"preorder index must be >= 0, got {index}")
    for i, node in preorder_with_index(root):
        if i == index:
            return node
    raise IndexError(f"preorder index {index} out of range")


def preorder_index_of(root: Node, target: Node) -> int:
    """Inverse of :func:`node_at_preorder`; raises ValueError if absent."""
    for i, node in preorder_with_index(root):
        if node is target:
            return i
    raise ValueError("target node is not in this tree")


def preorder_labels(root: Node) -> List[str]:
    """List of symbol names in preorder; a cheap structural fingerprint."""
    return [node.symbol.name for node in preorder(root)]


def leaves(root: Node) -> Iterator[Node]:
    """All leaves (rank-0 nodes) in left-to-right order."""
    for node in preorder(root):
        if not node.children:
            yield node


def ancestors(node: Node) -> Iterator[Node]:
    """Proper ancestors from parent to root."""
    current = node.parent
    while current is not None:
        yield current
        current = current.parent


def find_first(root: Node, predicate: Callable[[Node], bool]) -> Optional[Node]:
    """First node in preorder satisfying ``predicate``, or ``None``."""
    for node in preorder(root):
        if predicate(node):
            return node
    return None
