"""Building ranked trees from term notation.

The paper writes trees as terms like ``f(a(⊥, a(y1, y2)), ⊥)``.  This module
parses that notation (with ``#`` standing for ``⊥``) against an
:class:`~repro.trees.symbols.Alphabet`, inferring terminal ranks from use.
It is used pervasively by the tests and the grammar text format.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.trees.node import Node
from repro.trees.symbols import Alphabet, Symbol, parameter_symbol

__all__ = ["parse_term", "TermSyntaxError"]


class TermSyntaxError(ValueError):
    """Raised when a term string is malformed."""


_PUNCT = {"(", ")", ","}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(ch)
            i += 1
            continue
        j = i
        while j < n and not text[j].isspace() and text[j] not in _PUNCT:
            j += 1
        tokens.append(text[i:j])
        i = j
    return tokens


def _is_parameter_name(name: str) -> bool:
    return (
        len(name) >= 2
        and name[0] == "y"
        and name[1:].isdigit()
        and int(name[1:]) >= 1
    )


def parse_term(
    text: str,
    alphabet: Alphabet,
    nonterminal_names: Optional[frozenset] = None,
) -> Node:
    """Parse a term such as ``f(a(#,#),y1)`` into a :class:`Node` tree.

    Names listed in ``nonterminal_names`` (or already interned as
    nonterminals) become nonterminal symbols; ``y<k>`` become parameters;
    everything else becomes a terminal.  Ranks are inferred from the number
    of arguments and must be consistent with prior uses in the alphabet.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise TermSyntaxError("empty term")
    pos = 0

    def peek() -> Optional[str]:
        return tokens[pos] if pos < len(tokens) else None

    def take() -> str:
        nonlocal pos
        if pos >= len(tokens):
            raise TermSyntaxError(f"unexpected end of term in {text!r}")
        token = tokens[pos]
        pos += 1
        return token

    def expect(token: str) -> None:
        got = take()
        if got != token:
            raise TermSyntaxError(f"expected {token!r}, got {got!r} in {text!r}")

    def resolve(name: str, rank: int) -> Symbol:
        if _is_parameter_name(name):
            if rank != 0:
                raise TermSyntaxError(f"parameter {name} cannot have children")
            return parameter_symbol(int(name[1:]))
        existing = alphabet.get(name)
        if existing is not None:
            if existing.rank != rank:
                raise TermSyntaxError(
                    f"symbol {name!r} used with rank {rank}, "
                    f"previously rank {existing.rank}"
                )
            return existing
        if nonterminal_names and name in nonterminal_names:
            return alphabet.nonterminal(name, rank)
        return alphabet.terminal(name, rank)

    def parse_one() -> Node:
        name = take()
        if name in _PUNCT:
            raise TermSyntaxError(f"unexpected {name!r} in {text!r}")
        children: List[Node] = []
        if peek() == "(":
            take()
            if peek() == ")":
                raise TermSyntaxError(f"empty argument list after {name!r}")
            children.append(parse_one())
            while peek() == ",":
                take()
                children.append(parse_one())
            expect(")")
        symbol = resolve(name, len(children))
        return Node(symbol, children)

    root = parse_one()
    if pos != len(tokens):
        raise TermSyntaxError(
            f"trailing tokens {tokens[pos:]!r} after term in {text!r}"
        )
    return root
