"""Unranked XML document trees (structure only).

The paper evaluates on *structure-only* XML: element nodes with their
ordering, no text, attributes, comments, or processing instructions.
:class:`XmlNode` models exactly that.  The ranked binary view used by the
compressors lives in :mod:`repro.trees.binary`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["XmlNode", "xml_equal", "xml_node_count", "xml_edge_count", "xml_depth"]


class XmlNode:
    """An element node of an unranked ordered tree."""

    __slots__ = ("tag", "children")

    def __init__(self, tag: str, children: Optional[List["XmlNode"]] = None):
        if not tag:
            raise ValueError("element tag must be non-empty")
        self.tag = tag
        self.children: List[XmlNode] = list(children) if children else []

    def append(self, child: "XmlNode") -> "XmlNode":
        self.children.append(child)
        return child

    def preorder(self) -> Iterator["XmlNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:
        return f"<XmlNode {self.tag} ({len(self.children)} children)>"


def xml_equal(a: XmlNode, b: XmlNode) -> bool:
    """Structural equality of two unranked trees."""
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x.tag != y.tag or len(x.children) != len(y.children):
            return False
        stack.extend(zip(x.children, y.children))
    return True


def xml_node_count(root: XmlNode) -> int:
    """Number of element nodes."""
    return sum(1 for _ in root.preorder())


def xml_edge_count(root: XmlNode) -> int:
    """Number of edges of the unranked tree -- Table III's ``#edges``."""
    return xml_node_count(root) - 1


def xml_depth(root: XmlNode) -> int:
    """Depth of the document: a lone root has depth 0 (Table III's ``dp``)."""
    best = 0
    stack: List[Tuple[XmlNode, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if depth > best:
            best = depth
        for child in node.children:
            stack.append((child, depth + 1))
    return best
