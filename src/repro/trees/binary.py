"""First-child / next-sibling binary encoding (Figure 1 of the paper).

An unranked XML tree is encoded as a *binary* ranked tree: every element
label becomes a rank-2 terminal whose first child encodes the element's
first child and whose second child encodes its next sibling; absent
children/siblings are the rank-0 empty node ``⊥`` (spelled ``#`` here).

The root element's encoding keeps an explicit ``⊥`` next-sibling, exactly as
in Figure 1 (``f(a(...), ⊥)``), so decoding is total on well-formed
encodings.  Sibling *sequences* (forests) are supported for update fragments.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.trees.node import Node
from repro.trees.symbols import Alphabet, Symbol
from repro.trees.unranked import XmlNode

__all__ = [
    "encode_binary",
    "encode_forest",
    "decode_binary",
    "decode_forest",
    "BinaryEncodingError",
]


class BinaryEncodingError(ValueError):
    """Raised when decoding a tree that is not a valid binary encoding."""


def _element_symbol(alphabet: Alphabet, tag: str) -> Symbol:
    return alphabet.terminal(tag, 2)


def encode_forest(siblings: List[XmlNode], alphabet: Alphabet) -> Node:
    """Encode a sibling sequence; an empty sequence encodes to ``⊥``.

    The encoding is built iteratively (explicit stack) because real XML can
    nest or chain deeply.
    """
    bottom = alphabet.bottom()
    # Work items: (xml_node, parent_binary_node, slot_index 1|2).  A None
    # parent installs the result as the overall root.
    root_holder: List[Optional[Node]] = [None]

    def install(node: Node, parent: Optional[Node], slot: int) -> None:
        if parent is None:
            root_holder[0] = node
        else:
            parent.set_child(slot, node)

    stack: List[Tuple[List[XmlNode], int, Optional[Node], int]] = [
        (siblings, 0, None, 0)
    ]
    while stack:
        seq, index, parent, slot = stack.pop()
        if index >= len(seq):
            install(Node(bottom), parent, slot)
            continue
        element = seq[index]
        binary = Node(
            _element_symbol(alphabet, element.tag),
            [Node(bottom), Node(bottom)],
        )
        install(binary, parent, slot)
        # Order on the stack does not matter; each work item carries its
        # destination slot.
        stack.append((seq, index + 1, binary, 2))
        stack.append((element.children, 0, binary, 1))
    result = root_holder[0]
    assert result is not None
    return result


def encode_binary(root: XmlNode, alphabet: Alphabet) -> Node:
    """Encode a single-rooted document; the result's 2nd child is ``⊥``."""
    return encode_forest([root], alphabet)


def decode_forest(root: Node) -> List[XmlNode]:
    """Decode a binary encoding back into a sibling sequence.

    Raises :class:`BinaryEncodingError` on nonterminals, parameters, or
    terminals whose rank is neither 0 (``⊥``) nor 2.
    """
    results: List[XmlNode] = []
    # Work items: (binary_node, xml_parent, append_to_results?).  Children
    # lists are filled in document order by processing next-siblings after
    # first-children via an explicit continuation stack.
    stack: List[Tuple[Node, Optional[XmlNode]]] = [(root, None)]
    while stack:
        node, xml_parent = stack.pop()
        symbol = node.symbol
        if symbol.is_bottom:
            continue
        if not symbol.is_terminal or symbol.rank != 2:
            raise BinaryEncodingError(
                f"node {symbol!r} is not a valid binary-encoding terminal"
            )
        element = XmlNode(symbol.name)
        if xml_parent is None:
            results.append(element)
        else:
            xml_parent.children.append(element)
        # Process the next sibling *after* the first child so children end
        # up in document order; with a LIFO stack that means pushing the
        # sibling first.
        stack.append((node.child(2), xml_parent))
        stack.append((node.child(1), element))
    return results


def decode_binary(root: Node) -> XmlNode:
    """Decode a single-rooted encoding; raises if the forest size is not 1."""
    forest = decode_forest(root)
    if len(forest) != 1:
        raise BinaryEncodingError(
            f"expected a single root element, decoded {len(forest)}"
        )
    return forest[0]
