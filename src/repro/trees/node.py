"""Ranked ordered trees with parent pointers.

:class:`Node` is the workhorse structure shared by plain binary XML trees and
grammar right-hand sides.  A node is labeled by a :class:`~repro.trees.symbols.Symbol`
and has exactly ``symbol.rank`` children.  Parent pointers are maintained by
the mutation API so compression algorithms can splice subtrees in O(1).

All traversals are iterative (explicit stacks); XML documents can be deep
enough to overflow Python's recursion limit.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.trees.symbols import Symbol

__all__ = [
    "Node",
    "deep_copy",
    "deep_copy_with_map",
    "tree_equal",
    "subtree_nodes",
    "node_count",
    "edge_count",
    "tree_depth",
    "detach_from_parent",
    "replace_node",
]


class Node:
    """A node of a ranked ordered tree.

    ``children`` always has length ``symbol.rank``.  ``parent`` is ``None``
    for roots and is maintained automatically by the construction and
    mutation helpers in this module.
    """

    __slots__ = ("symbol", "children", "parent")

    def __init__(self, symbol: Symbol, children: Optional[List["Node"]] = None):
        kids = list(children) if children else []
        if len(kids) != symbol.rank:
            raise ValueError(
                f"symbol {symbol!r} has rank {symbol.rank}, "
                f"got {len(kids)} children"
            )
        self.symbol = symbol
        self.children = kids
        self.parent: Optional[Node] = None
        for child in kids:
            child.parent = self

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """The symbol's name (handy in tests and debugging output)."""
        return self.symbol.name

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def child_index(self) -> int:
        """1-based index of this node among its parent's children.

        The paper indexes digram child positions from 1, so the whole code
        base follows that convention.  Raises if the node has no parent.
        """
        parent = self.parent
        if parent is None:
            raise ValueError("root node has no child index")
        for i, child in enumerate(parent.children):
            if child is self:
                return i + 1
        raise RuntimeError("corrupt parent pointer: node not among children")

    def child(self, index: int) -> "Node":
        """The ``index``-th child (1-based), mirroring the paper's ``v.i``."""
        return self.children[index - 1]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_child(self, index: int, node: "Node") -> "Node":
        """Replace the 1-based ``index``-th child, returning the old child.

        The displaced child's parent pointer is cleared; the new child is
        reparented here.
        """
        old = self.children[index - 1]
        old.parent = None
        self.children[index - 1] = node
        node.parent = self
        return old

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_sexpr(self) -> str:
        """Render as a term, e.g. ``f(a(#,#),y1)`` -- inverse of the builder."""
        parts: List[str] = []
        # Iterative rendering: stack entries are either nodes or literal
        # strings (for the punctuation emitted after a node's children).
        stack: List[object] = [self]
        while stack:
            item = stack.pop()
            if isinstance(item, str):
                parts.append(item)
                continue
            node = item  # type: ignore[assignment]
            parts.append(node.symbol.name)
            if node.children:
                parts.append("(")
                stack.append(")")
                for i, child in enumerate(reversed(node.children)):
                    stack.append(child)
                    if i != len(node.children) - 1:
                        stack.append(",")
        return "".join(parts)

    def __repr__(self) -> str:
        rendered = self.to_sexpr()
        if len(rendered) > 72:
            rendered = rendered[:69] + "..."
        return f"<Node {rendered}>"


# ----------------------------------------------------------------------
# traversal-independent helpers (iterative implementations)
# ----------------------------------------------------------------------

def subtree_nodes(root: Node) -> Iterator[Node]:
    """Yield the nodes of the subtree rooted at ``root`` in preorder."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def node_count(root: Node) -> int:
    """Number of nodes in the subtree (terminals, nonterminals, parameters)."""
    count = 0
    stack = [root]
    while stack:
        node = stack.pop()
        count += 1
        stack.extend(node.children)
    return count


def edge_count(root: Node) -> int:
    """Number of edges in the subtree; the paper's ``size`` of a RHS."""
    return node_count(root) - 1


def tree_depth(root: Node) -> int:
    """Depth of the subtree: a single node has depth 0."""
    best = 0
    stack: List[Tuple[Node, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if depth > best:
            best = depth
        for child in node.children:
            stack.append((child, depth + 1))
    return best


def deep_copy(root: Node) -> Node:
    """Structurally copy a subtree (symbols are shared, nodes are fresh)."""
    return deep_copy_with_map(root)[0]


def deep_copy_with_map(root: Node) -> Tuple[Node, Dict[int, Node]]:
    """Copy a subtree and return ``(copy, mapping)``.

    ``mapping`` maps ``id(original_node) -> copied_node``; the optimized
    digram replacement uses it to transfer node marks across inlining.
    """
    mapping: Dict[int, Node] = {}
    copy_root = Node.__new__(Node)
    copy_root.symbol = root.symbol
    copy_root.children = []
    copy_root.parent = None
    mapping[id(root)] = copy_root
    stack: List[Tuple[Node, Node]] = [(root, copy_root)]
    while stack:
        original, copy = stack.pop()
        for child in original.children:
            child_copy = Node.__new__(Node)
            child_copy.symbol = child.symbol
            child_copy.children = []
            child_copy.parent = copy
            copy.children.append(child_copy)
            mapping[id(child)] = child_copy
            stack.append((child, child_copy))
    return copy_root, mapping


def tree_equal(a: Node, b: Node) -> bool:
    """Structural equality by symbol identity, iteratively."""
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x.symbol is not y.symbol:
            return False
        if len(x.children) != len(y.children):  # defensive; ranks should match
            return False
        stack.extend(zip(x.children, y.children))
    return True


def detach_from_parent(node: Node) -> Tuple[Node, int]:
    """Remove ``node`` from its parent, returning ``(parent, index)``.

    The parent's child slot is left dangling (``None`` is never inserted);
    callers must immediately install a replacement via ``set_child`` --
    :func:`replace_node` is the safe combined operation.
    """
    parent = node.parent
    if parent is None:
        raise ValueError("cannot detach a root node")
    index = node.child_index()
    return parent, index


def replace_node(old: Node, new: Node) -> None:
    """Replace ``old`` by ``new`` under ``old``'s parent (1 splice, O(rank))."""
    parent, index = detach_from_parent(old)
    parent.set_child(index, new)
