"""Document statistics in the shape of Table III."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.trees.unranked import XmlNode, xml_depth, xml_edge_count, xml_node_count

__all__ = ["DocumentStats", "document_stats"]


@dataclass(frozen=True)
class DocumentStats:
    """Structural statistics of an unranked document tree.

    ``edges`` and ``depth`` are the paper's ``#edges`` and ``dp`` columns.
    """

    elements: int
    edges: int
    depth: int
    distinct_labels: int
    label_histogram: Dict[str, int]

    def describe(self) -> str:
        return (
            f"{self.elements} elements, {self.edges} edges, depth {self.depth}, "
            f"{self.distinct_labels} distinct labels"
        )


def document_stats(root: XmlNode) -> DocumentStats:
    """Compute :class:`DocumentStats` in one traversal."""
    histogram: Counter = Counter()
    for node in root.preorder():
        histogram[node.tag] += 1
    return DocumentStats(
        elements=xml_node_count(root),
        edges=xml_edge_count(root),
        depth=xml_depth(root),
        distinct_labels=len(histogram),
        label_histogram=dict(histogram),
    )
