"""Structure-only XML parsing and serialization.

The evaluation corpora are XML documents *stripped to element structure*
(Section V-A).  This parser therefore keeps only element tags and their
nesting; text, attributes, comments, CDATA, processing instructions and the
DOCTYPE are recognized and discarded.  It is a single-pass scanner over the
raw string -- considerably faster than building a full DOM for multi-
megabyte structure-only documents, and dependency-free.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.trees.unranked import XmlNode

__all__ = ["parse_xml", "serialize_xml", "XmlParseError"]


class XmlParseError(ValueError):
    """Raised on malformed input (unbalanced or mis-nested tags)."""


_NAME = r"[A-Za-z_][\w.\-:]*"

# One token per markup construct.  Text between constructs is skipped by the
# scanner loop (finditer naturally jumps over it).
_TOKEN = re.compile(
    r"<!--.*?-->"                                   # comment
    r"|<!\[CDATA\[.*?\]\]>"                         # CDATA section
    r"|<\?.*?\?>"                                   # processing instruction
    r"|<!DOCTYPE[^>\[]*(?:\[[^\]]*\])?[^>]*>"       # doctype (w/ internal subset)
    rf"|<\s*(?P<close>/)?\s*(?P<name>{_NAME})"      # open / close tag ...
    r"(?P<attrs>(?:[^>\"']|\"[^\"]*\"|'[^']*')*?)"  # ... attributes
    r"(?P<selfclose>/)?\s*>",
    re.DOTALL,
)


def parse_xml(text: str) -> XmlNode:
    """Parse a document into its element-structure tree.

    Only the first top-level element is expected; trailing content after the
    root closes is ignored (many benchmark files end with whitespace).
    """
    root: Optional[XmlNode] = None
    stack: List[XmlNode] = []
    for match in _TOKEN.finditer(text):
        name = match.group("name")
        if name is None:
            continue  # comment / CDATA / PI / doctype
        if match.group("close"):
            if not stack:
                raise XmlParseError(f"unexpected closing tag </{name}>")
            open_element = stack.pop()
            if open_element.tag != name:
                raise XmlParseError(
                    f"mismatched tags: <{open_element.tag}> closed by </{name}>"
                )
            if not stack and root is not None:
                break  # the root element is complete
            continue
        element = XmlNode(name)
        if stack:
            stack[-1].children.append(element)
        elif root is None:
            root = element
        else:
            raise XmlParseError("multiple top-level elements")
        if not match.group("selfclose"):
            stack.append(element)
    if root is None:
        raise XmlParseError("no element found")
    if stack:
        raise XmlParseError(f"unclosed element <{stack[-1].tag}>")
    return root


def serialize_xml(root: XmlNode, indent: Optional[int] = None) -> str:
    """Serialize back to XML text.

    With ``indent=None`` the output is compact (``<a/>`` for leaves); with an
    integer it is pretty-printed with that many spaces per nesting level.
    The output parses back to an equal structure tree.
    """
    parts: List[str] = []
    # Stack entries: (node, depth) for elements, or a literal string for a
    # pending closing tag.
    stack: List[object] = [(root, 0)]
    newline = "" if indent is None else "\n"
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            parts.append(item)
            continue
        node, depth = item  # type: ignore[misc]
        pad = "" if indent is None else " " * (indent * depth)
        if not node.children:
            parts.append(f"{pad}<{node.tag}/>{newline}")
            continue
        parts.append(f"{pad}<{node.tag}>{newline}")
        stack.append(f"{pad}</{node.tag}>{newline}")
        for child in reversed(node.children):
            stack.append((child, depth + 1))
    return "".join(parts)
