"""Tree substrate: ranked/unranked trees, XML I/O, binary encoding."""

from repro.trees.binary import (
    BinaryEncodingError,
    decode_binary,
    decode_forest,
    encode_binary,
    encode_forest,
)
from repro.trees.builder import TermSyntaxError, parse_term
from repro.trees.node import (
    Node,
    deep_copy,
    deep_copy_with_map,
    edge_count,
    node_count,
    replace_node,
    tree_depth,
    tree_equal,
)
from repro.trees.stats import DocumentStats, document_stats
from repro.trees.symbols import Alphabet, Symbol, SymbolKind, parameter_symbol
from repro.trees.traversal import (
    node_at_preorder,
    postorder,
    preorder,
    preorder_index_of,
    preorder_labels,
    preorder_with_index,
)
from repro.trees.unranked import XmlNode, xml_depth, xml_edge_count, xml_equal
from repro.trees.xml_io import XmlParseError, parse_xml, serialize_xml

__all__ = [
    "Alphabet",
    "Symbol",
    "SymbolKind",
    "parameter_symbol",
    "Node",
    "deep_copy",
    "deep_copy_with_map",
    "edge_count",
    "node_count",
    "replace_node",
    "tree_depth",
    "tree_equal",
    "parse_term",
    "TermSyntaxError",
    "preorder",
    "postorder",
    "preorder_with_index",
    "preorder_labels",
    "preorder_index_of",
    "node_at_preorder",
    "XmlNode",
    "xml_equal",
    "xml_depth",
    "xml_edge_count",
    "parse_xml",
    "serialize_xml",
    "XmlParseError",
    "encode_binary",
    "encode_forest",
    "decode_binary",
    "decode_forest",
    "BinaryEncodingError",
    "DocumentStats",
    "document_stats",
]
