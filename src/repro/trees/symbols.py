"""Ranked alphabets and symbols.

The paper's formal model (Section II) works over *ranked alphabets*: every
symbol carries a natural number, its rank, and a node labeled by a symbol of
rank ``k`` has exactly ``k`` children.  Three kinds of symbols exist:

* **terminals** -- XML element labels (rank 2 in the binary encoding) and the
  empty node ``BOTTOM`` (rank 0) written ``⊥`` in the paper,
* **nonterminals** -- grammar rule heads of arbitrary rank,
* **parameters** -- the formal parameters ``y1, y2, ...`` (rank 0), a fixed
  set disjoint from every alphabet.

Symbols are interned per :class:`Alphabet` so identity comparison is safe
within one alphabet, and they are hashable so they can key digram tables.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SymbolKind",
    "Symbol",
    "Alphabet",
    "BOTTOM_NAME",
]

#: Conventional spelling of the empty-tree terminal (the paper's ``⊥``).
BOTTOM_NAME = "#"


class SymbolKind(Enum):
    """Classification of a symbol inside the grammar model."""

    TERMINAL = "terminal"
    NONTERMINAL = "nonterminal"
    PARAMETER = "parameter"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SymbolKind.{self.name}"


class Symbol:
    """An interned ranked symbol.

    Instances are created through :class:`Alphabet` (or
    :func:`parameter_symbol` for parameters) and compared by identity.  The
    ``rank`` of a symbol is the number of children every node labeled by it
    must have; parameters always have rank 0.
    """

    __slots__ = ("name", "rank", "kind", "param_index")

    def __init__(
        self,
        name: str,
        rank: int,
        kind: SymbolKind,
        param_index: int = 0,
    ) -> None:
        if rank < 0:
            raise ValueError(f"rank must be non-negative, got {rank}")
        if kind is SymbolKind.PARAMETER:
            if rank != 0:
                raise ValueError("parameters have rank 0")
            if param_index < 1:
                raise ValueError("parameter index must be >= 1")
        self.name = name
        self.rank = rank
        self.kind = kind
        self.param_index = param_index

    @property
    def is_terminal(self) -> bool:
        return self.kind is SymbolKind.TERMINAL

    @property
    def is_nonterminal(self) -> bool:
        return self.kind is SymbolKind.NONTERMINAL

    @property
    def is_parameter(self) -> bool:
        return self.kind is SymbolKind.PARAMETER

    @property
    def is_bottom(self) -> bool:
        """True for the empty-node terminal ``⊥``."""
        return self.kind is SymbolKind.TERMINAL and self.name == BOTTOM_NAME

    def __repr__(self) -> str:
        return f"{self.name}/{self.rank}"

    def __str__(self) -> str:
        return self.name


# Parameters form one global, alphabet-independent family: the model fixes
# Y = {y1, y2, ...} once and demands it be disjoint from all alphabets.
_PARAMETERS: List[Symbol] = []


def parameter_symbol(index: int) -> Symbol:
    """Return the interned parameter symbol ``y<index>`` (1-based)."""
    if index < 1:
        raise ValueError(f"parameter index must be >= 1, got {index}")
    while len(_PARAMETERS) < index:
        i = len(_PARAMETERS) + 1
        _PARAMETERS.append(
            Symbol(f"y{i}", 0, SymbolKind.PARAMETER, param_index=i)
        )
    return _PARAMETERS[index - 1]


class Alphabet:
    """An interning factory for terminal and nonterminal symbols.

    One alphabet is shared by a tree/grammar and everything derived from it,
    so that symbol identity is meaningful across compression rounds.  Fresh
    nonterminal names for digram rules and exported fragments are drawn from
    per-prefix counters so they never collide with existing names.
    """

    def __init__(self) -> None:
        self._symbols: Dict[str, Symbol] = {}
        self._counters: Dict[str, itertools.count] = {}

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def terminal(self, name: str, rank: int) -> Symbol:
        """Intern (or fetch) the terminal ``name`` with the given rank."""
        return self._intern(name, rank, SymbolKind.TERMINAL)

    def nonterminal(self, name: str, rank: int) -> Symbol:
        """Intern (or fetch) the nonterminal ``name`` with the given rank."""
        return self._intern(name, rank, SymbolKind.NONTERMINAL)

    def bottom(self) -> Symbol:
        """The empty-node terminal ``⊥`` of rank 0."""
        return self.terminal(BOTTOM_NAME, 0)

    def _intern(self, name: str, rank: int, kind: SymbolKind) -> Symbol:
        existing = self._symbols.get(name)
        if existing is not None:
            if existing.rank != rank or existing.kind is not kind:
                raise ValueError(
                    f"symbol {name!r} already interned as {existing.kind.value}"
                    f"/{existing.rank}, requested {kind.value}/{rank}"
                )
            return existing
        symbol = Symbol(name, rank, kind)
        self._symbols[name] = symbol
        return symbol

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Symbol]:
        """Return the interned symbol called ``name``, or ``None``."""
        return self._symbols.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)

    def terminals(self) -> List[Symbol]:
        return [s for s in self._symbols.values() if s.is_terminal]

    def nonterminals(self) -> List[Symbol]:
        return [s for s in self._symbols.values() if s.is_nonterminal]

    # ------------------------------------------------------------------
    # fresh names
    # ------------------------------------------------------------------
    def fresh_nonterminal(self, rank: int, prefix: str = "X") -> Symbol:
        """Intern a nonterminal with a name unused so far.

        Names look like ``X_0, X_1, ...`` for the given prefix; the counter
        skips names that already exist (e.g. after deserialization).
        """
        counter = self._counters.setdefault(prefix, itertools.count())
        while True:
            name = f"{prefix}_{next(counter)}"
            if name not in self._symbols:
                return self.nonterminal(name, rank)

    def fresh_terminal(self, rank: int, prefix: str = "t") -> Symbol:
        """Intern a terminal with a fresh name (used by workload generators)."""
        counter = self._counters.setdefault(prefix, itertools.count())
        while True:
            name = f"{prefix}_{next(counter)}"
            if name not in self._symbols:
                return self.terminal(name, rank)

    def clone_namespace(self) -> "Alphabet":
        """Return a new alphabet pre-populated with the same symbols.

        The clone shares the *symbol objects* (identity is preserved), only
        the fresh-name counters are independent.
        """
        clone = Alphabet()
        clone._symbols = dict(self._symbols)
        return clone


def describe_symbols(symbols: Tuple[Symbol, ...]) -> str:
    """Human-readable rendering of a symbol tuple, used in error messages."""
    return ", ".join(repr(s) for s in symbols)
