"""Navigation over the generated tree without decompression.

A grammar of size ``g`` may generate a tree of size ``2^g``; these helpers
iterate or probe ``valG(S)`` directly on the grammar:

* :func:`stream_preorder` -- the symbols of ``valG(S)`` in preorder, using a
  closure environment per nonterminal application (constant work per node),
* :func:`generates_same_tree` -- equality of two grammars' generated trees,
* :func:`grammar_generates_tree` -- equality against a plain tree,
* :func:`resolve_preorder_path` -- the derivation path to the node with a
  given preorder index, driven by the ``size(A,i)`` segments; this is the
  navigational core of path isolation (Section III-A).

Repeated-query workloads should not rebuild the segment tables per call:
:class:`repro.grammar.index.GrammarIndex` caches them (plus element-count
variants and per-node subtree sizes) persistently, invalidates per rule
through the grammar's observer channel, and answers element-index
addressing, tag lookup, and child-list-terminator queries in
``O(depth · rule-width)``.  Its ``segments()`` view plugs directly into
:func:`resolve_preorder_path`'s ``segments`` argument, so path isolation
rides the same cache.  The functions here remain the streaming baseline
(and the correctness oracle the index is property-tested against).
"""

from __future__ import annotations

from itertools import zip_longest
from typing import Dict, Iterator, List, Optional, Tuple

from repro.grammar.properties import (
    generated_size_of_subtree,
    parameter_segments,
)
from repro.grammar.slcf import Grammar
from repro.trees.node import Node
from repro.trees.symbols import Symbol

__all__ = [
    "stream_preorder",
    "stream_elements",
    "generates_same_tree",
    "grammar_generates_tree",
    "resolve_preorder_path",
    "PathStep",
]


# An environment is a tuple of (node, env) closures, one per parameter of
# the nonterminal being expanded.
_Env = Tuple  # recursive type: Tuple[Tuple[Node, "_Env"], ...]


def stream_preorder(grammar: Grammar) -> Iterator[Symbol]:
    """Yield the terminal symbols of ``valG(S)`` in preorder.

    Memory use is bounded by the depth of the generated tree (times rule
    size); nothing is materialized.
    """
    empty: _Env = ()
    stack: List[Tuple[Node, _Env]] = [(grammar.rhs(grammar.start), empty)]
    while stack:
        node, env = stack.pop()
        symbol = node.symbol
        if symbol.is_terminal:
            yield symbol
            for child in reversed(node.children):
                stack.append((child, env))
        elif symbol.is_nonterminal:
            inner_env: _Env = tuple((child, env) for child in node.children)
            stack.append((grammar.rhs(symbol), inner_env))
        else:  # parameter: continue with the bound argument
            bound_node, bound_env = env[symbol.param_index - 1]
            stack.append((bound_node, bound_env))


def stream_elements(
    grammar: Grammar,
    index_hint=None,
) -> Iterator[Tuple[int, str, Optional[int], int]]:
    """Stream ``(element_index, tag, parent_index, depth)`` in document order.

    The grammar must generate a first-child/next-sibling binary encoding
    (rank-2 element terminals, rank-0 ``⊥``); any other terminal raises
    :class:`ValueError`.  Parent/depth bookkeeping rides the walk itself:
    descending into an element's first-child slot makes that element the
    current parent (depth + 1), descending into the next-sibling slot keeps
    the parent -- the streaming ``O(N)`` ground truth the indexed axis
    primitives (:meth:`repro.grammar.index.GrammarIndex.parent_of` et al.)
    and the query engine are property-tested against.

    ``index_hint`` may name the grammar's :class:`GrammarIndex`: when its
    flat kernel is active the stream descends the packed rule arrays
    instead of the object graph (same yields; this is what keeps the
    full-document export paths on the fast kernel).  Callers that *are*
    the oracle -- the storage scrub audits the indexes against this very
    stream -- pass nothing and keep the independent object walk.
    """
    if index_hint is not None and index_hint.grammar is grammar:
        kernel = index_hint.active_kernel()
        if kernel is not None:
            # Imported lazily: the kernel module imports PathStep from
            # this module at load time.
            from repro.grammar.kernel import kernel_stream_elements

            yield from kernel_stream_elements(kernel)
            return
    index = 0
    # Items: (node, env, parent element index, depth); env as in
    # stream_preorder.
    stack: List[Tuple[Node, _Env, Optional[int], int]] = [
        (grammar.rhs(grammar.start), (), None, 0)
    ]
    while stack:
        node, env, parent, depth = stack.pop()
        symbol = node.symbol
        if symbol.is_terminal:
            if symbol.is_bottom:
                continue
            if symbol.rank != 2:
                raise ValueError(
                    f"terminal {symbol!r} is not a binary-encoded element "
                    "(rank 2) -- stream_elements requires an FCNS encoding"
                )
            yield index, symbol.name, parent, depth
            # Next sibling first (LIFO): the first-child subtree streams
            # before the sibling chain, i.e. in document order.
            stack.append((node.children[1], env, parent, depth))
            stack.append((node.children[0], env, index, depth + 1))
            index += 1
        elif symbol.is_nonterminal:
            inner_env: _Env = tuple((child, env) for child in node.children)
            stack.append((grammar.rhs(symbol), inner_env, parent, depth))
        else:  # parameter: continue with the bound argument
            bound_node, bound_env = env[symbol.param_index - 1]
            stack.append((bound_node, bound_env, parent, depth))


def generates_same_tree(a: Grammar, b: Grammar) -> bool:
    """True iff ``val_a(S_a)`` equals ``val_b(S_b)``.

    Symbols are compared by ``(name, rank)`` so grammars over different
    alphabet objects compare correctly.  Because ranks determine tree shape,
    equal preorder streams imply equal trees.
    """
    sentinel = object()
    for x, y in zip_longest(stream_preorder(a), stream_preorder(b), fillvalue=sentinel):
        if x is sentinel or y is sentinel:
            return False
        if x.name != y.name or x.rank != y.rank:
            return False
    return True


def grammar_generates_tree(grammar: Grammar, tree: Node) -> bool:
    """True iff ``valG(S)`` equals the given plain tree."""
    sentinel = object()

    def tree_symbols() -> Iterator[Symbol]:
        stack = [tree]
        while stack:
            node = stack.pop()
            yield node.symbol
            stack.extend(reversed(node.children))

    for x, y in zip_longest(stream_preorder(grammar), tree_symbols(), fillvalue=sentinel):
        if x is sentinel or y is sentinel:
            return False
        if x.name != y.name or x.rank != y.rank:
            return False
    return True


class PathStep:
    """One step of a derivation path towards a target node.

    ``node`` is a node within the rule identified by the previous step (or
    the start rule).  If ``enters_rule`` is set, the target lies inside the
    right-hand side of ``node``'s nonterminal and path isolation must inline
    here; otherwise the target *is* this (terminal) node.
    """

    __slots__ = ("node", "enters_rule")

    def __init__(self, node: Node, enters_rule: bool) -> None:
        self.node = node
        self.enters_rule = enters_rule

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "enter" if self.enters_rule else "target"
        return f"<PathStep {kind} {self.node.symbol!r}>"


def resolve_preorder_path(
    grammar: Grammar,
    index: int,
    segments: Optional[Dict[Symbol, List[int]]] = None,
) -> List[PathStep]:
    """Locate the node of ``valG(S)`` with 0-based preorder ``index``.

    The result alternates between in-rule descents and rule entries: every
    :class:`PathStep` with ``enters_rule=True`` names a nonterminal node
    whose rule generates the target, and the walk continues inside that
    rule's right-hand side.  The final step is the terminal node of some
    rule that *generates* the target (it corresponds to the target in the
    sense of Section II's marking procedure).

    This performs no mutation -- path isolation replays the steps with
    inlining; tests replay them against a decompressed tree.
    """
    if segments is None:
        segments = parameter_segments(grammar)
    total = sum(segments[grammar.start])
    if index < 0 or index >= total:
        raise IndexError(
            f"preorder index {index} out of range for a tree of {total} nodes"
        )

    steps: List[PathStep] = []
    node = grammar.rhs(grammar.start)
    remaining = index
    # Bindings for parameters of the rule currently walked: param index ->
    # (node in the outer rule, its bindings).  Mirrors stream_preorder.
    bindings: Tuple = ()

    while True:
        symbol = node.symbol
        if symbol.is_parameter:
            node, bindings = bindings[symbol.param_index - 1]
            continue

        if symbol.is_terminal:
            if remaining == 0:
                steps.append(PathStep(node, enters_rule=False))
                return steps
            remaining -= 1  # the terminal itself
            for child in node.children:
                child_size = generated_size_of_subtree_with_env(
                    child, segments, bindings
                )
                if remaining < child_size:
                    node = child
                    break
                remaining -= child_size
            else:  # pragma: no cover - would mean inconsistent sizes
                raise AssertionError("offset beyond subtree")
            continue

        # Nonterminal application: its virtual preorder interleaves the rule
        # body's segments with the argument subtrees:
        #   seg0, arg1, seg1, arg2, ..., argk, segk.
        # If the target falls inside an argument we descend directly (no
        # inlining will be needed there); if it falls on a body segment we
        # record an "enter" step.  Entering keeps ``remaining`` unchanged:
        # walking the rule body with the bindings reproduces exactly the
        # interleaved sequence.
        rule_segments = segments[symbol]
        descend_to: Optional[Node] = None
        preceding = rule_segments[0]
        if remaining >= preceding:
            for child_pos, child in enumerate(node.children, start=1):
                child_size = generated_size_of_subtree_with_env(
                    child, segments, bindings
                )
                if remaining < preceding + child_size:
                    remaining -= preceding
                    descend_to = child
                    break
                preceding += child_size + rule_segments[child_pos]
                if remaining < preceding:
                    break  # a body segment after this argument: enter
        if descend_to is not None:
            node = descend_to
            continue
        steps.append(PathStep(node, enters_rule=True))
        bindings = tuple((child, bindings) for child in node.children)
        node = grammar.rhs(symbol)


def generated_size_of_subtree_with_env(
    node: Node,
    segments: Dict[Symbol, List[int]],
    bindings: Tuple,
) -> int:
    """Generated node count of a RHS subtree with parameters bound.

    Unlike :func:`repro.grammar.properties.generated_size_of_subtree`,
    parameters contribute the size of their bound argument (recursively
    through the binding environments).
    """
    total = 0
    stack: List[Tuple[Node, Tuple]] = [(node, bindings)]
    while stack:
        current, env = stack.pop()
        symbol = current.symbol
        if symbol.is_parameter:
            stack.append(env[symbol.param_index - 1])
            continue
        if symbol.is_terminal:
            total += 1
        else:
            total += sum(segments[symbol])
        for child in current.children:
            stack.append((child, env))
    return total
