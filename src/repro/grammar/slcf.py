"""Straight-line linear context-free (SLCF) tree grammars.

This is the paper's formal model (Section II): a grammar
``G = (F, N, P, S)`` with ranked terminals ``F`` (including ``⊥``), ranked
nonterminals ``N``, exactly one rule ``R -> tR`` per nonterminal, parameters
``y1..ym`` each occurring exactly once in ``tR``, a start nonterminal ``S``
of rank 0 that no right-hand side references, and an acyclic
(*straight-line*) call relation.

One additional invariant is enforced throughout this code base: parameters
appear in *increasing order in preorder* within every right-hand side.  All
grammars produced by (Tree/Grammar)RePair satisfy it, and it makes the
``size(A, i)`` segment computation (Section III-A) well-defined.

Grammars support lightweight *observers* (see
:class:`repro.grammar.index.GrammarIndex`): objects registered via
:meth:`Grammar.register_observer` are told which rule changed whenever a
right-hand side is installed (:meth:`Grammar.set_rule`), removed
(:meth:`Grammar.remove_rule`), or mutated in place
(:meth:`Grammar.notify_rule_changed`, called by the mutation layer after
in-place rewrites such as path isolation or digram replacement).  This is
the invalidation channel that lets per-rule caches survive updates -- and
that the spine-sharding policy (:class:`repro.grammar.sharding.ShardManager`)
rides to rebalance exactly the rules each mutation epoch touched:
splitting an oversized start rule into shard rules is just a sequence of
ordinary ``set_rule``/``notify_rule_changed`` events, so every registered
index treats it as a local change.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.trees.node import Node, deep_copy, edge_count, node_count
from repro.trees.symbols import Alphabet, Symbol

__all__ = ["Grammar", "GrammarError", "RuleTouchRecorder", "GrammarSizeTracker"]


class GrammarError(ValueError):
    """Raised when a grammar violates the SLCF model."""


class _Missing:
    """Overlay sentinel: the rule did not exist at the pinned epoch."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing-at-epoch>"


_MISSING = _Missing()


class _CowRuleTable(dict):
    """The grammar's rule ``dict`` with copy-on-write preservation hooks.

    Every in-place rewrite in this code base *reads* the rule body it is
    about to mutate -- through :meth:`Grammar.rhs` or through this
    mapping -- before the first surgery on it (path isolation descends
    via ``rhs``, digram replacement scans bodies it fetched here, the
    shard manager inspects ``rhs`` before splitting).  Hooking the reads
    therefore suffices to preserve the pre-image of a rule into every
    pinned epoch's overlay *before* it can change.  The one known
    violator -- GrammarRePair's warm occurrence lists, which let a later
    run mutate a body it only read in an earlier run -- is covered by an
    explicit :meth:`Grammar.preserve_all` barrier in ``recompress``.

    With no pins outstanding the hook is a single attribute check on
    top of the plain ``dict`` operation.
    """

    __slots__ = ("grammar",)

    def __getitem__(self, head):
        grammar = self.grammar
        if grammar._pins:
            grammar._preserve(head)
        return dict.__getitem__(self, head)

    def get(self, head, default=None):
        grammar = self.grammar
        if grammar._pins:
            grammar._preserve(head)
        return dict.get(self, head, default)


class RuleTouchRecorder:
    """Minimal grammar observer collecting the rules touched by mutations.

    ``changed`` accumulates every rule head reported through the observer
    channel (install, in-place mutation); ``removed`` the heads whose rules
    were dropped.  A removed head is taken out of ``changed`` again --
    consumers that rescan or recompress dirty rules must not chase rules
    that no longer exist, and the mutation that dropped the last reference
    dirtied the referencing rule already.

    This is the bookkeeping shared by the incremental recompressor (which
    rescans only touched rules between replacement rounds, see
    :mod:`repro.core.occurrence_index`) and by
    :class:`repro.api.CompressedXml` (which scopes recompression to the
    rules dirtied since the previous run).
    """

    __slots__ = ("changed", "removed")

    def __init__(self) -> None:
        self.changed: Set[Symbol] = set()
        self.removed: Set[Symbol] = set()

    def rule_changed(self, head: Symbol) -> None:
        self.changed.add(head)

    def rule_removed(self, head: Symbol) -> None:
        self.changed.discard(head)
        self.removed.add(head)

    def clear(self) -> None:
        self.changed.clear()
        self.removed.clear()


class GrammarSizeTracker:
    """Observer maintaining ``|G|`` (total RHS edges) incrementally.

    ``Grammar.size`` walks every right-hand side -- O(|G|) -- which is
    fine for one-off reports but not for a per-update maintenance policy
    (:meth:`repro.api.CompressedXml._maybe_auto_recompress` consults the
    size after *every* operation; with a sharded spine the operation
    itself only touches O(width) nodes, so the size probe must not
    reintroduce an O(|G|) walk).  The tracker recomputes lazily and only
    the rules reported changed since the last read: one ``edge_count``
    walk per dirtied rule, amortized over however many mutations the
    epoch batched.
    """

    __slots__ = ("_grammar", "_edges", "_dirty", "_total")

    def __init__(self, grammar: "Grammar") -> None:
        self._grammar = grammar
        self._edges: Dict[Symbol, int] = {}
        self._dirty: Set[Symbol] = set(grammar.rules)
        self._total = 0
        grammar.register_observer(self)

    def rule_changed(self, head: Symbol) -> None:
        self._dirty.add(head)

    def rule_relabeled(self, head: Symbol) -> None:
        """Relabels change no edge count."""

    def rule_removed(self, head: Symbol) -> None:
        self._dirty.discard(head)
        self._total -= self._edges.pop(head, 0)

    @property
    def total(self) -> int:
        """``|G|`` in edges, equal to ``Grammar.size`` at all times."""
        if self._dirty:
            grammar = self._grammar
            for head in self._dirty:
                if not grammar.has_rule(head):
                    continue
                new = edge_count(grammar.rules[head])
                self._total += new - self._edges.get(head, 0)
                self._edges[head] = new
            self._dirty.clear()
        return self._total


class Grammar:
    """A mutable SLCF tree grammar.

    ``rules`` maps each nonterminal symbol to the root node of its
    right-hand side.  The grammar owns an :class:`Alphabet` from which all
    of its symbols (and fresh nonterminals created during compression) are
    drawn.
    """

    __slots__ = (
        "alphabet", "start", "rules", "_observers",
        "epoch", "_pins", "_overlays", "_pin_times", "_version_lock",
        "_reader_pins", "_reader_pins_at",
    )

    def __init__(self, alphabet: Alphabet, start: Symbol) -> None:
        if not start.is_nonterminal:
            raise GrammarError(f"start symbol {start!r} must be a nonterminal")
        if start.rank != 0:
            raise GrammarError(f"start symbol {start!r} must have rank 0")
        self.alphabet = alphabet
        self.start = start
        self.rules: Dict[Symbol, Node] = _CowRuleTable()
        self.rules.grammar = self
        self._observers: List[object] = []
        #: Monotone version counter, bumped on every mutation event
        #: (install, removal, in-place rewrite, relabel).  Pinning the
        #: current epoch freezes the grammar as observed *now*.
        self.epoch = 0
        self._pins: Dict[int, int] = {}
        self._overlays: Dict[int, Dict[Symbol, object]] = {}
        self._pin_times: Dict[int, float] = {}
        #: Pins held by reader snapshots (vs transaction-rollback pins),
        #: total and per epoch.  Resolution caches may be consulted only
        #: when no reader pins exist: a reader pin makes the resolution
        #: descent's ``rhs()`` reads load-bearing as copy-on-write
        #: preservation points.  Conversely, an overlay whose epoch has
        #: *only* rollback pins skips read-triggered preservation
        #: entirely -- the batch machinery preserves at its write points
        #: -- so the happy path of a transaction copies nothing.
        self._reader_pins = 0
        self._reader_pins_at: Dict[int, int] = {}
        self._version_lock = threading.RLock()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, root: Node, alphabet: Alphabet, start_name: str = "S") -> "Grammar":
        """The trivial grammar ``{S -> t}`` generating exactly ``t``.

        This is how GrammarRePair doubles as a tree compressor (Section V-B):
        a tree is a one-rule grammar.  The tree is *not* copied.
        """
        start = alphabet.get(start_name)
        if start is None:
            start = alphabet.nonterminal(start_name, 0)
        elif not (start.is_nonterminal and start.rank == 0):
            # The requested name is taken by a document label (e.g. the
            # Penn-Treebank tag "S"): mint a fresh start symbol instead.
            start = alphabet.fresh_nonterminal(0, prefix=start_name)
        grammar = cls(alphabet, start)
        grammar.set_rule(start, root)
        return grammar

    def set_rule(self, nonterminal: Symbol, rhs: Node) -> None:
        """Install (or overwrite) the rule ``nonterminal -> rhs``."""
        if not nonterminal.is_nonterminal:
            raise GrammarError(f"{nonterminal!r} is not a nonterminal")
        if rhs.symbol.is_parameter:
            raise GrammarError(
                "a right-hand side must not be a single parameter node"
            )
        if self._pins:
            self._preserve(nonterminal, for_write=True)
        rhs.parent = None
        dict.__setitem__(self.rules, nonterminal, rhs)
        self.epoch += 1
        for observer in self._observers:
            observer.rule_changed(nonterminal)

    def remove_rule(self, nonterminal: Symbol) -> None:
        if nonterminal is self.start:
            raise GrammarError("cannot remove the start rule")
        if self._pins:
            self._preserve(nonterminal, for_write=True)
        del self.rules[nonterminal]
        self.epoch += 1
        for observer in self._observers:
            observer.rule_removed(nonterminal)

    # ------------------------------------------------------------------
    # observers (cache invalidation channel)
    # ------------------------------------------------------------------
    def register_observer(self, observer: object) -> None:
        """Register an observer with ``rule_changed``/``rule_removed`` hooks.

        Observers are notified with the affected rule head on every
        :meth:`set_rule`, :meth:`remove_rule`, and
        :meth:`notify_rule_changed` call.  Registration is idempotent.
        """
        if observer not in self._observers:
            self._observers.append(observer)

    def unregister_observer(self, observer: object) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def notify_rule_changed(self, nonterminal: Symbol) -> None:
        """Report an *in-place* mutation of ``nonterminal``'s right-hand side.

        :meth:`set_rule` notifies automatically; rewrites that splice nodes
        inside an installed RHS (path isolation, digram replacement,
        inlining) must call this so registered indexes stay correct.
        """
        self.epoch += 1
        for observer in self._observers:
            observer.rule_changed(nonterminal)

    def notify_rule_relabeled(self, nonterminal: Symbol) -> None:
        """Report an in-place *relabel* of a terminal in the rule's RHS.

        A relabel changes no structural count, so observers that only
        cache sizes (e.g. :class:`repro.grammar.index.GrammarIndex`) may
        implement ``rule_relabeled`` as a no-op and keep their tables;
        observers without the hook get the coarse :meth:`rule_changed`
        instead -- label censuses, occurrence tables, and dirty-rule
        recorders must all still see the mutation (relabels do change
        digrams and label counts).
        """
        self.epoch += 1
        for observer in self._observers:
            relabeled = getattr(observer, "rule_relabeled", None)
            if relabeled is not None:
                relabeled(nonterminal)
            else:
                observer.rule_changed(nonterminal)

    # ------------------------------------------------------------------
    # MVCC: pinned epochs and copy-on-write overlays
    # ------------------------------------------------------------------
    #
    # ``pin()`` freezes the grammar as of the current epoch.  Mutations
    # keep rewriting the live rule bodies in place (so node identities
    # -- the keys of every id()-keyed index table -- never change), but
    # before the *first* rewrite of a rule after a pin, the rule's
    # pristine body is deep-copied into the pinned epoch's overlay.  A
    # reader resolves a rule through ``rule_at``: overlay hit if the
    # rule changed since the pin, otherwise a lazily-made private copy
    # of the (still pristine) live body.  Readers therefore never hold
    # a reference to a body a writer may mutate.  When the last pin on
    # an epoch drops, its overlay is garbage.

    def pin(self, rollback: bool = False) -> int:
        """Pin the current epoch; returns the epoch number.

        Call only between operations (the document layer holds its
        write lock around this, so no mutation is mid-flight).
        ``rollback`` marks a transaction-rollback pin: it fills the same
        overlay, but does not count as a *reader* -- resolution caches
        stay consultable, because every mutation path of a batch
        preserves the rules it rewrites on its own (``isolate_many``
        reads each walked spine rule, ``inline_at`` each callee,
        ``set_rule``/``remove_rule`` preserve directly).
        """
        with self._version_lock:
            epoch = self.epoch
            count = self._pins.get(epoch, 0)
            self._pins[epoch] = count + 1
            if not rollback:
                self._reader_pins += 1
                self._reader_pins_at[epoch] = \
                    self._reader_pins_at.get(epoch, 0) + 1
            if count == 0:
                self._overlays[epoch] = {}
                self._pin_times[epoch] = time.monotonic()
            return epoch

    def unpin(self, epoch: int, rollback: bool = False) -> None:
        """Drop one pin; the overlay is freed with the last pin."""
        with self._version_lock:
            count = self._pins.get(epoch)
            if count is None:
                raise GrammarError(f"epoch {epoch} is not pinned")
            if not rollback:
                self._reader_pins -= 1
                remaining = self._reader_pins_at.get(epoch, 0) - 1
                if remaining <= 0:
                    self._reader_pins_at.pop(epoch, None)
                else:
                    self._reader_pins_at[epoch] = remaining
            if count == 1:
                del self._pins[epoch]
                del self._overlays[epoch]
                del self._pin_times[epoch]
            else:
                self._pins[epoch] = count - 1

    def _preserve(self, head: Symbol, for_write: bool = False) -> None:
        """Copy ``head``'s pristine body into every overlay lacking it.

        An overlay lacking ``head`` means the rule has not changed since
        that epoch was pinned -- so one deep copy of the current live
        body serves every lacking overlay (they all pinned the same
        content).  First preservation wins; later calls are no-ops.

        Read-triggered calls (``for_write=False``) fill only overlays
        some *reader* pinned: reads are conservative (a descent touches
        every spine rule on its path, mutation or not), and an epoch
        pinned purely for transaction rollback would pay a deep copy
        per walked rule per batch for an overlay that is discarded
        unread on commit.  Write points pass ``for_write=True`` and
        fill every overlay -- rollback needs exactly the rules actually
        rewritten.
        """
        with self._version_lock:
            if for_write:
                lacking = [
                    overlay for overlay in self._overlays.values()
                    if head not in overlay
                ]
            else:
                readers = self._reader_pins_at
                lacking = [
                    overlay for epoch, overlay in self._overlays.items()
                    if head not in overlay and epoch in readers
                ]
            if not lacking:
                return
            live = dict.get(self.rules, head)
            preserved = _MISSING if live is None else deep_copy(live)
            for overlay in lacking:
                overlay[head] = preserved

    def preserve_for_write(self, head: Symbol) -> None:
        """Preserve ``head`` ahead of an in-place rewrite of its body.

        Mutation paths that splice or relabel inside an installed RHS
        (bypassing :meth:`set_rule`) must call this before the first
        rewrite: it is what makes a transaction-rollback overlay
        complete, and it backstops reader overlays when no hooked read
        preceded the rewrite.  No-op without pins; first call wins.
        """
        if self._pins:
            self._preserve(head, for_write=True)

    def preserve_all(self) -> None:
        """Preserve every rule into every lacking overlay.

        Barrier for mutation paths that do *not* re-read a body before
        rewriting it (GrammarRePair's warm occurrence lists); called by
        the recompressor before a run while snapshots are pinned.
        """
        if not self._pins:
            return
        with self._version_lock:
            for head in list(dict.keys(self.rules)):
                self._preserve(head, for_write=True)

    def rule_at(self, epoch: int, head: Symbol) -> Node:
        """``head``'s body as of pinned ``epoch`` (immutable to writers).

        Falls through to a private copy of the live body when the rule
        has not changed since the pin; the copy is cached in the overlay
        so repeated reads (and id()-keyed snapshot indexes) see one
        stable object.
        """
        with self._version_lock:
            try:
                overlay = self._overlays[epoch]
            except KeyError:
                raise GrammarError(f"epoch {epoch} is not pinned") from None
            body = overlay.get(head)
            if body is None and head not in overlay:
                live = dict.get(self.rules, head)
                body = _MISSING if live is None else deep_copy(live)
                overlay[head] = body
            if body is _MISSING:
                raise GrammarError(
                    f"no rule for nonterminal {head!r} at epoch {epoch}"
                )
            return body

    def has_rule_at(self, epoch: int, head: Symbol) -> bool:
        with self._version_lock:
            try:
                overlay = self._overlays[epoch]
            except KeyError:
                raise GrammarError(f"epoch {epoch} is not pinned") from None
            if head in overlay:
                return overlay[head] is not _MISSING
            return head in self.rules

    def heads_at(self, epoch: int) -> List[Symbol]:
        """Rule heads as of pinned ``epoch`` (live order, removed last)."""
        with self._version_lock:
            try:
                overlay = self._overlays[epoch]
            except KeyError:
                raise GrammarError(f"epoch {epoch} is not pinned") from None
            heads = [
                head for head in dict.keys(self.rules)
                if overlay.get(head) is not _MISSING
            ]
            live = self.rules
            heads.extend(
                head for head, body in overlay.items()
                if body is not _MISSING and head not in live
            )
            return heads

    def preserved_at(self, epoch: int) -> Dict[Symbol, Optional[Node]]:
        """The rules rewritten since ``epoch`` was pinned, with their
        pristine pinned bodies (``None`` for a rule that did not exist).

        This is the transaction-rollback surface: every mutation path
        preserves a rule before its first post-pin rewrite (reads
        through :meth:`rhs`/the rule table hook it, :meth:`set_rule` and
        :meth:`remove_rule` do it directly), so after a half-applied
        batch the overlay holds exactly the pre-batch bodies to restore.
        The returned bodies may be shared with concurrent reader
        snapshots of the same epoch -- callers reinstalling them must
        deep-copy.
        """
        with self._version_lock:
            try:
                overlay = self._overlays[epoch]
            except KeyError:
                raise GrammarError(f"epoch {epoch} is not pinned") from None
            return {
                head: (None if body is _MISSING else body)
                for head, body in overlay.items()
            }

    def pinned_epochs(self) -> Dict[int, int]:
        """Pinned epoch -> reference count (a copy)."""
        with self._version_lock:
            return dict(self._pins)

    @property
    def pin_count(self) -> int:
        """Total outstanding pins across all epochs."""
        with self._version_lock:
            return sum(self._pins.values())

    def oldest_pin_age(self) -> Optional[float]:
        """Seconds since the oldest still-pinned epoch was pinned."""
        with self._version_lock:
            if not self._pin_times:
                return None
            return time.monotonic() - min(self._pin_times.values())

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def rhs(self, nonterminal: Symbol) -> Node:
        if self._pins:
            self._preserve(nonterminal)
        try:
            return dict.__getitem__(self.rules, nonterminal)
        except KeyError:
            raise GrammarError(f"no rule for nonterminal {nonterminal!r}") from None

    def has_rule(self, nonterminal: Symbol) -> bool:
        return nonterminal in self.rules

    def nonterminals(self) -> List[Symbol]:
        """Rule heads, in insertion order."""
        return list(self.rules.keys())

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Tuple[Symbol, Node]]:
        return iter(self.rules.items())

    @property
    def size(self) -> int:
        """``|G|`` = total number of edges over all right-hand sides."""
        return sum(edge_count(rhs) for rhs in self.rules.values())

    @property
    def node_size(self) -> int:
        """Total number of RHS nodes (size + number of rules)."""
        return sum(node_count(rhs) for rhs in self.rules.values())

    def rule_width(self, nonterminal: Symbol) -> int:
        """RHS node count of one rule -- the quantity the spine-sharding
        policy budgets (``O(width)`` isolation and recompute per rule)."""
        return node_count(self.rhs(nonterminal))

    def copy(self) -> "Grammar":
        """Deep copy: fresh rule trees, shared symbols/alphabet."""
        clone = Grammar(self.alphabet, self.start)
        for nonterminal, rhs in self.rules.items():
            clone.rules[nonterminal] = deep_copy(rhs)
        return clone

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every SLCF model invariant; raise :class:`GrammarError`.

        Intended for tests and debugging -- it walks the entire grammar.
        """
        if self.start not in self.rules:
            raise GrammarError("missing start rule")
        called: Dict[Symbol, Set[Symbol]] = {}
        for head, rhs in self.rules.items():
            if rhs.symbol.is_parameter:
                raise GrammarError(f"rule {head!r}: RHS is a bare parameter")
            if rhs.parent is not None:
                raise GrammarError(f"rule {head!r}: RHS root has a parent")
            seen_params: List[int] = []
            callees: Set[Symbol] = set()
            stack = [rhs]
            while stack:
                node = stack.pop()
                symbol = node.symbol
                if len(node.children) != symbol.rank:
                    raise GrammarError(
                        f"rule {head!r}: node {symbol!r} has "
                        f"{len(node.children)} children, rank is {symbol.rank}"
                    )
                for child in node.children:
                    if child.parent is not node:
                        raise GrammarError(
                            f"rule {head!r}: broken parent pointer at {symbol!r}"
                        )
                if symbol.is_parameter:
                    seen_params.append(symbol.param_index)
                elif symbol.is_nonterminal:
                    if symbol is self.start:
                        raise GrammarError(
                            f"rule {head!r} references the start symbol"
                        )
                    if symbol not in self.rules:
                        raise GrammarError(
                            f"rule {head!r} references undefined {symbol!r}"
                        )
                    callees.add(symbol)
                stack.extend(reversed(node.children))
            expected = list(range(1, head.rank + 1))
            if seen_params != expected:
                raise GrammarError(
                    f"rule {head!r}: parameters {seen_params} in preorder, "
                    f"expected exactly {expected} (linear, ordered)"
                )
            called[head] = callees
        self._check_acyclic(called)

    def _check_acyclic(self, called: Dict[Symbol, Set[Symbol]]) -> None:
        """Straight-line check: the call relation must be a DAG."""
        state: Dict[Symbol, int] = {}  # 0 = visiting, 1 = done

        for origin in self.rules:
            if origin in state:
                continue
            stack: List[Tuple[Symbol, Iterator[Symbol]]] = [
                (origin, iter(called[origin]))
            ]
            state[origin] = 0
            while stack:
                head, it = stack[-1]
                advanced = False
                for callee in it:
                    status = state.get(callee)
                    if status == 0:
                        raise GrammarError(
                            f"grammar is recursive: cycle through {callee!r}"
                        )
                    if status is None:
                        state[callee] = 0
                        stack.append((callee, iter(called[callee])))
                        advanced = True
                        break
                if not advanced:
                    state[head] = 1
                    stack.pop()
