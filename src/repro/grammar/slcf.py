"""Straight-line linear context-free (SLCF) tree grammars.

This is the paper's formal model (Section II): a grammar
``G = (F, N, P, S)`` with ranked terminals ``F`` (including ``⊥``), ranked
nonterminals ``N``, exactly one rule ``R -> tR`` per nonterminal, parameters
``y1..ym`` each occurring exactly once in ``tR``, a start nonterminal ``S``
of rank 0 that no right-hand side references, and an acyclic
(*straight-line*) call relation.

One additional invariant is enforced throughout this code base: parameters
appear in *increasing order in preorder* within every right-hand side.  All
grammars produced by (Tree/Grammar)RePair satisfy it, and it makes the
``size(A, i)`` segment computation (Section III-A) well-defined.

Grammars support lightweight *observers* (see
:class:`repro.grammar.index.GrammarIndex`): objects registered via
:meth:`Grammar.register_observer` are told which rule changed whenever a
right-hand side is installed (:meth:`Grammar.set_rule`), removed
(:meth:`Grammar.remove_rule`), or mutated in place
(:meth:`Grammar.notify_rule_changed`, called by the mutation layer after
in-place rewrites such as path isolation or digram replacement).  This is
the invalidation channel that lets per-rule caches survive updates -- and
that the spine-sharding policy (:class:`repro.grammar.sharding.ShardManager`)
rides to rebalance exactly the rules each mutation epoch touched:
splitting an oversized start rule into shard rules is just a sequence of
ordinary ``set_rule``/``notify_rule_changed`` events, so every registered
index treats it as a local change.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.trees.node import Node, deep_copy, edge_count, node_count
from repro.trees.symbols import Alphabet, Symbol

__all__ = ["Grammar", "GrammarError", "RuleTouchRecorder", "GrammarSizeTracker"]


class GrammarError(ValueError):
    """Raised when a grammar violates the SLCF model."""


class RuleTouchRecorder:
    """Minimal grammar observer collecting the rules touched by mutations.

    ``changed`` accumulates every rule head reported through the observer
    channel (install, in-place mutation); ``removed`` the heads whose rules
    were dropped.  A removed head is taken out of ``changed`` again --
    consumers that rescan or recompress dirty rules must not chase rules
    that no longer exist, and the mutation that dropped the last reference
    dirtied the referencing rule already.

    This is the bookkeeping shared by the incremental recompressor (which
    rescans only touched rules between replacement rounds, see
    :mod:`repro.core.occurrence_index`) and by
    :class:`repro.api.CompressedXml` (which scopes recompression to the
    rules dirtied since the previous run).
    """

    __slots__ = ("changed", "removed")

    def __init__(self) -> None:
        self.changed: Set[Symbol] = set()
        self.removed: Set[Symbol] = set()

    def rule_changed(self, head: Symbol) -> None:
        self.changed.add(head)

    def rule_removed(self, head: Symbol) -> None:
        self.changed.discard(head)
        self.removed.add(head)

    def clear(self) -> None:
        self.changed.clear()
        self.removed.clear()


class GrammarSizeTracker:
    """Observer maintaining ``|G|`` (total RHS edges) incrementally.

    ``Grammar.size`` walks every right-hand side -- O(|G|) -- which is
    fine for one-off reports but not for a per-update maintenance policy
    (:meth:`repro.api.CompressedXml._maybe_auto_recompress` consults the
    size after *every* operation; with a sharded spine the operation
    itself only touches O(width) nodes, so the size probe must not
    reintroduce an O(|G|) walk).  The tracker recomputes lazily and only
    the rules reported changed since the last read: one ``edge_count``
    walk per dirtied rule, amortized over however many mutations the
    epoch batched.
    """

    __slots__ = ("_grammar", "_edges", "_dirty", "_total")

    def __init__(self, grammar: "Grammar") -> None:
        self._grammar = grammar
        self._edges: Dict[Symbol, int] = {}
        self._dirty: Set[Symbol] = set(grammar.rules)
        self._total = 0
        grammar.register_observer(self)

    def rule_changed(self, head: Symbol) -> None:
        self._dirty.add(head)

    def rule_relabeled(self, head: Symbol) -> None:
        """Relabels change no edge count."""

    def rule_removed(self, head: Symbol) -> None:
        self._dirty.discard(head)
        self._total -= self._edges.pop(head, 0)

    @property
    def total(self) -> int:
        """``|G|`` in edges, equal to ``Grammar.size`` at all times."""
        if self._dirty:
            grammar = self._grammar
            for head in self._dirty:
                if not grammar.has_rule(head):
                    continue
                new = edge_count(grammar.rules[head])
                self._total += new - self._edges.get(head, 0)
                self._edges[head] = new
            self._dirty.clear()
        return self._total


class Grammar:
    """A mutable SLCF tree grammar.

    ``rules`` maps each nonterminal symbol to the root node of its
    right-hand side.  The grammar owns an :class:`Alphabet` from which all
    of its symbols (and fresh nonterminals created during compression) are
    drawn.
    """

    __slots__ = ("alphabet", "start", "rules", "_observers")

    def __init__(self, alphabet: Alphabet, start: Symbol) -> None:
        if not start.is_nonterminal:
            raise GrammarError(f"start symbol {start!r} must be a nonterminal")
        if start.rank != 0:
            raise GrammarError(f"start symbol {start!r} must have rank 0")
        self.alphabet = alphabet
        self.start = start
        self.rules: Dict[Symbol, Node] = {}
        self._observers: List[object] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, root: Node, alphabet: Alphabet, start_name: str = "S") -> "Grammar":
        """The trivial grammar ``{S -> t}`` generating exactly ``t``.

        This is how GrammarRePair doubles as a tree compressor (Section V-B):
        a tree is a one-rule grammar.  The tree is *not* copied.
        """
        start = alphabet.get(start_name)
        if start is None:
            start = alphabet.nonterminal(start_name, 0)
        elif not (start.is_nonterminal and start.rank == 0):
            # The requested name is taken by a document label (e.g. the
            # Penn-Treebank tag "S"): mint a fresh start symbol instead.
            start = alphabet.fresh_nonterminal(0, prefix=start_name)
        grammar = cls(alphabet, start)
        grammar.set_rule(start, root)
        return grammar

    def set_rule(self, nonterminal: Symbol, rhs: Node) -> None:
        """Install (or overwrite) the rule ``nonterminal -> rhs``."""
        if not nonterminal.is_nonterminal:
            raise GrammarError(f"{nonterminal!r} is not a nonterminal")
        if rhs.symbol.is_parameter:
            raise GrammarError(
                "a right-hand side must not be a single parameter node"
            )
        rhs.parent = None
        self.rules[nonterminal] = rhs
        for observer in self._observers:
            observer.rule_changed(nonterminal)

    def remove_rule(self, nonterminal: Symbol) -> None:
        if nonterminal is self.start:
            raise GrammarError("cannot remove the start rule")
        del self.rules[nonterminal]
        for observer in self._observers:
            observer.rule_removed(nonterminal)

    # ------------------------------------------------------------------
    # observers (cache invalidation channel)
    # ------------------------------------------------------------------
    def register_observer(self, observer: object) -> None:
        """Register an observer with ``rule_changed``/``rule_removed`` hooks.

        Observers are notified with the affected rule head on every
        :meth:`set_rule`, :meth:`remove_rule`, and
        :meth:`notify_rule_changed` call.  Registration is idempotent.
        """
        if observer not in self._observers:
            self._observers.append(observer)

    def unregister_observer(self, observer: object) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def notify_rule_changed(self, nonterminal: Symbol) -> None:
        """Report an *in-place* mutation of ``nonterminal``'s right-hand side.

        :meth:`set_rule` notifies automatically; rewrites that splice nodes
        inside an installed RHS (path isolation, digram replacement,
        inlining) must call this so registered indexes stay correct.
        """
        for observer in self._observers:
            observer.rule_changed(nonterminal)

    def notify_rule_relabeled(self, nonterminal: Symbol) -> None:
        """Report an in-place *relabel* of a terminal in the rule's RHS.

        A relabel changes no structural count, so observers that only
        cache sizes (e.g. :class:`repro.grammar.index.GrammarIndex`) may
        implement ``rule_relabeled`` as a no-op and keep their tables;
        observers without the hook get the coarse :meth:`rule_changed`
        instead -- label censuses, occurrence tables, and dirty-rule
        recorders must all still see the mutation (relabels do change
        digrams and label counts).
        """
        for observer in self._observers:
            relabeled = getattr(observer, "rule_relabeled", None)
            if relabeled is not None:
                relabeled(nonterminal)
            else:
                observer.rule_changed(nonterminal)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def rhs(self, nonterminal: Symbol) -> Node:
        try:
            return self.rules[nonterminal]
        except KeyError:
            raise GrammarError(f"no rule for nonterminal {nonterminal!r}") from None

    def has_rule(self, nonterminal: Symbol) -> bool:
        return nonterminal in self.rules

    def nonterminals(self) -> List[Symbol]:
        """Rule heads, in insertion order."""
        return list(self.rules.keys())

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Tuple[Symbol, Node]]:
        return iter(self.rules.items())

    @property
    def size(self) -> int:
        """``|G|`` = total number of edges over all right-hand sides."""
        return sum(edge_count(rhs) for rhs in self.rules.values())

    @property
    def node_size(self) -> int:
        """Total number of RHS nodes (size + number of rules)."""
        return sum(node_count(rhs) for rhs in self.rules.values())

    def rule_width(self, nonterminal: Symbol) -> int:
        """RHS node count of one rule -- the quantity the spine-sharding
        policy budgets (``O(width)`` isolation and recompute per rule)."""
        return node_count(self.rhs(nonterminal))

    def copy(self) -> "Grammar":
        """Deep copy: fresh rule trees, shared symbols/alphabet."""
        clone = Grammar(self.alphabet, self.start)
        for nonterminal, rhs in self.rules.items():
            clone.rules[nonterminal] = deep_copy(rhs)
        return clone

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every SLCF model invariant; raise :class:`GrammarError`.

        Intended for tests and debugging -- it walks the entire grammar.
        """
        if self.start not in self.rules:
            raise GrammarError("missing start rule")
        called: Dict[Symbol, Set[Symbol]] = {}
        for head, rhs in self.rules.items():
            if rhs.symbol.is_parameter:
                raise GrammarError(f"rule {head!r}: RHS is a bare parameter")
            if rhs.parent is not None:
                raise GrammarError(f"rule {head!r}: RHS root has a parent")
            seen_params: List[int] = []
            callees: Set[Symbol] = set()
            stack = [rhs]
            while stack:
                node = stack.pop()
                symbol = node.symbol
                if len(node.children) != symbol.rank:
                    raise GrammarError(
                        f"rule {head!r}: node {symbol!r} has "
                        f"{len(node.children)} children, rank is {symbol.rank}"
                    )
                for child in node.children:
                    if child.parent is not node:
                        raise GrammarError(
                            f"rule {head!r}: broken parent pointer at {symbol!r}"
                        )
                if symbol.is_parameter:
                    seen_params.append(symbol.param_index)
                elif symbol.is_nonterminal:
                    if symbol is self.start:
                        raise GrammarError(
                            f"rule {head!r} references the start symbol"
                        )
                    if symbol not in self.rules:
                        raise GrammarError(
                            f"rule {head!r} references undefined {symbol!r}"
                        )
                    callees.add(symbol)
                stack.extend(reversed(node.children))
            expected = list(range(1, head.rank + 1))
            if seen_params != expected:
                raise GrammarError(
                    f"rule {head!r}: parameters {seen_params} in preorder, "
                    f"expected exactly {expected} (linear, ordered)"
                )
            called[head] = callees
        self._check_acyclic(called)

    def _check_acyclic(self, called: Dict[Symbol, Set[Symbol]]) -> None:
        """Straight-line check: the call relation must be a DAG."""
        state: Dict[Symbol, int] = {}  # 0 = visiting, 1 = done

        for origin in self.rules:
            if origin in state:
                continue
            stack: List[Tuple[Symbol, Iterator[Symbol]]] = [
                (origin, iter(called[origin]))
            ]
            state[origin] = 0
            while stack:
                head, it = stack[-1]
                advanced = False
                for callee in it:
                    status = state.get(callee)
                    if status == 0:
                        raise GrammarError(
                            f"grammar is recursive: cycle through {callee!r}"
                        )
                    if status is None:
                        state[callee] = 0
                        stack.append((callee, iter(called[callee])))
                        advanced = True
                        break
                if not advanced:
                    state[head] = 1
                    stack.pop()
