"""SLCF tree grammars: model, derivation, properties, navigation."""

from repro.grammar.derivation import (
    DecompressionBudgetExceeded,
    expand,
    inline_all_references,
    inline_at,
)
from repro.grammar.index import GrammarIndex
from repro.grammar.kernel import (
    GrammarKernel,
    RulePack,
    SymbolTable,
    global_symbol_table,
)
from repro.grammar.navigation import (
    PathStep,
    generates_same_tree,
    grammar_generates_tree,
    resolve_preorder_path,
    stream_preorder,
)
from repro.grammar.properties import (
    anti_sl_order,
    collect_garbage,
    dead_nonterminals,
    generated_node_count,
    parameter_segments,
    reference_counts,
    references,
    sl_order,
    usage,
)
from repro.grammar.serialize import (
    GrammarFormatError,
    format_grammar,
    parse_grammar,
)
from repro.grammar.sharding import ShardManager, ShardStats
from repro.grammar.slcf import Grammar, GrammarError, GrammarSizeTracker
from repro.grammar.strings import (
    gn_family_grammar,
    grammar_string,
    string_grammar,
)

__all__ = [
    "Grammar",
    "GrammarError",
    "GrammarIndex",
    "GrammarKernel",
    "GrammarSizeTracker",
    "RulePack",
    "SymbolTable",
    "global_symbol_table",
    "ShardManager",
    "ShardStats",
    "inline_at",
    "inline_all_references",
    "expand",
    "DecompressionBudgetExceeded",
    "references",
    "reference_counts",
    "usage",
    "sl_order",
    "anti_sl_order",
    "parameter_segments",
    "generated_node_count",
    "dead_nonterminals",
    "collect_garbage",
    "stream_preorder",
    "generates_same_tree",
    "grammar_generates_tree",
    "resolve_preorder_path",
    "PathStep",
    "format_grammar",
    "parse_grammar",
    "GrammarFormatError",
    "string_grammar",
    "grammar_string",
    "gn_family_grammar",
]
