"""Derived grammar properties used throughout the compressor.

* ``references`` -- the paper's ``refG(Q)``: every ``Q``-labeled node in any
  right-hand side, with the rule it occurs in.
* ``usage`` -- how many times each nonterminal contributes to ``valG(S)``:
  ``usage(S) = 1`` and ``usage(Q) = sum over (R,n) in refG(Q) of usage(R)``.
* ``sl_order`` / ``anti_sl_order`` -- topological orders of the call DAG.
  ``Q`` before ``R`` in anti-SL order iff ``R`` (transitively) calls ``Q``,
  i.e. anti-SL order processes callees first (bottom-up).
* ``parameter_segments`` -- the paper's ``size(A,0..k)``: node counts of
  ``valG(A)`` before ``y1``, between consecutive parameters, and after
  ``yk``, in preorder (Section III-A); the basis of path isolation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.grammar.slcf import Grammar, GrammarError
from repro.trees.node import Node
from repro.trees.symbols import Symbol

__all__ = [
    "references",
    "reference_counts",
    "usage",
    "sl_order",
    "anti_sl_order",
    "parameter_segments",
    "generated_node_count",
    "generated_size_of_subtree",
    "dead_nonterminals",
    "collect_garbage",
]


def references(grammar: Grammar) -> Dict[Symbol, List[Tuple[Symbol, Node]]]:
    """``refG``: nonterminal -> list of ``(containing rule, node)`` pairs.

    Every rule head gets an entry, possibly empty.
    """
    refs: Dict[Symbol, List[Tuple[Symbol, Node]]] = {
        head: [] for head in grammar.rules
    }
    for head, rhs in grammar.rules.items():
        stack = [rhs]
        while stack:
            node = stack.pop()
            if node.symbol.is_nonterminal:
                refs[node.symbol].append((head, node))
            stack.extend(node.children)
    return refs


def reference_counts(grammar: Grammar) -> Dict[Symbol, int]:
    """``|refG(Q)|`` for every rule head."""
    counts: Dict[Symbol, int] = {head: 0 for head in grammar.rules}
    for rhs in grammar.rules.values():
        stack = [rhs]
        while stack:
            node = stack.pop()
            if node.symbol.is_nonterminal:
                counts[node.symbol] += 1
            stack.extend(node.children)
    return counts


def sl_order(grammar: Grammar) -> List[Symbol]:
    """Topological order with callers before callees (start-ish first)."""
    callees: Dict[Symbol, List[Symbol]] = {}
    for head, rhs in grammar.rules.items():
        seen: List[Symbol] = []
        seen_set = set()
        stack = [rhs]
        while stack:
            node = stack.pop()
            symbol = node.symbol
            if symbol.is_nonterminal and symbol not in seen_set:
                seen_set.add(symbol)
                seen.append(symbol)
            stack.extend(node.children)
        callees[head] = seen

    order: List[Symbol] = []
    state: Dict[Symbol, int] = {}  # 0 visiting, 1 done

    for origin in grammar.rules:
        if origin in state:
            continue
        stack: List[Tuple[Symbol, int]] = [(origin, 0)]
        state[origin] = 0
        while stack:
            head, child_index = stack[-1]
            succ = callees[head]
            advanced = False
            while child_index < len(succ):
                nxt = succ[child_index]
                child_index += 1
                status = state.get(nxt)
                if status == 0:
                    raise GrammarError(
                        f"grammar is recursive: cycle through {nxt!r}"
                    )
                if status is None:
                    stack[-1] = (head, child_index)
                    state[nxt] = 0
                    stack.append((nxt, 0))
                    advanced = True
                    break
            if not advanced:
                state[head] = 1
                order.append(head)
                stack.pop()
    order.reverse()
    return order


def anti_sl_order(grammar: Grammar) -> List[Symbol]:
    """Bottom-up order: callees before callers (RETRIEVEOCCS order)."""
    order = sl_order(grammar)
    order.reverse()
    return order


def usage(grammar: Grammar) -> Dict[Symbol, int]:
    """``usageG``: how often each rule participates in generating ``valG(S)``.

    Rules unreachable from the start symbol get usage 0.
    """
    result: Dict[Symbol, int] = {head: 0 for head in grammar.rules}
    result[grammar.start] = 1
    for head in sl_order(grammar):
        weight = result[head]
        if weight == 0:
            continue
        stack = [grammar.rules[head]]
        while stack:
            node = stack.pop()
            if node.symbol.is_nonterminal:
                result[node.symbol] += weight
            stack.extend(node.children)
    return result


def parameter_segments(grammar: Grammar) -> Dict[Symbol, List[int]]:
    """``size(A, 0..k)`` for every rule head ``A`` of rank ``k``.

    Entry ``segments[A][i]`` is the number of nodes of ``valG(A)`` strictly
    between parameter ``yi`` and ``y(i+1)`` in preorder (with the usual
    boundary conventions); parameters themselves are not counted.  The sum
    of the segments is therefore ``|valG(A)|`` in nodes.
    """
    segments: Dict[Symbol, List[int]] = {}
    for head in anti_sl_order(grammar):
        segments[head] = _segments_of_rhs(grammar.rules[head], head, segments)
    return segments


def _segments_of_rhs(
    rhs: Node,
    head: Symbol,
    segments: Dict[Symbol, List[int]],
) -> List[int]:
    result: List[int] = []
    current = 0
    # Stack items: a Node still to visit, or an int to add to the running
    # segment (a callee's trailing segment after one of its arguments).
    stack: List[Union[Node, int]] = [rhs]
    while stack:
        item = stack.pop()
        if isinstance(item, int):
            current += item
            continue
        symbol = item.symbol
        if symbol.is_parameter:
            result.append(current)
            current = 0
        elif symbol.is_terminal:
            current += 1
            stack.extend(reversed(item.children))
        else:
            callee = segments.get(symbol)
            if callee is None:
                raise GrammarError(
                    f"rule {head!r} uses {symbol!r} before it is defined "
                    "(not in anti-SL order?)"
                )
            current += callee[0]
            interleaved: List[Union[Node, int]] = []
            for index, child in enumerate(item.children, start=1):
                interleaved.append(child)
                interleaved.append(callee[index])
            stack.extend(reversed(interleaved))
    result.append(current)
    if len(result) != head.rank + 1:
        raise GrammarError(
            f"rule {head!r}: found {len(result) - 1} parameters, "
            f"rank is {head.rank}"
        )
    return result


def generated_node_count(grammar: Grammar) -> int:
    """``|valG(S)|`` in nodes, computed without decompression."""
    segments = parameter_segments(grammar)
    return sum(segments[grammar.start])


def generated_size_of_subtree(
    node: Node,
    segments: Dict[Symbol, List[int]],
) -> int:
    """Nodes of the tree a RHS subtree generates (parameters count as 0).

    Parameters contribute nothing: the caller is responsible for whatever
    gets substituted.  Used by path isolation to steer towards a target
    preorder index.
    """
    total = 0
    stack = [node]
    while stack:
        current = stack.pop()
        symbol = current.symbol
        if symbol.is_parameter:
            continue
        if symbol.is_terminal:
            total += 1
        else:
            total += sum(segments[symbol])
        stack.extend(current.children)
    return total


def dead_nonterminals(grammar: Grammar) -> List[Symbol]:
    """Rule heads unreachable from the start rule."""
    return [head for head, count in usage(grammar).items() if count == 0]


def collect_garbage(grammar: Grammar) -> int:
    """Drop rules unreachable from the start symbol; return how many."""
    dead = dead_nonterminals(grammar)
    for head in dead:
        grammar.remove_rule(head)
    return len(dead)
