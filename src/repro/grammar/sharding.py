"""Spine sharding: bounded-width start rules via balanced shard chains.

Under sustained update traffic every path isolation inlines rule bodies
into the start rule, so the start RHS grows without bound -- and every
isolation, index recompute, and residual rule walk is ``O(|start RHS|)``,
silently degrading the paper's O(depth) update claim to O(N) at the root.
Maneth & Sebastian's structural self-indexes keep navigation logarithmic
by keeping the grammar *spine* balanced; Leighton & Barbosa's XML
compressors get their bounds from controlling production width.  This
module applies the same discipline to the mutable start rule:

* When a *spine rule* (the start rule or a shard) exceeds the width
  budget -- more than ``2 * width`` RHS nodes -- :class:`ShardManager`
  splits it into fresh rank-``<=1`` **shard rules**.  The split walks
  the rule body's *spine path* (towards its parameter if it has one,
  else along heavy children), carves every sizable off-path subtree into
  a rank-0 shard, cuts the path itself into ``~width``-node segments
  that become rank-1 *chunk* rules (the segment's continuation replaced
  by ``y1``), and rewrites the body as their composition
  ``Ch1(Ch2(... Chm ...))``.  A composition chain that is itself wider
  than the budget is re-chunked the same way, so a start RHS of ``n``
  nodes becomes a *balanced* shard hierarchy of depth
  ``O(log^2(n / width))`` whose rules all have ``O(width)`` nodes --
  the ``S -> Sh1(Sh2(...))`` shape, nested.

* Each shard is referenced **exactly once**, from its parent spine rule.
  That makes in-place mutation of a shard body semantically local: path
  isolation that lands in one shard re-isolates only that shard's
  ``O(width)`` body (see :func:`repro.updates.path_isolation.isolate`),
  and the persistent indexes see one shard eviction plus its
  ``O(log)``-deep ancestor chain instead of a whole-start invalidation.

* A post-epoch :meth:`reshard` pass -- hooked into the same place as the
  auto-recompress policy -- rebalances *only the rules the epoch
  touched*: rules that drifted past ``2 * width`` are re-split, shards
  that fell below ``width // 2`` are merged back into their parent
  (which is then itself re-checked).  Splits and merges go through the
  grammar observer channel rule by rule, so the structural, label, and
  occurrence indexes treat them as ordinary local events -- never a
  wholesale invalidation.

Recompression interacts through the *barrier* contract (see
:class:`repro.core.resolve.Resolver`): shard reference edges are never
censused and never resolved through, so GrammarRePair compresses shard
interiors -- and everything below them -- while the spine skeleton stays
put; the pruning phase receives the shard heads as protected rules so the
single-reference shards are not inlined away.

The manager is deliberately oblivious to *where* inside its parent a
shard reference sits: digram replacement may bury the reference under a
fresh digram rule application within the same spine rule, which is fine
-- merging locates the reference by a scan of the parent body
(``O(width)``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

from repro.grammar.slcf import Grammar, GrammarError
from repro.obs.metrics import NULL_METRIC
from repro.trees.node import Node, node_count
from repro.trees.symbols import Symbol

__all__ = [
    "ShardManager", "ShardStats", "DEFAULT_SHARD_WIDTH",
    "DEFAULT_MERGE_HYSTERESIS", "MIN_SHARD_WIDTH",
]

#: Default width budget (RHS nodes) for spine rules.  At the EXI-Weblog
#: benchmark scale this keeps isolation and index recompute around a few
#: hundred nodes per update while creating only a handful of shard levels.
DEFAULT_SHARD_WIDTH = 256

#: Widths below this make the heavy-path cut degenerate (a cut must be
#: able to carve out a multi-node subtree strictly inside the rule body).
MIN_SHARD_WIDTH = 8

#: Split/merge hysteresis: a shard minted (or re-shaped) by a split is
#: not merged back for this many subsequent reshard passes.  Append
#: traffic that oscillates a rule around the width budget otherwise
#: thrashes -- bench_shard showed splits ~ merges ~ 70 per 2k appends --
#: paying an O(width) inline for work the next pass redoes.  Zero
#: disables the damping (the historical eager-merge behavior).
DEFAULT_MERGE_HYSTERESIS = 4


@dataclass
class ShardStats:
    """Lifetime instrumentation of one :class:`ShardManager`.

    ``splits`` counts spine rules that were split (one split may mint
    several shards -- ``shards_created`` counts those); ``merges`` counts
    shards inlined back into their parent.  ``reshard_runs`` only counts
    invocations that had touched spine rules to examine.
    """

    splits: int = 0
    merges: int = 0
    shards_created: int = 0
    shards_removed: int = 0
    reshard_runs: int = 0
    #: Widths (RHS nodes) of spine rules observed at reshard time, before
    #: rebalancing -- the drift the policy is reacting to.
    max_width_seen: int = 0
    #: Shard heads removed by garbage collection (a delete took the whole
    #: shard subtree with it) rather than by an explicit merge.
    collected: int = 0
    #: Merges the split/merge hysteresis suppressed: the shard was under
    #: the merge threshold but had been split-minted within the last
    #: ``merge_hysteresis`` rebalancing epochs.
    merges_suppressed: int = 0
    #: Reshard passes that performed at least one split or merge.  This
    #: -- not ``reshard_runs`` -- is the hysteresis clock: reshard runs
    #: after *every* update epoch (usually finding nothing to do), so a
    #: pass-counted window would expire within a handful of updates;
    #: counting structural events makes "the last K passes" mean "the
    #: last K times the hierarchy actually moved".
    rebalance_epochs: int = 0
    #: The most recent rebalancing actions (debugging aid).  Bounded: a
    #: long-lived document performs one action per drifted rule forever,
    #: and the manager must not accumulate memory alongside the
    #: O(width)-bounded grammar it exists to guarantee.
    history: Deque[str] = field(default_factory=lambda: deque(maxlen=64))

    def to_dict(self) -> dict:
        """Flat numeric view (the shared stats-object protocol)."""
        return {
            "splits": self.splits,
            "merges": self.merges,
            "shards_created": self.shards_created,
            "shards_removed": self.shards_removed,
            "reshard_runs": self.reshard_runs,
            "max_width_seen": self.max_width_seen,
            "collected": self.collected,
            "merges_suppressed": self.merges_suppressed,
            "rebalance_epochs": self.rebalance_epochs,
        }


class ShardManager:
    """Keeps the spine rules of one mutable grammar inside a width budget.

    One manager is owned per grammar (by
    :class:`repro.api.CompressedXml` when constructed with
    ``shard_width``); it registers as a grammar observer to track which
    spine rules each mutation epoch touched, and :meth:`reshard`
    rebalances exactly those.

    ``heads`` is the live set of shard rule heads.  It doubles as

    * the *spine* set path isolation descends through without inlining
      (:func:`repro.updates.path_isolation.isolate` ``spine=``),
    * the *barrier* set recompression must not resolve through
      (:class:`repro.core.grammar_repair.GrammarRePair` ``barriers=``),
    * the *protected* set the pruning phase must not inline
      (handled via the same ``barriers`` parameter).
    """

    def __init__(
        self,
        grammar: Grammar,
        width: int = DEFAULT_SHARD_WIDTH,
        prefix: str = "Sp",
        merge_hysteresis: int = DEFAULT_MERGE_HYSTERESIS,
    ) -> None:
        if width < MIN_SHARD_WIDTH:
            raise ValueError(
                f"shard width must be >= {MIN_SHARD_WIDTH}, got {width}"
            )
        self._grammar = grammar
        self.width = width
        self.prefix = prefix
        self.merge_hysteresis = merge_hysteresis
        self.heads: Set[Symbol] = set()
        # shard head -> spine rule whose RHS holds its single reference.
        self._parent: Dict[Symbol, Symbol] = {}
        # Spine rules mutated since the last reshard (observer-fed).
        self._touched: Set[Symbol] = set()
        # shard head -> reshard pass (stats.reshard_runs value) in which a
        # split minted or re-shaped it; merges are damped against it.
        self._split_pass: Dict[Symbol, int] = {}
        # Heads whose merge the window suppressed: reshard() only
        # examines touched rules, and a suppressed shard may never be
        # touched again -- recompression_settled() re-queues these so
        # the post-compression consolidation pass reconsiders them.
        self._merge_deferred: Set[Symbol] = set()
        # Reentrancy guard: the manager's own splits/merges fire observer
        # notifications (for the indexes); they must not re-dirty us.
        self._resharding = False
        self.stats = ShardStats()
        self._m_split = self._m_merge = self._m_demote = NULL_METRIC
        grammar.register_observer(self)
        # The grammar may arrive with an oversized start rule (a freshly
        # compressed document, a loaded grammar file): bring it inside the
        # budget immediately.
        self._touched.add(grammar.start)
        self.reshard()

    @classmethod
    def restore(
        cls,
        grammar: Grammar,
        width: int,
        prefix: str,
        heads: Set[Symbol],
        parents: Dict[Symbol, Symbol],
        merge_hysteresis: int = DEFAULT_MERGE_HYSTERESIS,
    ) -> "ShardManager":
        """Re-attach a manager to a grammar whose shard hierarchy already
        exists (loaded from a snapshot) -- without the constructor's
        initial reshard pass, so a reload performs zero split/merge work.

        The restored hierarchy is verified with :meth:`check_invariants`;
        a snapshot whose shard section does not match its grammar raises
        :class:`~repro.grammar.slcf.GrammarError` here rather than
        corrupting later isolations.
        """
        if width < MIN_SHARD_WIDTH:
            raise ValueError(
                f"shard width must be >= {MIN_SHARD_WIDTH}, got {width}"
            )
        self = cls.__new__(cls)
        self._grammar = grammar
        self.width = width
        self.prefix = prefix
        self.merge_hysteresis = merge_hysteresis
        self.heads = set(heads)
        self._parent = dict(parents)
        self._touched = set()
        self._split_pass = {}
        self._merge_deferred = set()
        self._resharding = False
        self.stats = ShardStats()
        self._m_split = self._m_merge = self._m_demote = NULL_METRIC
        for head in self.heads:
            if head not in grammar.rules:
                raise GrammarError(f"shard head {head!r} has no rule")
        grammar.register_observer(self)
        self.check_invariants()
        return self

    def bind_metrics(self, registry) -> None:
        """Resolve per-action latency histograms against ``registry``.

        Wiring-time resolution: a disabled registry hands back the
        shared null metric and the action sites stay branch-free.
        """
        self._m_split = registry.histogram(
            "repro_reshard_stage_seconds",
            "Latency of one shard rebalancing action",
            stage="split",
        )
        self._m_merge = registry.histogram(
            "repro_reshard_stage_seconds",
            "Latency of one shard rebalancing action",
            stage="merge",
        )
        self._m_demote = registry.histogram(
            "repro_reshard_stage_seconds",
            "Latency of one shard rebalancing action",
            stage="demote",
        )

    def export_state(self):
        """The serializable shard hierarchy: (width, prefix, parent map).

        ``heads`` is implied by the parent map's keys -- every shard has
        exactly one parent spine rule.
        """
        return self.width, self.prefix, dict(self._parent)

    # ------------------------------------------------------------------
    # grammar observer protocol
    # ------------------------------------------------------------------
    def rule_changed(self, head: Symbol) -> None:
        if self._resharding:
            return
        if head is self._grammar.start or head in self.heads:
            self._touched.add(head)

    def rule_relabeled(self, head: Symbol) -> None:
        """A relabel changes no width -- nothing to rebalance."""

    def rule_removed(self, head: Symbol) -> None:
        self._touched.discard(head)
        if head in self.heads:
            # A delete (or garbage collection after one) dropped the
            # shard's single reference together with its subtree; any
            # nested shards lose their references the same way and are
            # reported here one by one.
            self.heads.discard(head)
            self._parent.pop(head, None)
            if not self._resharding:
                self.stats.collected += 1
                self.stats.shards_removed += 1

    def detach(self) -> None:
        self._grammar.unregister_observer(self)

    def __contains__(self, symbol: Symbol) -> bool:
        """Set-like membership: the isolation layer's ``spine`` protocol."""
        return symbol in self.heads

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def grammar(self) -> Grammar:
        return self._grammar

    @property
    def shard_count(self) -> int:
        return len(self.heads)

    def is_shard(self, symbol: Symbol) -> bool:
        return symbol in self.heads

    def spine_rules(self) -> List[Symbol]:
        """The start rule plus every shard head (insertion-independent)."""
        return [self._grammar.start, *self.heads]

    def parent_of(self, head: Symbol) -> Optional[Symbol]:
        """The spine rule holding ``head``'s single reference."""
        return self._parent.get(head)

    def width_of(self, head: Symbol) -> int:
        """Current RHS width (nodes) of a rule."""
        return self._grammar.rule_width(head)

    def max_spine_width(self) -> int:
        """The widest spine rule right now -- the bench's bounded metric."""
        return max(self.width_of(head) for head in self.spine_rules())

    def spine_depth(self) -> int:
        """Longest shard-reference chain below the start rule."""
        depth: Dict[Symbol, int] = {}

        def resolve(head: Symbol) -> int:
            chain: List[Symbol] = []
            current: Optional[Symbol] = head
            while current is not None and current not in depth:
                chain.append(current)
                current = self._parent.get(current)
            base = 0 if current is None else depth[current]
            for link in reversed(chain):
                base += 1
                depth[link] = base
            return depth[head]

        return max((resolve(head) for head in self.heads), default=0)

    def check_invariants(self) -> None:
        """Assert the shard model (tests/debugging; walks the grammar).

        Every shard head must be a rank-``<=1`` rule referenced exactly
        once, from a spine rule; no shard reference may occur outside
        the spine.
        """
        grammar = self._grammar
        refs: Dict[Symbol, List[Symbol]] = {head: [] for head in self.heads}
        for head, rhs in grammar.rules.items():
            stack = [rhs]
            while stack:
                node = stack.pop()
                if node.symbol in refs:
                    refs[node.symbol].append(head)
                stack.extend(node.children)
        spine = set(self.spine_rules())
        for head, owners in refs.items():
            if head.rank > 1:
                raise GrammarError(f"shard {head!r} has rank {head.rank}")
            if len(owners) != 1:
                raise GrammarError(
                    f"shard {head!r} referenced {len(owners)} times "
                    f"(from {owners!r}); must be exactly once"
                )
            if owners[0] not in spine:
                raise GrammarError(
                    f"shard {head!r} referenced from non-spine rule "
                    f"{owners[0]!r}"
                )
            if self._parent.get(head) is not owners[0]:
                raise GrammarError(
                    f"shard {head!r}: parent map says "
                    f"{self._parent.get(head)!r}, reference is in "
                    f"{owners[0]!r}"
                )

    # ------------------------------------------------------------------
    # rank repair (a delete may consume a chunk's continuation hole)
    # ------------------------------------------------------------------
    def repair_ranks(self) -> int:
        """Demote rank-1 shards whose parameter a delete consumed.

        A chunk rule's ``y1`` stands for the document continuation below
        the chunk.  A delete whose subtree extends across that boundary
        legitimately detaches the parameter with the deleted first-child
        chain -- the continuation *is* part of the deleted subtree -- but
        leaves a rank-1 rule with no parameter.  This pass (run by the
        update layer right after deletes, before any index recompute)
        restores the SLCF model: the rule is re-headed at rank 0 and the
        application in its parent drops its argument.  When the parent's
        own parameter sat inside that argument the demotion cascades --
        the delete swallowed several levels of continuation -- ending at
        a rank-0 spine rule by construction.  Returns the number of
        demotions performed.
        """
        grammar = self._grammar
        demoted = 0
        dropped_arguments: List[Node] = []
        for head in [h for h in self._touched if h in self.heads]:
            while (head is not None and head.rank > 0
                   and grammar.has_rule(head)
                   and not self._has_parameter(grammar.rhs(head))):
                demote_started = time.perf_counter()
                head = self._demote(head, dropped_arguments)
                self._m_demote.observe(time.perf_counter() - demote_started)
                demoted += 1
        if dropped_arguments:
            # The dropped continuation arguments may have held the last
            # references to rules (including nested shards).
            from repro.grammar.properties import collect_garbage

            collect_garbage(grammar)
        return demoted

    @staticmethod
    def _has_parameter(root: Node) -> bool:
        stack = [root]
        while stack:
            node = stack.pop()
            if node.symbol.is_parameter:
                return True
            stack.extend(node.children)
        return False

    def _demote(
        self, head: Symbol, dropped_arguments: List[Node]
    ) -> Optional[Symbol]:
        """Re-head a parameter-less rank-1 shard at rank 0 and drop the
        argument of its application.  Returns the owner when the dropped
        argument contained the owner's own parameter (cascade), else
        ``None``."""
        grammar = self._grammar
        owner = self._parent.get(head)
        if owner is None or not grammar.has_rule(owner):  # pragma: no cover
            return None
        application: Optional[Node] = None
        stack = [grammar.rhs(owner)]
        while stack:
            node = stack.pop()
            if node.symbol is head:
                application = node
                break
            stack.extend(node.children)
        if application is None:  # pragma: no cover - invariant violation
            return None
        argument = application.children[0] if application.children else None
        fresh = grammar.alphabet.fresh_nonterminal(0, self.prefix)
        body = grammar.rhs(head)
        self.heads.add(fresh)
        self._parent[fresh] = owner
        for nested, parent in list(self._parent.items()):
            if parent is head:
                self._parent[nested] = fresh
        grammar.set_rule(fresh, body)
        reference = Node(fresh)
        parent = application.parent
        if parent is None:
            grammar.set_rule(owner, reference)
        else:
            grammar.preserve_for_write(owner)
            parent.set_child(application.child_index(), reference)
            grammar.notify_rule_changed(owner)
        self.heads.discard(head)
        self._parent.pop(head, None)
        grammar.remove_rule(head)
        self._touched.add(fresh)
        self._touched.add(owner)
        self.stats.history.append(f"demote {head.name} -> {fresh.name}")
        if argument is not None:
            argument.parent = None
            dropped_arguments.append(argument)
            if self._has_parameter(argument):
                return owner
        return None

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def reshard(self) -> int:
        """Rebalance the spine rules touched since the last call.

        Returns the number of split + merge actions performed.  Cost is
        ``O(width of the touched rules)`` when nothing drifted out of
        bounds (one node-count walk per touched rule), and proportional
        to the rebalanced mass otherwise -- never to the document or the
        untouched grammar.
        """
        if not self._touched:
            return 0
        touched = self._touched
        self._touched = set()
        grammar = self._grammar
        stats = self.stats
        stats.reshard_runs += 1
        if self._split_pass:
            # Expired hysteresis marks (and heads merged/collected away).
            horizon = stats.rebalance_epochs - self.merge_hysteresis
            for head in [h for h, p in self._split_pass.items()
                         if p < horizon or h not in self.heads]:
                del self._split_pass[head]
        actions = 0
        upper = 2 * self.width
        lower = self.width // 2
        work = list(touched)
        self._resharding = True
        try:
            while work:
                head = work.pop()
                if head is not grammar.start and head not in self.heads:
                    continue  # merged or collected while queued
                if not grammar.has_rule(head):
                    continue
                width = node_count(grammar.rhs(head))
                if width > stats.max_width_seen:
                    stats.max_width_seen = width
                if width > upper:
                    split_started = time.perf_counter()
                    owner = self._split(head, width)
                    self._m_split.observe(time.perf_counter() - split_started)
                    actions += 1
                    if owner is not None:
                        # A shard split grafts its chunk composition into
                        # the parent (width moves *up*, depth stays put);
                        # the parent may now be oversized itself.
                        work.append(owner)
                elif head in self.heads and width < lower:
                    # Hysteresis never holds a critically small shard.
                    # In the binary encoding a shard down to one leaf
                    # element has body ``elem(⊥, y1)`` -- 3 nodes --
                    # and deleting that element would leave the bare
                    # parameter SLCF rejects.  Leaf deletes shrink a
                    # body 2 nodes at a time through a reshard pass
                    # each, so merging unconditionally at width <= 3
                    # always fires before the fatal delete.
                    if width > 3 and self._merge_suppressed(head):
                        stats.merges_suppressed += 1
                        self._merge_deferred.add(head)
                        continue
                    merge_started = time.perf_counter()
                    owner = self._merge(head)
                    self._m_merge.observe(time.perf_counter() - merge_started)
                    if owner is not None:
                        actions += 1
                        # The parent absorbed the shard's body: it may
                        # now be oversized (or itself mergeable).
                        work.append(owner)
        finally:
            self._resharding = False
        if actions:
            stats.rebalance_epochs += 1
        return actions

    def recompression_settled(self) -> None:
        """Forget the merge-damping marks after a recompression.

        The suppression window damps *traffic* churn -- appends and
        deletes oscillating a shard around the width budget.  A
        recompression re-derives body widths wholesale: a shard it
        pushed under the merge threshold is thin because its content
        compressed, not because a dip is about to refill it.  Holding
        such shards apart freezes the post-compression consolidation
        (the hysteresis clock only advances on passes that do work,
        which suppression prevents) and lets the reference depth
        ratchet up under sustained appends; dropping the marks lets the
        very next reshard pass fold them back into their parents.

        Suppressed heads are re-queued as touched work: a shard whose
        merge was declined while the window was open may never be
        touched by traffic again, and the consolidation pass only
        examines touched rules.
        """
        self._split_pass.clear()
        self._touched |= self._merge_deferred
        self._merge_deferred = set()

    def _merge_suppressed(self, head: Symbol) -> bool:
        """Damp split/merge thrash: a head split-minted within the last
        ``merge_hysteresis`` rebalancing epochs (reshard passes that
        did structural work) stays put even while under the merge
        threshold (append traffic will likely refill it)."""
        minted = self._split_pass.get(head)
        return (
            minted is not None
            and self.stats.rebalance_epochs - minted
            < self.merge_hysteresis
        )

    # ------------------------------------------------------------------
    # splitting
    # ------------------------------------------------------------------
    def _split(self, owner: Symbol, owner_width: int) -> Optional[Symbol]:
        """Split an oversized spine rule; returns the rule to re-check.

        The start rule decomposes *in place*: its body becomes a chunk
        composition, adding one hierarchy level.  A **shard** split
        instead grafts the composition into its parent at the reference
        site (B-tree style): the shard rule disappears, its chunks
        become the parent's direct children, and the few nodes of the
        composition expression are the parent's width growth -- so
        sustained growth at one document position (the append-tail
        regime) propagates *width up the spine*, splitting ancestors
        amortizedly, instead of nesting ever-deeper shard chains at the
        hot spot.  Keeps the reference depth logarithmic under exactly
        the traffic that would otherwise degrade it.

        After a split every rule written has at most ``~2 * width``
        nodes; the returned parent (for shard grafts) may have grown
        past the budget and must be re-examined by the caller.
        """
        grammar = self._grammar
        before = self.stats.shards_created
        before_heads = set(self.heads)
        body = grammar.rhs(owner)
        parent_head = self._parent.get(owner)
        recheck: Optional[Symbol] = None
        if owner is grammar.start or parent_head is None \
                or not grammar.has_rule(parent_head):
            built = self._decompose(body)
            self._install(owner, built)
        else:
            built = self._decompose(body)
            if built is body:
                # Light cuts alone brought the body under budget; no
                # composition to graft.
                self._install(owner, built)
            else:
                self._graft(owner, parent_head, built)
                recheck = parent_head
        created = self.stats.shards_created - before
        # Hysteresis marks: everything this split minted (and the split
        # rule itself, when it survived as a shard) starts a merge
        # grace period -- see _merge_suppressed.
        minted_at = self.stats.rebalance_epochs
        for head in self.heads:
            if head not in before_heads:
                self._split_pass[head] = minted_at
        if owner in self.heads:
            self._split_pass[owner] = minted_at
        self.stats.splits += 1
        self.stats.history.append(
            f"split {owner.name}[{owner_width}] +{created}"
        )
        return recheck

    def _graft(self, head: Symbol, parent_head: Symbol,
               expression: Node) -> None:
        """Replace ``head``'s reference in its parent by the composition
        ``expression`` its body decomposed into, and drop the rule."""
        grammar = self._grammar
        rhs = grammar.rhs(parent_head)
        reference: Optional[Node] = None
        stack = [rhs]
        while stack:
            node = stack.pop()
            if node.symbol is head:
                reference = node
                break
            stack.extend(node.children)
        if reference is None:  # pragma: no cover - invariant violation
            self._install(head, expression)
            return
        if head.rank:
            # Substitute the application's argument into the
            # composition's parameter leaf (the expression generates the
            # old body, whose y1 stood for exactly that argument).
            argument = reference.children[0]
            hole: Optional[Node] = None
            scan = [expression]
            while scan:
                node = scan.pop()
                if node.symbol.is_parameter:
                    hole = node
                    break
                scan.extend(node.children)
            assert hole is not None and hole.parent is not None
            argument.parent = None
            hole.parent.set_child(hole.child_index(), argument)
        # Adopt the expression's shard references (the chunk heads and
        # any shards riding along) into the parent.
        scan = [expression]
        while scan:
            node = scan.pop()
            if node.symbol in self.heads:
                self._parent[node.symbol] = parent_head
            scan.extend(node.children)
        if reference.parent is None:
            grammar.set_rule(parent_head, expression)
        else:
            reference.parent.set_child(
                reference.child_index(), expression
            )
            grammar.notify_rule_changed(parent_head)
        self.heads.discard(head)
        self._parent.pop(head, None)
        grammar.remove_rule(head)

    def _install(self, head: Symbol, body: Node) -> None:
        """Install a freshly built rule body, adopting the shard
        references it contains into the parent map."""
        scan = [body]
        heads = self.heads
        while scan:
            node = scan.pop()
            if node.symbol in heads:
                self._parent[node.symbol] = head
            scan.extend(node.children)
        self._grammar.set_rule(head, body)

    @staticmethod
    def _subtree_sizes(root: Node) -> Dict[int, int]:
        """Post-order node counts per subtree, keyed by ``id(node)``."""
        sizes: Dict[int, int] = {}
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if not expanded:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))
                continue
            sizes[id(node)] = 1 + sum(
                sizes[id(child)] for child in node.children
            )
        return sizes

    def _decompose(self, root: Node) -> Node:
        """Rewrite a rule body (at most one parameter) to ``O(width)``
        nodes, minting shard rules for everything carved out.

        One round: follow the body's *spine path* -- towards the
        parameter when there is one (so no chunk ever needs two holes),
        else along heavy children -- then

        1. carve every off-path subtree larger than ``width // 4`` into
           a rank-0 shard (recursively decomposed),
        2. cut the path into segments of ``~width`` accumulated nodes;
           each segment becomes a rank-1 chunk rule whose ``y1`` stands
           for its continuation (the last segment keeps the original
           parameter instead, if any),
        3. return the segments' composition ``Ch1(Ch2(...Chm(...)))``.

        The composition chain has one node per segment; when it is still
        over budget the loop re-chunks it (its spine path is the chain
        itself), adding one hierarchy level per iteration -- balance for
        the sibling-chain bodies update traffic produces.
        """
        from repro.trees.symbols import parameter_symbol

        grammar = self._grammar
        upper = 2 * self.width
        light_max = max(1, self.width // 4)
        while True:
            sizes = self._subtree_sizes(root)
            if sizes[id(root)] <= upper:
                return root

            # The spine path: root towards the parameter leaf, or along
            # heavy children to a leaf when the body has no parameter.
            hole: Optional[Node] = None
            scan = [root]
            while scan:
                node = scan.pop()
                if node.symbol.is_parameter:
                    hole = node
                    break
                scan.extend(node.children)
            path: List[Node] = []
            if hole is not None:
                node = hole.parent
                while node is not None:
                    path.append(node)
                    node = node.parent
                path.reverse()
            else:
                node = root
                while True:
                    path.append(node)
                    heaviest = None
                    for child in node.children:
                        if heaviest is None or \
                                sizes[id(child)] > sizes[id(heaviest)]:
                            heaviest = child
                    if heaviest is None:
                        break
                    node = heaviest
            on_path = {id(node) for node in path}
            if hole is not None:
                on_path.add(id(hole))

            # 1. Carve big off-path subtrees into rank-0 shards.  The
            # recursion bottoms out: an off-path subtree never contains
            # the parameter, and heavy-path rounds halve it.
            for node in path:
                for slot, child in enumerate(node.children, start=1):
                    if id(child) in on_path:
                        continue
                    if sizes[id(child)] <= light_max:
                        continue
                    shard = grammar.alphabet.fresh_nonterminal(
                        0, self.prefix
                    )
                    child.parent = None
                    node.set_child(slot, Node(shard))
                    self.heads.add(shard)
                    self.stats.shards_created += 1
                    self._install(shard, self._decompose(child))
            sizes = self._subtree_sizes(root)
            if sizes[id(root)] <= upper:
                return root

            # 2. Segment the path by accumulated weight (a path node
            # plus its now-small inline off-path subtrees).
            boundaries: List[int] = [0]
            accumulated = 0
            for index, node in enumerate(path):
                weight = sizes[id(node)]
                if index + 1 < len(path):
                    weight -= sizes[id(path[index + 1])]
                if accumulated and accumulated + weight > upper:
                    boundaries.append(index)
                    accumulated = 0
                accumulated += weight
                if accumulated >= self.width and index + 1 < len(path):
                    boundaries.append(index + 1)
                    accumulated = 0
            if boundaries and boundaries[-1] == len(path):
                boundaries.pop()
            if len(boundaries) < 2:
                return root  # cannot be segmented further

            # 3. Detach the segments innermost-first; each detachment
            # leaves a ``y1`` hole in the segment before it.
            chunk_heads: List[Symbol] = []
            for index in reversed(boundaries[1:]):
                first = path[index]
                parent = first.parent
                slot = first.child_index()
                first.parent = None
                parent.set_child(slot, Node(parameter_symbol(1)))
                rank = 1  # the continuation hole inserted above, or ...
                if index == boundaries[-1] and hole is None:
                    rank = 0  # ... a path that simply ends at a leaf
                head = grammar.alphabet.fresh_nonterminal(rank, self.prefix)
                self.heads.add(head)
                self.stats.shards_created += 1
                self._install(head, first)
                chunk_heads.append(head)
            top = grammar.alphabet.fresh_nonterminal(1, self.prefix)
            self.heads.add(top)
            self.stats.shards_created += 1
            self._install(top, path[0])
            chunk_heads.append(top)

            # Composition: top(next(...(last[...]))), innermost first.
            chunk_heads.reverse()  # outermost (the old root) first
            expression: Optional[Node] = None
            for head in reversed(chunk_heads):
                if expression is None:
                    expression = (
                        Node(head, [Node(parameter_symbol(1))])
                        if head.rank else Node(head)
                    )
                else:
                    expression = Node(head, [expression])
            assert expression is not None
            root = expression

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def _merge(self, head: Symbol) -> Optional[Symbol]:
        """Inline an underweight shard back into its parent spine rule.

        Returns the parent head (so the caller can re-check its width),
        or ``None`` when the shard's reference cannot be located (the
        shard is then left alone -- correctness never depends on
        merging).
        """
        from repro.grammar.derivation import inline_at

        grammar = self._grammar
        owner = self._parent.get(head)
        if owner is None or not grammar.has_rule(owner) \
                or not grammar.has_rule(head):
            return None
        rhs = grammar.rhs(owner)
        reference: Optional[Node] = None
        stack = [rhs]
        while stack:
            node = stack.pop()
            if node.symbol is head:
                reference = node
                break
            stack.extend(node.children)
        if reference is None:  # pragma: no cover - invariant violation
            return None
        was_root = reference.parent is None
        new_root, _ = inline_at(grammar, reference)
        if was_root:
            grammar.set_rule(owner, new_root)
        else:
            grammar.notify_rule_changed(owner)
        # Nested shard references now live in the parent's RHS (inlining
        # copied the body; the reference *symbols* are unchanged):
        # re-parent them before dropping the rule.
        for nested, parent in list(self._parent.items()):
            if parent is head:
                self._parent[nested] = owner
        self.heads.discard(head)
        self._parent.pop(head, None)
        grammar.remove_rule(head)
        self.stats.merges += 1
        self.stats.shards_removed += 1
        self.stats.history.append(f"merge {head.name} -> {owner.name}")
        return owner
