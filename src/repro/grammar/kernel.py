"""Flat integer-array rule kernel for the descent/walk inner loops.

Every hot read path of this code base -- element addressing, query walks,
preorder resolution, windowed serialization -- descends the derivation by
walking rule bodies.  The object-graph form of that walk pays, per step,
several attribute loads (``node.symbol``), property calls
(``symbol.is_parameter`` & friends), an ``id()``-keyed dict probe into the
per-rule size table, and a method call for the parameter-adjusted subtree
sizes.  This module packs each rule body once into parallel ``array('l')``
segments -- the cache-friendly integer-sequence representation of Maneth &
Sebastian's structural self-indexes -- so the same descents become integer
compares and C-array reads:

* :class:`SymbolTable` -- process-wide symbol interning (symbol object ->
  small int id, identity-keyed like the symbols themselves),
* :class:`RulePack` -- one rule body in preorder as parallel arrays:
  ``(kind, symbol id, first-child, next-sibling, subtree-node-count,
  subtree-element-count)`` per RHS node, aligned with (and built from) the
  owning :class:`~repro.grammar.index.GrammarIndex` tables, plus parallel
  object lists so kernel descents still return live ``Node``/``Symbol``
  references and :class:`~repro.grammar.navigation.PathStep` paths,
* :class:`GrammarKernel` -- the per-index pack cache: built lazily per
  rule, evicted per rule through the same observer events the persistent
  indexes ride (``set_rule``/``remove_rule``/in-place rewrites cascade
  through ``GrammarIndex._evict``; relabels evict just the one pack whose
  cached symbol ids went stale), never wholesale on the incremental path,
* the kernel walk functions the index/query/navigation layers dispatch to
  (:func:`kernel_locate_element`, :func:`kernel_resolve_preorder`,
  :func:`kernel_iter_element_symbols`, :func:`kernel_stream_preorder`,
  :func:`kernel_stream_elements`).

Epoch/MVCC interplay
--------------------
Packs reference the live rule bodies, so their lifetime must match the
object tables': any structural mutation evicts the rule's pack along with
its size tables.  A pinned :class:`~repro.view.SnapshotView` owns its own
:class:`GrammarIndex` over a frozen grammar (private, stable copy-on-write
bodies), hence its own kernel whose packs can never be invalidated --
pinned readers keep their flat tables exactly like the CoW rule tables.
On the *live* document the kernel stands down while reader pins exist
(``grammar._reader_pins``): the object descent's ``rhs()`` reads double as
copy-on-write preservation points there (see ``_locate_element``), and the
flat walk deliberately performs no rule-body reads.

Fallback
--------
The object-graph path remains fully supported: construct the index with
``use_kernel=False``, set ``REPRO_USE_KERNEL=0`` in the environment, or do
nothing for documents smaller than ``min_doc_elements`` -- their descents
bottom out after a handful of steps, too few for packing to amortize.
(The gate is on the *document*, not the start rule: a well-compressed
start rule is a handful of RHS nodes regardless of document size.)
Interior rules are always packed on demand (one O(width) walk per rule,
reused by every later descent).
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

from repro.grammar.navigation import PathStep
from repro.trees.symbols import Symbol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.grammar.index import GrammarIndex
    from repro.query.label_index import LabelIndex

__all__ = [
    "SymbolTable",
    "RulePack",
    "GrammarKernel",
    "global_symbol_table",
    "kernel_enabled_by_env",
    "DEFAULT_MIN_DOC_ELEMENTS",
    "kernel_locate_element",
    "kernel_resolve_preorder",
    "kernel_iter_element_symbols",
    "kernel_stream_preorder",
    "kernel_stream_elements",
]

#: RHS-node kind codes (the ``kind`` array): integer compares replace the
#: ``is_terminal``/``is_parameter``/``is_bottom`` property-call chain.
KIND_BOTTOM = 0
KIND_ELEMENT = 1
KIND_NONTERMINAL = 2
KIND_PARAMETER = 3

#: Documents with fewer elements than this keep the object-graph
#: descent: every walk terminates after a handful of steps, so packing
#: buys nothing (the automatic small-document fallback).  The gate is
#: per *document* -- a compressed start rule is tiny even for a huge
#: document, so rule width says nothing about descent length.
DEFAULT_MIN_DOC_ELEMENTS = 64


def kernel_enabled_by_env() -> bool:
    """The process-wide default: on unless ``REPRO_USE_KERNEL`` disables
    it (the fallback CI job runs the whole tier-1 suite with ``0``)."""
    return os.environ.get("REPRO_USE_KERNEL", "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


class SymbolTable:
    """Process-wide interning of :class:`Symbol` objects to small ints.

    Symbols are already interned per :class:`~repro.trees.symbols.Alphabet`
    and compared by identity, so the table is identity-keyed too: two
    alphabets (e.g. a live document and a snapshot reload) may both intern
    a ``"entry"/2`` terminal and receive distinct ids -- ids are stable
    per symbol *object*, which is exactly the equality the packs need.
    The table only ever grows (append-only), so ids never get reused and
    packs from different documents can safely coexist in one process.
    """

    __slots__ = ("_ids", "_symbols", "info")

    def __init__(self) -> None:
        self._ids: Dict[Symbol, int] = {}
        self._symbols: List[Symbol] = []
        #: pack-build memo: Symbol -> ``(kind, code, rank, name)``.
        #: Symbols are immutable (relabels intern fresh objects), so
        #: entries never go stale; the dict collapses the per-node
        #: property cascade of a pack build into one probe.
        self.info: Dict[Symbol, Tuple[int, int, int, str]] = {}

    def id_of(self, symbol: Symbol) -> int:
        """The interned id, assigning the next one on first sight."""
        sid = self._ids.get(symbol)
        if sid is None:
            sid = len(self._symbols)
            self._ids[symbol] = sid
            self._symbols.append(symbol)
        return sid

    def symbol_of(self, sid: int) -> Symbol:
        """Inverse lookup (debugging / introspection)."""
        return self._symbols[sid]

    def __len__(self) -> int:
        return len(self._symbols)


_GLOBAL_SYMBOLS = SymbolTable()


def global_symbol_table() -> SymbolTable:
    """The one process-wide table every kernel shares by default."""
    return _GLOBAL_SYMBOLS


class RulePack:
    """One rule body, flattened to parallel preorder arrays.

    For RHS preorder position ``i``:

    * ``kind[i]`` -- :data:`KIND_BOTTOM` / :data:`KIND_ELEMENT` /
      :data:`KIND_NONTERMINAL` / :data:`KIND_PARAMETER`,
    * ``sym[i]`` -- interned symbol id; for parameters the 1-based
      parameter index (the binding-environment slot),
    * ``rank[i]`` -- child count,
    * ``first[i]`` -- preorder position of the first child (``-1`` leaf),
    * ``nxt[i]`` -- preorder position of the next sibling (``-1`` last),
    * ``nnodes[i]`` / ``nelems[i]`` -- generated subtree sizes *without*
      parameter contributions (identical to the ``GrammarIndex`` per-node
      table the pack is built from; bindings supply the argument sizes),
    * ``params[i]`` -- tuple of parameter indices occurring below ``i``,
    * ``node_objs[i]`` / ``sym_objs[i]`` / ``sym_names[i]`` -- the live
      ``Node``, its ``Symbol``, and the symbol's name, so kernel descents
      return the same object-world results as the fallback path.

    ``table`` / ``node_segs`` / ``elem_segs`` alias the owning index's
    per-rule tables -- pack and tables are built and evicted together, so
    the aliases can never outlive their targets.

    Two derived views exist purely for walk speed:

    * ``walk`` -- one tuple ``(kind, sym, rank, nxt, nnodes, nelems,
      params, node_objs, sym_objs, sym_names, steps_enter, steps_target,
      table)`` whose integer columns are *list* mirrors of the packed
      arrays.  ``array('l')`` reads box a fresh ``int`` object on every
      access; the mirrors box each value exactly once, at build time, and
      a pack switch inside a walk becomes a single attribute load plus
      one tuple unpack instead of eight attribute loads.
    * ``walk_nodes`` -- the node-count descent's subset of ``walk``
      (``kind, sym, rank, nxt, nnodes, params, sym_objs, steps_enter,
      steps_target``): :func:`kernel_resolve_preorder` touches neither
      element counts nor the object columns, so its pack switches unpack
      nine columns instead of thirteen.
    * ``steps_enter`` / ``steps_target`` -- one shared, immutable
      :class:`PathStep` per position (``enters_rule`` true at nonterminal
      positions, false at terminals; ``None`` elsewhere).  Consumers only
      ever read ``.node`` / ``.enters_rule``, so every descent through a
      position can return the same step object instead of allocating one.
    """

    __slots__ = (
        "head", "n", "kind", "sym", "rank", "first", "nxt",
        "nnodes", "nelems", "params", "node_objs", "sym_objs", "sym_names",
        "table", "node_segs", "elem_segs", "_label_arrays", "hop_segs",
        "walk", "walk_nodes", "steps_enter", "steps_target",
    )

    def __init__(self, head: Symbol) -> None:
        self.head = head
        #: per-label match-count arrays for the query walk, versioned by
        #: the identity of the LabelIndex node table they were built from:
        #: a census eviction anywhere below this rule (including callee
        #: relabels, which change ancestor counts without touching
        #: ancestor *structure*) rebuilds that dict, so an identity check
        #: per rule entry keeps the flat counts consistent without a
        #: second invalidation channel.  Entries are ``(node_table,
        #: packed array, list mirror, hop-body dict)`` -- walks read the
        #: mirror; the hop-body dict memoises the callee's own label
        #: total per application position (the zero-census hop test),
        #: which shares the entry's versioning: any census change below
        #: an application changes this rule's counts too, so the entry
        #: is rebuilt -- dropping the memo -- exactly when needed.
        self._label_arrays: Dict[str, Tuple[dict, array, list, dict]] = {}
        #: per-application-position ``(segments, kids)`` memo for the
        #: zero-census hop (callee element segments + this rule's child
        #: positions).  Both are purely structural, so the pack's own
        #: lifetime is the correct version: any structural change at or
        #: below the callee cascades an eviction through every applier,
        #: discarding this pack -- and relabels, which do *not* evict
        #: appliers, cannot change segments or child layout.
        self.hop_segs: Dict[int, tuple] = {}

    @property
    def nbytes(self) -> int:
        """Packed payload bytes (the memory-footprint gauge)."""
        total = 0
        for name in ("kind", "sym", "rank", "first", "nxt",
                     "nnodes", "nelems"):
            arr = getattr(self, name)
            total += arr.itemsize * len(arr)
        for entry in self._label_arrays.values():
            arr = entry[1]
            total += arr.itemsize * len(arr)
        return total

    def label_counts(self, lindex: "LabelIndex", label: str) -> list:
        """Per-position ``label`` occurrence counts (census substrate of
        the kernel query walk), aligned with the other arrays.  Returns
        the boxed list mirror; the packed array backs ``nbytes``."""
        ntab = lindex.node_table(self.head, label)
        cached = self._label_arrays.get(label)
        if cached is not None and cached[0] is ntab:
            return cached[2]
        arr = array("l", [ntab[id(node)][0] for node in self.node_objs])
        counts = arr.tolist()
        self._label_arrays[label] = (ntab, arr, counts, {})
        return counts

    def label_hop(self, lindex: "LabelIndex", label: str) -> Tuple[list, dict]:
        """``(counts, hop-body memo)`` for ``label`` -- the walk-entry
        bundle of the query walk.  The memo maps application positions to
        the callee's own label total so repeated walks skip the
        ``rule_label_count`` probe; it rides the entry's node-table
        versioning (see ``_label_arrays``)."""
        ntab = lindex.node_table(self.head, label)
        cached = self._label_arrays.get(label)
        if cached is not None and cached[0] is ntab:
            return cached[2], cached[3]
        arr = array("l", [ntab[id(node)][0] for node in self.node_objs])
        counts = arr.tolist()
        entry = (ntab, arr, counts, {})
        self._label_arrays[label] = entry
        return counts, entry[3]


def _build_pack(index: "GrammarIndex", head: Symbol,
                symbols: SymbolTable) -> RulePack:
    """Flatten one rule body into a :class:`RulePack`.

    One O(width) preorder walk; the per-node sizes come straight out of
    the index's own table (``_ensure`` computes it bottom-up first), so
    pack and object tables can never disagree.
    """
    index._ensure(head)
    rhs = index.grammar.rhs(head)
    table = index._tables[head]

    order: List[object] = []
    append = order.append
    stack = [rhs]
    pop = stack.pop
    extend = stack.extend
    while stack:
        node = pop()
        append(node)
        kids = node.children
        if kids:
            extend(reversed(kids))
    n = len(order)

    kind_l = [0] * n
    sym_l = [0] * n
    rank_l = [0] * n
    nnodes_l = [0] * n
    nelems_l = [0] * n
    params: List[Tuple[int, ...]] = [()] * n
    node_objs: List[object] = order
    sym_objs: List[Symbol] = [None] * n  # type: ignore[list-item]
    sym_names: List[str] = [""] * n
    steps_enter: List[Optional[PathStep]] = [None] * n
    steps_target: List[Optional[PathStep]] = [None] * n

    # One forward pass fills every per-node column.  Symbol facts come
    # from the table's interning memo (one dict probe instead of the
    # kind/rank/name property cascade); sizes come straight out of the
    # index's own table (``_ensure`` computes it bottom-up first), so
    # pack and object tables can never disagree.
    si = symbols.info
    id_of = symbols.id_of
    for i, node in enumerate(order):
        symbol = node.symbol
        inf = si.get(symbol)
        if inf is None:
            if symbol.is_parameter:
                inf = (KIND_PARAMETER, symbol.param_index,
                       symbol.rank, symbol.name)
            elif symbol.is_terminal:
                k = KIND_BOTTOM if symbol.is_bottom else KIND_ELEMENT
                inf = (k, id_of(symbol), symbol.rank, symbol.name)
            else:
                inf = (KIND_NONTERMINAL, id_of(symbol),
                       symbol.rank, symbol.name)
            si[symbol] = inf
        k, code, r, name = inf
        kind_l[i] = k
        sym_l[i] = code
        rank_l[i] = r
        sym_objs[i] = symbol
        sym_names[i] = name
        if k <= KIND_ELEMENT:
            steps_target[i] = PathStep(node, False)
        elif k == KIND_NONTERMINAL:
            steps_enter[i] = PathStep(node, True)
        t_nodes, t_elems, t_params = table[id(node)]
        nnodes_l[i] = t_nodes
        nelems_l[i] = t_elems
        if t_params:
            params[i] = t_params

    # Subtree spans in RHS nodes, without a position dict: a node's
    # first child sits at ``i + 1`` and sibling subtrees are adjacent,
    # so reversed preorder locates children by offset arithmetic (rank
    # equals child count in a ranked alphabet).  Child spans are always
    # ready because every node is visited after its descendants.
    span = [1] * n
    for i in range(n - 1, -1, -1):
        r = rank_l[i]
        if r:
            total = 1
            c = i + 1
            for _ in range(r):
                s = span[c]
                total += s
                c += s
            span[i] = total

    first_l = [-1] * n
    nxt_l = [-1] * n
    for i in range(n):
        r = rank_l[i]
        if r:
            c = i + 1
            first_l[i] = c
            for _ in range(r - 1):
                following = c + span[c]
                nxt_l[c] = following
                c = following

    pack = RulePack(head)
    pack.n = n
    # Packed columns are built from the finished lists in one C-level
    # conversion each; the walk tuples reuse the lists directly.
    pack.kind = array("l", kind_l)
    pack.sym = array("l", sym_l)
    pack.rank = array("l", rank_l)
    pack.first = array("l", first_l)
    pack.nxt = array("l", nxt_l)
    pack.nnodes = array("l", nnodes_l)
    pack.nelems = array("l", nelems_l)
    pack.params = params
    pack.node_objs = node_objs
    pack.sym_objs = sym_objs
    pack.sym_names = sym_names
    pack.table = table
    pack.node_segs = index._node_segments[head]
    pack.elem_segs = index._elem_segments[head]
    pack.steps_enter = steps_enter
    pack.steps_target = steps_target
    pack.walk = (
        kind_l, sym_l, rank_l, nxt_l, nnodes_l, nelems_l, params,
        node_objs, sym_objs, sym_names, steps_enter, steps_target, table,
    )
    pack.walk_nodes = (
        kind_l, sym_l, rank_l, nxt_l, nnodes_l, params, sym_objs,
        steps_enter, steps_target,
    )
    return pack


class GrammarKernel:
    """The per-index pack cache (built lazily, evicted per rule).

    Owned by a :class:`~repro.grammar.index.GrammarIndex`; the index
    forwards its observer events here, so packs ride exactly the same
    invalidation channel as the object tables -- plus relabel eviction
    (the object tables survive relabels because they reference live
    nodes; a pack caches symbol ids/names and must not).
    """

    __slots__ = (
        "_index", "_packs", "symbols", "min_doc_elements",
        "builds", "evictions", "hits", "misses", "wholesale_invalidations",
        "_m_builds", "_m_evictions",
    )

    def __init__(
        self,
        index: "GrammarIndex",
        min_doc_elements: int = DEFAULT_MIN_DOC_ELEMENTS,
        symbols: Optional[SymbolTable] = None,
    ) -> None:
        self._index = index
        self._packs: Dict[Symbol, RulePack] = {}
        self.symbols = symbols if symbols is not None else _GLOBAL_SYMBOLS
        self.min_doc_elements = min_doc_elements
        self.builds = 0
        self.evictions = 0
        self.hits = 0
        self.misses = 0
        self.wholesale_invalidations = 0
        self._m_builds = None
        self._m_evictions = None

    # ------------------------------------------------------------------
    # pack lifecycle
    # ------------------------------------------------------------------
    def pack(self, head: Symbol) -> RulePack:
        """The rule's pack, building it (and its index tables) lazily.

        ``hits``/``misses`` are counted here, i.e. at walk-entry and
        cold-build granularity: the walk inner loops probe ``_packs``
        directly (an inlined dict ``get``) and fall back to this method
        only on a miss, so warm per-step probes cost no bookkeeping.
        """
        existing = self._packs.get(head)
        if existing is not None:
            self.hits += 1
            return existing
        self.misses += 1
        built = _build_pack(self._index, head, self.symbols)
        self._packs[head] = built
        self.builds += 1
        if self._m_builds is not None:
            self._m_builds.inc()
        return built

    def evict(self, head: Symbol) -> None:
        """Drop one rule's pack (observer channel; no-op when absent)."""
        if self._packs.pop(head, None) is not None:
            self.evictions += 1
            if self._m_evictions is not None:
                self._m_evictions.inc()

    def invalidate_all(self) -> None:
        """Wholesale reset -- must never fire on the incremental path
        (the bench gates assert the counter stays 0)."""
        if self._packs:
            self._packs.clear()
        self.wholesale_invalidations += 1

    def reset(self) -> None:
        """Forget every pack without counting it as a wholesale
        invalidation: used when the index adopts imported snapshot
        segments (a brand-new table generation, not an eviction event)."""
        self._packs.clear()

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def set_metric_handles(self, builds, evictions) -> None:
        """Adopt registry counters for the cold build/evict events; the
        per-descent hit/miss tallies stay plain ints and export through
        the ``repro_kernel`` gauge source instead."""
        self._m_builds = builds
        self._m_evictions = evictions

    @property
    def rules_packed(self) -> int:
        return len(self._packs)

    @property
    def bytes_packed(self) -> int:
        """Packed bytes across every cached pack.  Summed on demand --
        the gauge source samples this at collection time only, and the
        per-pack total moves when label arrays attach lazily."""
        return sum(p.nbytes for p in self._packs.values())

    def to_dict(self) -> dict:
        """Flat numeric view (the shared stats-object protocol)."""
        return {
            "rules_packed": self.rules_packed,
            "bytes_packed": self.bytes_packed,
            "builds": self.builds,
            "evictions": self.evictions,
            "hits": self.hits,
            "misses": self.misses,
            "wholesale_invalidations": self.wholesale_invalidations,
            "min_doc_elements": self.min_doc_elements,
        }


# ----------------------------------------------------------------------
# kernel walks
# ----------------------------------------------------------------------
# Binding environments during kernel descents are tuples of 7-tuples
#   (node, outer_env, outer_table, nodes, elems, outer_pack, pos)
# -- a strict superset of the object path's 5-tuple _Binding: slots 0..4
# keep every downstream consumer (``GrammarIndex._sizes``, the extent
# and axis helpers, the ``_locations`` memo) working unchanged on either
# path's results, slots 5..6 are what the flat walk itself descends on.
#
# Every walk below keeps the current pack's columns in locals via one
# ``pack.walk`` unpack per pack switch, probes the pack cache with an
# inlined ``kernel._packs.get`` (falling back to ``kernel.pack`` on a
# miss), and appends the pack's *shared* per-position PathStep objects
# instead of allocating steps -- the three constant-factor levers the
# bench gates are built on.


def kernel_locate_element(
    index: "GrammarIndex",
    kernel: GrammarKernel,
    element_index: int,
    track_axes: bool,
):
    """Flat-array twin of ``GrammarIndex._locate_element`` (same result
    tuple, same shortcut/axis semantics); bounds are pre-checked."""
    packs = kernel._packs
    pack = kernel.pack(index.grammar.start)
    (kind, sym, rank, nxt, nnodes, nelems, params, node_objs, sym_objs,
     _names, steps_enter, steps_target, table) = pack.walk
    pos = 0
    env: Tuple = ()
    remaining = element_index
    position = 0
    parent: Optional[int] = None
    depth = 0
    steps: List[PathStep] = []

    while True:
        k = kind[pos]
        if k <= 1:  # terminal
            if k == 1:
                if remaining == 0:
                    steps.append(steps_target[pos])
                    return (position, node_objs[pos], env, table, steps,
                            parent, depth)
                remaining -= 1
                position += 1
                if rank[pos] == 2:
                    # FCNS element: descend into the content subtree
                    # (first child -- then this element is the target's
                    # document parent so far) or, by the walk invariant
                    # (``remaining`` < the current subtree's element
                    # count), directly into the sibling subtree without
                    # computing its size.
                    child = pos + 1
                    ce = nelems[child]
                    cn = nnodes[child]
                    pp = params[child]
                    if pp:
                        for p in pp:
                            b = env[p - 1]
                            cn += b[3]
                            ce += b[4]
                    if remaining < ce:
                        parent = element_index - remaining - 1
                        depth += 1
                        pos = child
                    else:
                        remaining -= ce
                        position += cn
                        pos = nxt[child]
                    continue
            else:
                position += 1
            # Non-FCNS terminal: scan the first r-1 children, the last
            # inherits the target by the same invariant.
            r = rank[pos]
            child = pos + 1
            for _ in range(r - 1):
                ce = nelems[child]
                cn = nnodes[child]
                pp = params[child]
                if pp:
                    for p in pp:
                        b = env[p - 1]
                        cn += b[3]
                        ce += b[4]
                if remaining < ce:
                    break
                remaining -= ce
                position += cn
                child = nxt[child]
            pos = child
            continue

        if k == 3:  # parameter: hop to the bound argument
            b = env[sym[pos] - 1]
            pack = b[5]
            pos = b[6]
            env = b[1]
            (kind, sym, rank, nxt, nnodes, nelems, params, node_objs,
             sym_objs, _names, steps_enter, steps_target, table) = pack.walk
            continue

        # Nonterminal application (virtual preorder: seg0, arg1, seg1,
        # ..., argk, segk -- see the object twin for the full story).
        sobj = sym_objs[pos]
        callee = packs.get(sobj)
        if callee is None:
            callee = kernel.pack(sobj)
        r = rank[pos]
        if not track_axes:
            callee_nodes = callee.node_segs
            callee_elems = callee.elem_segs
            descend_to = -1
            preceding_nodes = callee_nodes[0]
            preceding_elems = callee_elems[0]
            if remaining >= preceding_elems:
                child = pos + 1
                for child_pos in range(1, r + 1):
                    ce = nelems[child]
                    cn = nnodes[child]
                    pp = params[child]
                    if pp:
                        for p in pp:
                            b = env[p - 1]
                            cn += b[3]
                            ce += b[4]
                    if remaining < preceding_elems + ce:
                        remaining -= preceding_elems
                        position += preceding_nodes
                        descend_to = child
                        break
                    preceding_elems += ce + callee_elems[child_pos]
                    preceding_nodes += cn + callee_nodes[child_pos]
                    if remaining < preceding_elems:
                        break  # a body segment after this arg: enter
                    child = nxt[child]
            if descend_to >= 0:
                pos = descend_to
                continue
        steps.append(steps_enter[pos])
        if r:
            outer_env = env
            child = pos + 1
            ce = nelems[child]
            cn = nnodes[child]
            pp = params[child]
            if pp:
                for p in pp:
                    b = outer_env[p - 1]
                    cn += b[3]
                    ce += b[4]
            if r == 1:
                env = ((node_objs[child], outer_env, table, cn, ce,
                        pack, child),)
            else:
                bindings = [
                    (node_objs[child], outer_env, table, cn, ce, pack, child)
                ]
                for _ in range(r - 1):
                    child = nxt[child]
                    ce = nelems[child]
                    cn = nnodes[child]
                    pp = params[child]
                    if pp:
                        for p in pp:
                            b = outer_env[p - 1]
                            cn += b[3]
                            ce += b[4]
                    bindings.append(
                        (node_objs[child], outer_env, table, cn, ce,
                         pack, child)
                    )
                env = tuple(bindings)
        else:
            env = ()
        pack = callee
        pos = 0
        (kind, sym, rank, nxt, nnodes, nelems, params, node_objs,
         sym_objs, _names, steps_enter, steps_target, table) = pack.walk


def kernel_resolve_preorder(
    index: "GrammarIndex",
    kernel: GrammarKernel,
    target: int,
) -> List[PathStep]:
    """Flat-array twin of ``GrammarIndex.resolve_preorder`` (node-count
    descent; bounds pre-checked by the caller).

    The hottest kernel loop, so it walks the trimmed ``walk_nodes``
    columns and -- since its environments never escape (only ``steps``
    are returned) -- uses private 4-tuple bindings
    ``(nodes, outer_env, outer_pack, pos)`` instead of the 7-tuple
    binding format the element descents share with the object path.
    Child scans lean on the walk invariant (``remaining`` is always
    smaller than the current subtree's node count: checked at the root,
    preserved by every descent): a target that fell through the first
    ``r - 1`` children must sit in the last one, whose size then never
    needs computing.
    """
    packs = kernel._packs
    pack = kernel.pack(index.grammar.start)
    (kind, sym, rank, nxt, nnodes, params, sym_objs,
     steps_enter, steps_target) = pack.walk_nodes
    pos = 0
    env: Tuple = ()
    remaining = target
    steps: List[PathStep] = []

    while True:
        k = kind[pos]
        if k <= 1:  # terminal
            if remaining == 0:
                steps.append(steps_target[pos])
                return steps
            remaining -= 1  # the terminal itself
            r = rank[pos]
            child = pos + 1
            if r == 2:  # FCNS: one size probe decides between the two
                cn = nnodes[child]
                pp = params[child]
                if pp:
                    for p in pp:
                        cn += env[p - 1][0]
                if remaining < cn:
                    pos = child
                else:
                    remaining -= cn
                    pos = nxt[child]
            else:
                for _ in range(r - 1):
                    cn = nnodes[child]
                    pp = params[child]
                    if pp:
                        for p in pp:
                            cn += env[p - 1][0]
                    if remaining < cn:
                        break
                    remaining -= cn
                    child = nxt[child]
                pos = child
            continue

        if k == 3:  # parameter: hop to the bound argument
            b = env[sym[pos] - 1]
            pos = b[3]
            env = b[1]
            pack = b[2]
            (kind, sym, rank, nxt, nnodes, params, sym_objs,
             steps_enter, steps_target) = pack.walk_nodes
            continue

        # Nonterminal application (virtual preorder: seg0, arg1, seg1,
        # ..., argk, segk).
        sobj = sym_objs[pos]
        callee = packs.get(sobj)
        if callee is None:
            callee = kernel.pack(sobj)
        preceding = callee.node_segs[0]
        r = rank[pos]
        if r == 1:
            # The dominant shape after vertical/horizontal compression:
            # one argument, so the size probe that decides arg-descent
            # vs rule-entry is exactly the binding the entry needs.
            child = pos + 1
            cn = nnodes[child]
            pp = params[child]
            if pp:
                for p in pp:
                    cn += env[p - 1][0]
            if preceding <= remaining < preceding + cn:
                remaining -= preceding
                pos = child
                continue
            steps.append(steps_enter[pos])
            env = ((cn, env, pack, child),)
        elif r:
            callee_nodes = callee.node_segs
            descend_to = -1
            if remaining >= preceding:
                child = pos + 1
                for child_pos in range(1, r + 1):
                    cn = nnodes[child]
                    pp = params[child]
                    if pp:
                        for p in pp:
                            cn += env[p - 1][0]
                    if remaining < preceding + cn:
                        remaining -= preceding
                        descend_to = child
                        break
                    preceding += cn + callee_nodes[child_pos]
                    if remaining < preceding:
                        break  # a body segment after this arg: enter
                    child = nxt[child]
            if descend_to >= 0:
                pos = descend_to
                continue
            steps.append(steps_enter[pos])
            outer_env = env
            bindings = []
            child = pos + 1
            for _ in range(r):
                cn = nnodes[child]
                pp = params[child]
                if pp:
                    for p in pp:
                        cn += outer_env[p - 1][0]
                bindings.append((cn, outer_env, pack, child))
                child = nxt[child]
            env = tuple(bindings)
        else:
            steps.append(steps_enter[pos])
            env = ()
        pack = callee
        pos = 0
        (kind, sym, rank, nxt, nnodes, params, sym_objs,
         steps_enter, steps_target) = pack.walk_nodes


def kernel_iter_element_symbols(
    index: "GrammarIndex",
    kernel: GrammarKernel,
    start: int,
    stop: int,
) -> Iterator[Symbol]:
    """Flat-array twin of ``GrammarIndex._iter_element_symbols``."""
    if start >= stop:
        return
    to_skip = start
    to_yield = stop - start
    packs = kernel._packs
    root = kernel.pack(index.grammar.start)
    # Stack items: (pack, pos, env); env entries are the 7-tuple
    # bindings.  Consecutive items overwhelmingly share a pack (children
    # are pushed together), so the unpacked columns are cached across
    # iterations and refreshed only when the popped pack changes.
    stack = [(root, 0, ())]
    cur = None
    while stack:
        pack, pos, env = stack.pop()
        if pack is not cur:
            cur = pack
            (kind, sym, rank, nxt, nnodes, nelems, params, node_objs,
             sym_objs, _names, _enter, _target, table) = pack.walk
        k = kind[pos]
        if k == 3:
            b = env[sym[pos] - 1]
            stack.append((b[5], b[6], b[1]))
            continue
        if to_skip:
            elems = nelems[pos]
            pp = params[pos]
            if pp:
                for p in pp:
                    elems += env[p - 1][4]
            if elems <= to_skip:
                to_skip -= elems
                continue  # window starts after this whole subtree
        if k <= 1:
            if k == 1:
                if to_skip:
                    to_skip -= 1
                else:
                    yield sym_objs[pos]
                    to_yield -= 1
                    if not to_yield:
                        return
            r = rank[pos]
            if r == 2:
                child = pos + 1
                stack.append((pack, nxt[child], env))
                stack.append((pack, child, env))
            elif r == 1:
                stack.append((pack, pos + 1, env))
            elif r:
                child = pos + 1
                kids = []
                for _ in range(r):
                    kids.append(child)
                    child = nxt[child]
                for c in reversed(kids):
                    stack.append((pack, c, env))
        else:
            sobj = sym_objs[pos]
            callee = packs.get(sobj)
            if callee is None:
                callee = kernel.pack(sobj)
            r = rank[pos]
            outer_env = env
            if r:
                bindings = []
                child = pos + 1
                for _ in range(r):
                    cn = nnodes[child]
                    ce = nelems[child]
                    pp = params[child]
                    if pp:
                        for p in pp:
                            b = outer_env[p - 1]
                            cn += b[3]
                            ce += b[4]
                    bindings.append(
                        (node_objs[child], outer_env, table, cn, ce,
                         pack, child)
                    )
                    child = nxt[child]
                inner_env: Tuple = tuple(bindings)
            else:
                inner_env = ()
            stack.append((callee, 0, inner_env))


def kernel_stream_preorder(kernel: GrammarKernel) -> Iterator[Symbol]:
    """Flat-array twin of :func:`repro.grammar.navigation.stream_preorder`
    (whole-document terminal symbol stream; feeds ``extract_subtree``'s
    root shortcut).  Environments are light (pack, pos, env) closures --
    no counts are needed when nothing is skipped."""
    index = kernel._index
    packs = kernel._packs
    stack = [(kernel.pack(index.grammar.start), 0, ())]
    cur = None
    while stack:
        pack, pos, env = stack.pop()
        if pack is not cur:
            cur = pack
            (kind, sym, rank, nxt, _nn, _ne, _pp, _no, sym_objs,
             _names, _enter, _target, _table) = pack.walk
        k = kind[pos]
        if k == 3:
            stack.append(env[sym[pos] - 1])
            continue
        if k <= 1:
            yield sym_objs[pos]
            r = rank[pos]
            if r == 2:
                child = pos + 1
                stack.append((pack, nxt[child], env))
                stack.append((pack, child, env))
            elif r == 1:
                stack.append((pack, pos + 1, env))
            elif r:
                child = pos + 1
                kids = []
                for _ in range(r):
                    kids.append((pack, child, env))
                    child = nxt[child]
                stack.extend(reversed(kids))
        else:
            sobj = sym_objs[pos]
            callee = packs.get(sobj)
            if callee is None:
                callee = kernel.pack(sobj)
            r = rank[pos]
            if r:
                child = pos + 1
                bindings = []
                for _ in range(r):
                    bindings.append((pack, child, env))
                    child = nxt[child]
                inner_env: Tuple = tuple(bindings)
            else:
                inner_env = ()
            stack.append((callee, 0, inner_env))


def kernel_stream_elements(
    kernel: GrammarKernel,
) -> Iterator[Tuple[int, str, Optional[int], int]]:
    """Flat-array twin of :func:`repro.grammar.navigation.stream_elements`
    (same ``(index, tag, parent, depth)`` stream, same FCNS contract)."""
    index_counter = 0
    packs = kernel._packs
    root = kernel.pack(kernel._index.grammar.start)
    # Items: (pack, pos, env, parent, depth); env entries (pack, pos, env).
    stack = [(root, 0, (), None, 0)]
    cur = None
    while stack:
        pack, pos, env, parent, depth = stack.pop()
        if pack is not cur:
            cur = pack
            (kind, sym, rank, nxt, _nn, _ne, _pp, _no, sym_objs,
             sym_names, _enter, _target, _table) = pack.walk
        k = kind[pos]
        if k == 3:
            b = env[sym[pos] - 1]
            stack.append((b[0], b[1], b[2], parent, depth))
            continue
        if k == 0:
            continue
        if k == 1:
            if rank[pos] != 2:
                raise ValueError(
                    f"terminal {sym_objs[pos]!r} is not a "
                    "binary-encoded element (rank 2) -- stream_elements "
                    "requires an FCNS encoding"
                )
            first_child = pos + 1
            sibling = nxt[first_child]
            stack.append((pack, sibling, env, parent, depth))
            stack.append((pack, first_child, env, index_counter, depth + 1))
            yield index_counter, sym_names[pos], parent, depth
            index_counter += 1
            continue
        sobj = sym_objs[pos]
        callee = packs.get(sobj)
        if callee is None:
            callee = kernel.pack(sobj)
        r = rank[pos]
        if r:
            child = pos + 1
            bindings = []
            for _ in range(r):
                bindings.append((pack, child, env))
                child = nxt[child]
            inner_env: Tuple = tuple(bindings)
        else:
            inner_env = ()
        stack.append((callee, 0, inner_env, parent, depth))
