"""Derivation: inlining rules and full decompression (``valG``).

*Inlining* a rule ``Q -> tQ`` at a ``Q``-labeled node replaces the node by a
fresh copy of ``tQ`` in which parameter ``yi`` is substituted by the node's
``i``-th child subtree (Section II).  It is the single mutation primitive
underlying path isolation, digram replacement, and pruning.

Full decompression (:func:`expand`) applies inlining until no nonterminal
remains; because grammars compress exponentially, it takes a mandatory node
budget and raises :class:`DecompressionBudgetExceeded` when the generated
tree would be larger.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.grammar.slcf import Grammar, GrammarError
from repro.trees.node import Node, deep_copy_with_map
from repro.trees.symbols import Symbol

__all__ = [
    "inline_at",
    "inline_all_references",
    "expand",
    "DecompressionBudgetExceeded",
    "DEFAULT_EXPAND_BUDGET",
]

#: Generous default for tests and mid-size experiments.
DEFAULT_EXPAND_BUDGET = 5_000_000


class DecompressionBudgetExceeded(RuntimeError):
    """valG(S) would exceed the caller's node budget."""


def inline_at(
    grammar: Grammar,
    node: Node,
    rhs_override: Optional[Node] = None,
) -> Tuple[Node, Dict[int, Node]]:
    """Inline the rule for ``node``'s nonterminal at ``node``.

    ``node`` must be labeled by a nonterminal with a rule (or
    ``rhs_override`` must supply the right-hand side to use -- the optimized
    replacement inlines *rule versions* this way).  Returns
    ``(new_subtree_root, copy_map)`` where ``copy_map`` maps
    ``id(original RHS node) -> copied node``.

    If ``node`` is the root of some rule's RHS, the caller must re-install
    the returned root via ``grammar.set_rule`` -- this function only splices
    within the tree when a parent exists.
    """
    symbol = node.symbol
    if not symbol.is_nonterminal:
        raise GrammarError(f"cannot inline at non-nonterminal node {symbol!r}")
    template = rhs_override if rhs_override is not None else grammar.rhs(symbol)
    copy_root, copy_map = deep_copy_with_map(template)

    # Locate parameter nodes in the copy, then substitute the argument
    # subtrees.  Arguments are moved (not copied): each argument occurs once.
    params: Dict[int, Node] = {}
    stack = [copy_root]
    while stack:
        current = stack.pop()
        if current.symbol.is_parameter:
            params[current.symbol.param_index] = current
        else:
            stack.extend(current.children)
    if len(params) != symbol.rank:
        raise GrammarError(
            f"rule for {symbol!r} has {len(params)} parameters, "
            f"rank is {symbol.rank}"
        )

    arguments = list(node.children)
    node.children = []
    for index, argument in enumerate(arguments, start=1):
        param_node = params[index]
        argument.parent = None
        parent = param_node.parent
        if parent is None:
            # The whole RHS is deeper than a bare parameter (validated), so
            # a parameter can only be the root if rank >= 1 and tQ == yi,
            # which the model forbids.
            raise GrammarError("RHS is a bare parameter")  # pragma: no cover
        parent.set_child(param_node.child_index(), argument)

    parent = node.parent
    if parent is not None:
        index = node.child_index()
        node.parent = None
        parent.set_child(index, copy_root)
    else:
        copy_root.parent = None
    return copy_root, copy_map


def inline_all_references(grammar: Grammar, nonterminal: Symbol) -> int:
    """Inline ``nonterminal`` at every reference and drop its rule.

    Returns the number of inlined references.  Used by pruning.
    """
    template = grammar.rhs(nonterminal)
    count = 0
    for head in list(grammar.rules.keys()):
        if head is nonterminal:
            continue
        rhs = grammar.rules[head]
        # Collect references first: inlining mutates the tree under us.
        targets = [
            candidate
            for candidate in _preorder(rhs)
            if candidate.symbol is nonterminal
        ]
        for target in targets:
            is_rule_root = target.parent is None
            new_root, _ = inline_at(grammar, target, rhs_override=template)
            if is_rule_root:
                grammar.set_rule(head, new_root)
            count += 1
        if targets:
            grammar.notify_rule_changed(head)
    grammar.remove_rule(nonterminal)
    return count


def _preorder(root: Node):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def expand(
    grammar: Grammar,
    symbol: Optional[Symbol] = None,
    budget: int = DEFAULT_EXPAND_BUDGET,
) -> Node:
    """Compute ``valG(symbol)`` (default: the start symbol) as a plain tree.

    Rank-``m`` nonterminals expand to trees whose parameters remain as
    parameter leaves, matching the paper's ``valG(R)``.

    Raises :class:`DecompressionBudgetExceeded` once more than ``budget``
    nodes have been materialized; decompression can be exponential
    (Section I), so an unbounded expand is never safe.
    """
    head = symbol if symbol is not None else grammar.start
    root, _ = deep_copy_with_map(grammar.rhs(head))
    produced = 0
    # Worklist of not-yet-expanded nonterminal nodes within the result.
    worklist: List[Node] = []

    def scan(subtree: Node) -> None:
        nonlocal produced
        stack = [subtree]
        while stack:
            node = stack.pop()
            produced += 1
            if produced > budget:
                raise DecompressionBudgetExceeded(
                    f"valG exceeds {budget} nodes; "
                    "raise the budget only if you know the generated size"
                )
            if node.symbol.is_nonterminal:
                worklist.append(node)
            stack.extend(node.children)

    scan(root)
    while worklist:
        node = worklist.pop()
        is_root = node.parent is None
        new_subtree, copy_map = inline_at(grammar, node)
        if is_root:
            root = new_subtree
        # Only the freshly copied rule body needs accounting: argument
        # subtrees were moved (same node objects), so they were counted --
        # and their nonterminals enqueued -- when first materialized.
        produced -= 1  # the inlined nonterminal node itself disappeared
        for copied in copy_map.values():
            if copied.symbol.is_parameter:
                continue  # substituted by an argument subtree
            produced += 1
            if produced > budget:
                raise DecompressionBudgetExceeded(
                    f"valG exceeds {budget} nodes; "
                    "raise the budget only if you know the generated size"
                )
            if copied.symbol.is_nonterminal:
                worklist.append(copied)
    return root
