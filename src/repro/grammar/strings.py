"""String grammars as monadic tree grammars.

The paper's Section III examples (``G8``, ``Gexp``, ``Gn``) are straight-
line *string* grammars.  A string ``s1 s2 ... sn`` embeds as the chain
``s1(s2(...sn(#)))`` of rank-1 terminals, and an SL string grammar becomes
an SLCF tree grammar whose nonterminals have rank 1 (a trailing "rest of
string" parameter); the start symbol stays rank 0 and ends the chain
with ``⊥``.

This embedding preserves RePair semantics exactly: the string digram
``xy`` is the tree digram ``(x, 1, y)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.grammar.slcf import Grammar, GrammarError
from repro.trees.node import Node
from repro.trees.symbols import Alphabet, parameter_symbol

__all__ = ["string_grammar", "grammar_string", "gn_family_grammar"]


def string_grammar(
    rules: Dict[str, str],
    start: str = "S",
    alphabet: Alphabet = None,
) -> Grammar:
    """Build a monadic tree grammar from string-grammar rules.

    ``rules`` maps head names to bodies; body tokens are either head names
    (longest match wins) or single terminal letters.  Example::

        string_grammar({"S": "BBa", "B": "ab"})   # the paper's G_w

    Every non-start nonterminal gets rank 1 (its parameter is the rest of
    the string); the start rule's chain ends with ``⊥``.
    """
    if alphabet is None:
        alphabet = Alphabet()
    if start not in rules:
        raise GrammarError(f"missing start rule {start!r}")
    heads = {
        name: alphabet.nonterminal(name, 0 if name == start else 1)
        for name in rules
    }
    by_length = sorted(rules, key=len, reverse=True)
    grammar = Grammar(alphabet, heads[start])

    for name, body in rules.items():
        tokens: List[Tuple[str, str]] = []
        i = 0
        while i < len(body):
            for head_name in by_length:
                if body.startswith(head_name, i):
                    tokens.append(("nonterminal", head_name))
                    i += len(head_name)
                    break
            else:
                tokens.append(("terminal", body[i]))
                i += 1
        if name == start:
            current = Node(alphabet.bottom())
        else:
            current = Node(parameter_symbol(1))
        for kind, token in reversed(tokens):
            if kind == "terminal":
                current = Node(alphabet.terminal(token, 1), [current])
            else:
                current = Node(heads[token], [current])
        grammar.set_rule(heads[name], current)
    grammar.validate()
    return grammar


def grammar_string(grammar: Grammar) -> str:
    """Decode a monadic grammar back into its string."""
    from repro.grammar.navigation import stream_preorder

    return "".join(
        symbol.name for symbol in stream_preorder(grammar) if symbol.rank == 1
    )


def gn_family_grammar(n: int, alphabet: Alphabet = None) -> Grammar:
    """The Figure 3 family ``G_n``.

    ``S -> a An An b``, ``Ai -> A(i-1) A(i-1)``, ``A0 -> ba``; generates
    ``a (ba)^(2^(n+1)) b = (ab)^(2^(n+1)+1)``, exponentially compressed.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rules = {"S": f"aA{n}A{n}b", "A0": "ba"}
    for i in range(1, n + 1):
        rules[f"A{i}"] = f"A{i-1}A{i-1}"
    return string_grammar(rules, alphabet=alphabet)
