"""Plain-text grammar format.

Example::

    # anything after '#' ... wait, '#' is the empty symbol; comments use ';'
    start S
    S    -> f(A(B,#),#)
    A/2  -> a(y1, a(#, y2))
    B    -> b(#,#)

* ``start <name>`` names the start nonterminal (required, first directive),
* each rule line is ``NAME[/rank] -> term``; the rank defaults to 0 and must
  match the number of parameters in the term,
* ``#`` is the empty node ``⊥``; ``y1, y2, ...`` are parameters,
* ``;`` starts a line comment; blank lines are ignored.

The format round-trips: ``parse_grammar(format_grammar(g))`` generates the
same tree as ``g``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.grammar.slcf import Grammar, GrammarError
from repro.trees.builder import parse_term
from repro.trees.node import Node
from repro.trees.symbols import Alphabet, Symbol

__all__ = ["format_grammar", "parse_grammar", "GrammarFormatError"]


class GrammarFormatError(ValueError):
    """Raised on malformed grammar text."""


_RULE_LINE = re.compile(
    r"^(?P<name>[^\s/;]+)(?:/(?P<rank>\d+))?\s*->\s*(?P<body>.+)$"
)


def format_grammar(grammar: Grammar) -> str:
    """Render a grammar in the text format (start rule first)."""
    lines: List[str] = [f"start {grammar.start.name}"]
    heads = [grammar.start] + [
        head for head in grammar.rules if head is not grammar.start
    ]
    for head in heads:
        rank = f"/{head.rank}" if head.rank else ""
        lines.append(f"{head.name}{rank} -> {grammar.rules[head].to_sexpr()}")
    return "\n".join(lines) + "\n"


def parse_grammar(text: str, alphabet: Optional[Alphabet] = None) -> Grammar:
    """Parse the text format into a validated :class:`Grammar`."""
    if alphabet is None:
        alphabet = Alphabet()
    start_name: Optional[str] = None
    raw_rules: List[Tuple[str, int, str, int]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("start "):
            if start_name is not None:
                raise GrammarFormatError(f"line {lineno}: duplicate start")
            start_name = line[len("start "):].strip()
            continue
        match = _RULE_LINE.match(line)
        if match is None:
            raise GrammarFormatError(f"line {lineno}: cannot parse {line!r}")
        rank = int(match.group("rank") or 0)
        raw_rules.append(
            (match.group("name"), rank, match.group("body"), lineno)
        )
    if start_name is None:
        raise GrammarFormatError("missing 'start <name>' directive")
    if not raw_rules:
        raise GrammarFormatError("grammar has no rules")

    # Duplicate rule names are rejected up front with both line numbers:
    # a file holding two bodies for one head is ambiguous whatever their
    # declared ranks are, and letting the second intern (same rank) or
    # clash in the alphabet (different rank) would surface as a confusing
    # downstream error instead of this one.
    first_line: Dict[str, int] = {}
    for name, _, _, lineno in raw_rules:
        if name in first_line:
            raise GrammarFormatError(
                f"line {lineno}: duplicate rule for {name!r} "
                f"(first defined on line {first_line[name]})"
            )
        first_line[name] = lineno

    # First pass: intern all rule heads so the term parser can classify
    # occurrences of nonterminals.
    names = set(first_line)
    if start_name not in names:
        raise GrammarFormatError(f"start symbol {start_name!r} has no rule")
    for name, rank, _, lineno in raw_rules:
        existing = alphabet.get(name)
        if existing is not None and not existing.is_nonterminal:
            raise GrammarFormatError(
                f"rule head {name!r} clashes with a non-nonterminal symbol"
            )
        try:
            alphabet.nonterminal(name, rank)
        except ValueError as exc:
            raise GrammarFormatError(f"line {lineno}: {exc}") from exc

    start = alphabet.get(start_name)
    assert start is not None
    grammar = Grammar(alphabet, start)
    frozen_names = frozenset(names)
    for name, rank, body, lineno in raw_rules:
        head = alphabet.get(name)
        assert head is not None
        if head in grammar.rules:  # pragma: no cover - caught above
            raise GrammarFormatError(f"duplicate rule for {name!r}")
        try:
            rhs = parse_term(body, alphabet, nonterminal_names=frozen_names)
        except ValueError as exc:
            raise GrammarFormatError(
                f"line {lineno}: rule {name!r}: {exc}"
            ) from exc
        grammar.set_rule(head, rhs)
    try:
        grammar.validate()
    except GrammarError as exc:
        raise GrammarFormatError(str(exc)) from exc
    return grammar
