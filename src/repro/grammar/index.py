"""A persistent structural self-index over an SLCF grammar.

:class:`GrammarIndex` caches, per rule ``A`` of rank ``k``:

* the paper's ``size(A, 0..k)`` *node* segments (Section III-A),
* the analogous *element* segments counting only non-``⊥`` terminals,
* a per-RHS-node table of generated (node, element) subtree sizes plus the
  parameter indices occurring below each node.

Together these answer the navigation queries every update needs --

* ``element_count`` / ``node_count`` of ``valG(S)``,
* ``preorder_of_element``: document-order element index -> binary preorder
  index (the addressing step of :class:`repro.api.CompressedXml`),
* ``tag_of``: the element's label without touching the stream,
* ``end_of_children_position``: the preorder index of the ``⊥`` terminating
  an element's child list (the "insert on a null pointer" target of
  Section V-C) --

by *descending the derivation* in ``O(depth · rule-width)`` per query
instead of streaming the ``O(N)`` symbols of the generated tree.  This is
the grammar-level count-table idea of Maneth & Sebastian's structural
self-indexes, specialized to the update path of this reproduction.

Invalidation contract
---------------------
The index registers itself as a grammar observer (see
:meth:`repro.grammar.slcf.Grammar.register_observer`).  Whenever a rule is
installed, removed, or mutated in place, the cache entries of that rule
*and of every rule whose tables were computed from it* (the transitive
dependents along the call DAG) are evicted; recomputation happens lazily,
bottom-up, on the next query.  An isolated ``rename``/``insert``/``delete``
therefore costs one eviction of the start rule plus an
``O(|start RHS|)``-time lazy recompute -- independent of document size.
Callers that mutate rule bodies in place without going through
``set_rule`` must call :meth:`Grammar.notify_rule_changed`; the update and
compression layers of this code base all do.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.grammar.kernel import (
    DEFAULT_MIN_DOC_ELEMENTS,
    GrammarKernel,
    kernel_enabled_by_env,
    kernel_iter_element_symbols,
    kernel_locate_element,
    kernel_resolve_preorder,
)
from repro.grammar.navigation import PathStep
from repro.grammar.slcf import Grammar, GrammarError
from repro.trees.node import Node
from repro.trees.symbols import Symbol

__all__ = ["GrammarIndex", "check_element_index"]


def check_element_index(index: int, what: str = "element index") -> int:
    """Shared validation for document-order element indices.

    Every element-addressed entry point (``tag_of``/``rename``/``delete``/
    ``select`` results, batch operations, ``tags`` windows) funnels through
    this one contract: a non-``int`` (including ``bool`` -- almost always a
    bug, and batch ops already rejected it) raises ``TypeError``; a negative
    index raises ``IndexError``.  From-the-end indices are deliberately not
    supported -- under concurrent updates they are ambiguous.  The
    out-of-range check stays with the caller, who knows the element count.
    """
    if not isinstance(index, int) or isinstance(index, bool):
        raise TypeError(f"{what} must be an int, got {index!r}")
    if index < 0:
        raise IndexError(f"{what} must be >= 0, got {index}")
    return index


#: Per-RHS-node cache entry: (generated nodes, generated non-⊥ elements,
#: parameter indices occurring in the subtree).  Parameters contribute 0 to
#: both counts; the binding environment supplies the argument sizes.
_NodeInfo = Tuple[int, int, Tuple[int, ...]]

#: One binding of a rule parameter during a descent:
#: (argument node, its environment, its rule's node table,
#:  generated nodes, generated elements).
_Binding = Tuple[Node, tuple, Dict[int, _NodeInfo], int, int]


class _SegmentsView:
    """Lazy, always-current stand-in for ``parameter_segments(grammar)``.

    Subscripting ensures the rule's tables are computed, so path isolation
    can share the index's node segments instead of rebuilding the full
    segment dictionary on every update.
    """

    __slots__ = ("_index",)

    def __init__(self, index: "GrammarIndex") -> None:
        self._index = index

    def __getitem__(self, head: Symbol) -> List[int]:
        self._index._ensure(head)
        return self._index._node_segments[head]

    def get(self, head: Symbol, default=None):
        try:
            return self[head]
        except GrammarError:
            return default

    def __contains__(self, head: Symbol) -> bool:
        return self._index._grammar.has_rule(head)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._index._grammar.rules)


class GrammarIndex:
    """Cached count tables over a grammar, kept correct across updates.

    One index should be owned per mutable grammar (e.g. by
    :class:`repro.api.CompressedXml`); it registers itself as an observer
    on construction and can be released with :meth:`detach`.
    """

    def __init__(
        self,
        grammar: Grammar,
        register: bool = True,
        use_kernel: Optional[bool] = None,
        min_doc_elements: int = DEFAULT_MIN_DOC_ELEMENTS,
    ) -> None:
        self._grammar = grammar
        self._node_segments: Dict[Symbol, List[int]] = {}
        self._elem_segments: Dict[Symbol, List[int]] = {}
        self._tables: Dict[Symbol, Dict[int, _NodeInfo]] = {}
        # Reverse call edges registered at computation time: callee -> rule
        # heads whose cached tables were derived from it.
        self._dependents: Dict[Symbol, Set[Symbol]] = {}
        # Memoized ``_locate_element`` descents.  Relabels change neither
        # subtree sizes nor node identities, so a located path stays
        # valid across rename traffic (the hot case: repeated point
        # updates to the same region); any structural change clears it.
        self._locations: Dict[Tuple[int, bool], tuple] = {}
        # Eviction instrumentation: per-rule evictions through the observer
        # channel vs wholesale resets.  Dirty-rule-scoped recompression is
        # asserted against these (untouched rules must keep their tables).
        self.evicted_rules = 0
        self.wholesale_invalidations = 0
        # The flat-array descent kernel (see :mod:`repro.grammar.kernel`):
        # per-rule packed integer encodings of the rule bodies, riding this
        # index's observer forwarding so packs and tables share one
        # invalidation lifetime.  ``None`` disables it (the object-graph
        # fallback); default comes from ``REPRO_USE_KERNEL``.
        if use_kernel is None:
            use_kernel = kernel_enabled_by_env()
        self._kernel: Optional[GrammarKernel] = (
            GrammarKernel(self, min_doc_elements) if use_kernel else None
        )
        self._registered = register
        if register:
            grammar.register_observer(self)

    @property
    def grammar(self) -> Grammar:
        return self._grammar

    def detach(self) -> None:
        """Unregister from the grammar; the index must not be used after."""
        if self._registered:
            self._grammar.unregister_observer(self)
            self._registered = False

    # ------------------------------------------------------------------
    # invalidation (grammar observer protocol)
    # ------------------------------------------------------------------
    def rule_changed(self, head: Symbol) -> None:
        self._evict(head)

    def rule_removed(self, head: Symbol) -> None:
        self._evict(head)

    def rule_relabeled(self, head: Symbol) -> None:
        """A terminal relabel changes no size any table here caches --
        keep everything (the tables reference live nodes, so even
        ``tag_of`` stays correct through the relabeled symbol).  The
        kernel pack of the relabeled rule *does* go: it caches interned
        symbol ids and names per position.  Only that one rule's pack --
        dependents' packs reference the relabeled terminal solely through
        this rule's body, which they never cache into their own arrays."""
        if self._kernel is not None:
            self._kernel.evict(head)

    def _evict(self, head: Symbol) -> None:
        """Drop cached tables of ``head`` and its transitive dependents.

        A rule is only ever cached after its callees (anti-SL order), so a
        cached dependent always has its reverse edge registered here --
        walking the dependent closure is sound.  Uncached rules are clean
        by definition (they recompute lazily).
        """
        self._locations.clear()
        kernel = self._kernel
        stack = [head]
        while stack:
            current = stack.pop()
            if current not in self._node_segments:
                continue
            del self._node_segments[current]
            del self._elem_segments[current]
            self._tables.pop(current, None)
            if kernel is not None:
                # A pack can only exist for a rule with computed tables
                # (it aliases them), so the cascade reaches every pack.
                kernel.evict(current)
            self.evicted_rules += 1
            stack.extend(self._dependents.pop(current, ()))

    def invalidate_all(self) -> None:
        """Drop every cache entry (e.g. after a full recompression run)."""
        self._node_segments.clear()
        self._elem_segments.clear()
        self._tables.clear()
        self._dependents.clear()
        self._locations.clear()
        if self._kernel is not None:
            self._kernel.invalidate_all()
        self.wholesale_invalidations += 1

    def to_dict(self) -> dict:
        """Flat numeric view (the shared stats-object protocol)."""
        return {
            "evicted_rules": self.evicted_rules,
            "wholesale_invalidations": self.wholesale_invalidations,
            "cached_rules": len(self._node_segments),
        }

    # ------------------------------------------------------------------
    # flat-array kernel access
    # ------------------------------------------------------------------
    def active_kernel(self) -> Optional[GrammarKernel]:
        """The kernel, iff the flat descent may be used *right now*.

        ``None`` when the kernel is disabled, while *reader* snapshots
        are pinned on a live grammar (the object descent's ``rhs()``
        reads double as the copy-on-write preservation points -- the
        exact condition that also disables ``_locations`` memo hits;
        frozen snapshot grammars have no ``_reader_pins`` and stay
        kernel-served), or when the document has fewer than
        ``min_doc_elements`` elements (descents bottom out too fast for
        packing to amortize -- and a compressed start rule is a handful
        of RHS nodes even for a huge document, so the gate is on the
        document, not the rule).
        """
        kernel = self._kernel
        if kernel is None or getattr(self._grammar, "_reader_pins", 0):
            return None
        # ``min_doc_elements == 0`` means "always on": skip the
        # element-count summation, which would otherwise be paid once
        # per descent.
        threshold = kernel.min_doc_elements
        if threshold and self.element_count < threshold:
            return None
        return kernel

    def kernel_info(self) -> dict:
        """Kernel stats for status surfaces (``durable status --json``)."""
        if self._kernel is None:
            return {"enabled": False}
        return {"enabled": True, **self._kernel.to_dict()}

    @property
    def kernel(self) -> Optional[GrammarKernel]:
        """The kernel object itself (``None`` when disabled) -- for
        instrumentation wiring; descents must go through
        :meth:`active_kernel`."""
        return self._kernel

    @property
    def cached_rule_count(self) -> int:
        """How many rules currently have computed tables."""
        return len(self._node_segments)

    def is_cached(self, head: Symbol) -> bool:
        """True when ``head``'s tables are currently materialized."""
        return head in self._node_segments

    def cached_rules(self) -> Tuple[Symbol, ...]:
        """The rules with materialized segments, for external audits
        (the storage scrub verifies exactly these against a fresh
        recomputation and evicts the ones that drifted)."""
        return tuple(self._node_segments)

    # ------------------------------------------------------------------
    # snapshot state (the serializable half of the cache)
    # ------------------------------------------------------------------
    def export_segments(self) -> Dict[Symbol, Tuple[List[int], List[int]]]:
        """Per-rule (node, element) segment lists for every rule.

        Forces the whole reachable grammar first, so a snapshot built
        from this restores counting/addressing for *all* rules.  The
        id-keyed per-node tables are deliberately not exported -- they
        reference live ``Node`` objects and rebuild lazily per rule on
        first descent.
        """
        self._ensure(self._grammar.start)
        for head in self._grammar.rules:
            if head not in self._node_segments:
                self._ensure(head)  # unreachable-but-live rules, if any
        return {
            head: (list(self._node_segments[head]),
                   list(self._elem_segments[head]))
            for head in self._node_segments
        }

    def import_segments(
        self, segments: Dict[Symbol, Tuple[List[int], List[int]]]
    ) -> None:
        """Adopt snapshot segment lists without recomputation.

        Rebuilds the reverse call edges from the grammar so per-rule
        observer evictions keep cascading correctly over imported
        entries.  Counting queries (``element_count``, subtree sizes)
        are answered straight from the imported lists; descents rebuild
        their per-node tables lazily, one rule at a time.
        """
        grammar = self._grammar
        self._node_segments.clear()
        self._elem_segments.clear()
        self._tables.clear()
        self._dependents.clear()
        if self._kernel is not None:
            # A fresh table generation, not an eviction event: packs
            # rebuild lazily per rule (no wholesale-invalidation count --
            # snapshot opens must report ``rules_packed == 0`` cleanly).
            self._kernel.reset()
        for head, (node_segs, elem_segs) in segments.items():
            if head not in grammar.rules:
                raise GrammarError(
                    f"segments for unknown rule {head!r}"
                )
            if len(node_segs) != head.rank + 1 or \
                    len(elem_segs) != head.rank + 1:
                raise GrammarError(
                    f"rule {head!r}: segment arity does not match rank "
                    f"{head.rank}"
                )
            self._node_segments[head] = list(node_segs)
            self._elem_segments[head] = list(elem_segs)
        for head in self._node_segments:
            walk = [grammar.rhs(head)]
            seen: Set[Symbol] = set()
            while walk:
                node = walk.pop()
                symbol = node.symbol
                if symbol.is_nonterminal and symbol not in seen:
                    seen.add(symbol)
                    self._dependents.setdefault(symbol, set()).add(head)
                walk.extend(node.children)

    # ------------------------------------------------------------------
    # lazy recompute (bottom-up along the call DAG)
    # ------------------------------------------------------------------
    def _ensure(self, head: Symbol) -> None:
        # Membership is judged on the id-keyed per-node tables, not the
        # segment lists: imported snapshot state restores the segments
        # (the cross-rule aggregates) without tables, and those rules
        # must still rebuild their table lazily on first descent.
        if head in self._tables:
            return
        pending: Set[Symbol] = set()
        stack = [head]
        while stack:
            current = stack[-1]
            if current in self._tables:
                pending.discard(current)
                stack.pop()
                continue
            pending.add(current)
            rhs = self._grammar.rhs(current)
            callees: List[Symbol] = []
            seen: Set[Symbol] = set()
            walk = [rhs]
            while walk:
                node = walk.pop()
                symbol = node.symbol
                if symbol.is_nonterminal and symbol not in seen:
                    seen.add(symbol)
                    callees.append(symbol)
                walk.extend(node.children)
            missing = [c for c in callees if c not in self._node_segments]
            if missing:
                for callee in missing:
                    if callee in pending:
                        raise GrammarError(
                            f"grammar is recursive: cycle through {callee!r}"
                        )
                stack.extend(missing)
                continue
            self._compute(current, rhs, callees)
            pending.discard(current)
            stack.pop()

    def _compute(self, head: Symbol, rhs: Node, callees: List[Symbol]) -> None:
        node_segments = self._node_segments
        elem_segments = self._elem_segments

        # Pass 1 (post-order): per-node generated sizes and parameter sets.
        table: Dict[int, _NodeInfo] = {}
        stack: List[Tuple[Node, bool]] = [(rhs, False)]
        while stack:
            node, expanded = stack.pop()
            if not expanded:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))
                continue
            symbol = node.symbol
            if symbol.is_parameter:
                table[id(node)] = (0, 0, (symbol.param_index,))
                continue
            nodes = elems = 0
            params: Tuple[int, ...] = ()
            for child in node.children:
                child_nodes, child_elems, child_params = table[id(child)]
                nodes += child_nodes
                elems += child_elems
                if child_params:
                    params += child_params
            if symbol.is_terminal:
                nodes += 1
                if not symbol.is_bottom:
                    elems += 1
            else:
                nodes += sum(node_segments[symbol])
                elems += sum(elem_segments[symbol])
            table[id(node)] = (nodes, elems, params)

        # Pass 2 (preorder): split both counts at the parameters, weaving in
        # the callees' segments around their argument subtrees.
        node_segs: List[int] = []
        elem_segs: List[int] = []
        current_nodes = current_elems = 0
        walk: List[object] = [rhs]
        while walk:
            item = walk.pop()
            if item.__class__ is tuple:
                current_nodes += item[0]
                current_elems += item[1]
                continue
            symbol = item.symbol
            if symbol.is_parameter:
                node_segs.append(current_nodes)
                elem_segs.append(current_elems)
                current_nodes = current_elems = 0
            elif symbol.is_terminal:
                current_nodes += 1
                if not symbol.is_bottom:
                    current_elems += 1
                walk.extend(reversed(item.children))
            else:
                callee_nodes = node_segments[symbol]
                callee_elems = elem_segments[symbol]
                current_nodes += callee_nodes[0]
                current_elems += callee_elems[0]
                interleaved: List[object] = []
                for position, child in enumerate(item.children, start=1):
                    interleaved.append(child)
                    interleaved.append(
                        (callee_nodes[position], callee_elems[position])
                    )
                walk.extend(reversed(interleaved))
        node_segs.append(current_nodes)
        elem_segs.append(current_elems)
        if len(node_segs) != head.rank + 1:
            raise GrammarError(
                f"rule {head!r}: found {len(node_segs) - 1} parameters, "
                f"rank is {head.rank}"
            )

        node_segments[head] = node_segs
        elem_segments[head] = elem_segs
        self._tables[head] = table
        for callee in callees:
            self._dependents.setdefault(callee, set()).add(head)

    # ------------------------------------------------------------------
    # whole-document totals
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """``|valG(S)|`` in nodes (including ``⊥``), without decompression."""
        start = self._grammar.start
        self._ensure(start)
        return sum(self._node_segments[start])

    @property
    def element_count(self) -> int:
        """Number of non-``⊥`` nodes of ``valG(S)``: the document's elements."""
        start = self._grammar.start
        self._ensure(start)
        return sum(self._elem_segments[start])

    def segments(self) -> _SegmentsView:
        """Node segments as a lazy mapping, API-compatible with
        :func:`repro.grammar.properties.parameter_segments`."""
        return _SegmentsView(self)

    # ------------------------------------------------------------------
    # element addressing
    # ------------------------------------------------------------------
    def _sizes(
        self,
        node: Node,
        env: Tuple[_Binding, ...],
        table: Dict[int, _NodeInfo],
    ) -> Tuple[int, int]:
        """Generated (nodes, elements) of a RHS subtree with parameters bound."""
        nodes, elems, params = table[id(node)]
        for param in params:
            binding = env[param - 1]
            nodes += binding[3]
            elems += binding[4]
        return nodes, elems

    def _locate_element(
        self, element_index: int, track_axes: bool = False
    ) -> Tuple[int, Node, Tuple[_Binding, ...], Dict[int, _NodeInfo],
               List[PathStep], Optional[int], int]:
        """Descend the derivation to the ``element_index``-th element.

        Returns ``(binary preorder index, generating terminal node, binding
        environment, that node's rule table, derivation path, parent
        element index, document depth)``: everything the public queries
        need, in one ``O(depth · rule-width)`` walk.
        The recorded :class:`PathStep` list is exactly what
        :func:`repro.grammar.navigation.resolve_preorder_path` would
        produce for the resulting preorder index, so path isolation can
        replay it without a second descent.

        With ``track_axes`` the walk visits *every* binary ancestor of the
        target: in the first-child/next-sibling encoding the target's
        document parent is the last element from which the walk takes a
        first-child (slot 1) edge -- next-sibling (slot 2) edges stay on
        the same child list -- and depth counts those edges (the root has
        depth 0).  This forgoes the descend-directly-into-an-argument
        shortcut (whose skipped rule-body path may contain exactly those
        ancestors) and always enters the rule instead: same
        ``O(depth · rule-width)`` bound, and the recorded steps then
        over-approximate the isolation path, so axis queries ignore them.
        Without ``track_axes`` the two trailing results are meaningless.
        """
        check_element_index(element_index)
        total = self.element_count  # ensures the start rule's tables
        if element_index >= total:
            raise IndexError(
                f"element index {element_index} out of range "
                f"({total} elements)"
            )
        grammar = self._grammar
        key = (element_index, track_axes)
        cached = self._locations.get(key)
        if cached is not None and not getattr(grammar, "_reader_pins", 0):
            # Cache hits are disabled while *reader* snapshots are
            # pinned: the descent's ``rhs()`` reads double as the
            # copy-on-write preservation points for the rules an update
            # is about to rewrite in place, and a memoized path would
            # skip them.  Transaction-rollback pins don't count -- the
            # batch machinery preserves every rule it rewrites through
            # its own reads (see :meth:`Grammar.pin`).
            position, node, env, table, steps, parent, depth = cached
            return position, node, env, table, list(steps), parent, depth
        kernel = self.active_kernel()
        if kernel is not None:
            # Flat-array descent (repro.grammar.kernel): same result
            # tuple, binding 7-tuples whose slots 0..4 match _Binding, so
            # memo entries and downstream size lookups are format-agnostic.
            located = kernel_locate_element(
                self, kernel, element_index, track_axes
            )
            position, node, env, table, steps, parent, depth = located
            if len(self._locations) >= 4096:
                self._locations.clear()
            self._locations[key] = (
                position, node, env, table, tuple(steps), parent, depth,
            )
            return position, node, env, table, steps, parent, depth
        node = grammar.rhs(grammar.start)
        table = self._tables[grammar.start]
        env: Tuple[_Binding, ...] = ()
        remaining = element_index  # elements still preceding the target
        position = 0  # binary preorder nodes consumed so far
        parent: Optional[int] = None  # document parent of the target
        depth = 0  # first-child edges taken so far
        steps: List[PathStep] = []

        while True:
            symbol = node.symbol
            if symbol.is_parameter:
                binding = env[symbol.param_index - 1]
                node, env, table = binding[0], binding[1], binding[2]
                continue

            if symbol.is_terminal:
                is_element = not symbol.is_bottom
                if is_element:
                    if remaining == 0:
                        steps.append(PathStep(node, enters_rule=False))
                        if len(self._locations) >= 4096:
                            self._locations.clear()
                        self._locations[key] = (
                            position, node, env, table, tuple(steps),
                            parent, depth,
                        )
                        return position, node, env, table, steps, parent, depth
                    remaining -= 1
                position += 1
                for slot, child in enumerate(node.children):
                    child_nodes, child_elems = self._sizes(child, env, table)
                    if remaining < child_elems:
                        if is_element and symbol.rank == 2 and slot == 0:
                            # The element just visited is the last one the
                            # walk left through a first-child edge: the
                            # target's parent so far.
                            parent = element_index - remaining - 1
                            depth += 1
                        node = child
                        break
                    remaining -= child_elems
                    position += child_nodes
                else:  # pragma: no cover - would mean inconsistent tables
                    raise AssertionError("element offset beyond subtree")
                continue

            # Nonterminal application: its virtual preorder interleaves the
            # rule body's segments with the argument subtrees
            # (seg0, arg1, seg1, ..., argk, segk).  An argument target is
            # descended into directly; a body-segment target enters the rule
            # with both counters unchanged -- walking the body under the
            # bindings reproduces exactly the interleaved sequence.
            if symbol not in self._tables:
                self._ensure(symbol)
            if not track_axes:
                # Shortcut: a target inside an argument subtree is descended
                # into directly.  Axis tracking must not take it -- the
                # skipped rule-body path may contain the target's binary
                # ancestors (in particular its document parent); entering
                # the rule below reproduces the same interleaved sequence
                # and visits them.
                callee_nodes = self._node_segments[symbol]
                callee_elems = self._elem_segments[symbol]
                descend_to = None
                preceding_nodes = callee_nodes[0]
                preceding_elems = callee_elems[0]
                if remaining >= preceding_elems:
                    for child_pos, child in enumerate(node.children, start=1):
                        child_nodes, child_elems = \
                            self._sizes(child, env, table)
                        if remaining < preceding_elems + child_elems:
                            remaining -= preceding_elems
                            position += preceding_nodes
                            descend_to = child
                            break
                        preceding_elems += \
                            child_elems + callee_elems[child_pos]
                        preceding_nodes += \
                            child_nodes + callee_nodes[child_pos]
                        if remaining < preceding_elems:
                            break  # a body segment after this arg: enter
                if descend_to is not None:
                    node = descend_to
                    continue
            steps.append(PathStep(node, enters_rule=True))
            outer_env = env
            env = tuple(
                (child, outer_env, table)
                + self._sizes(child, outer_env, table)
                for child in node.children
            )
            node = grammar.rhs(symbol)
            table = self._tables[symbol]

    def preorder_of_element(self, element_index: int) -> int:
        """Binary preorder index of the ``element_index``-th element."""
        return self._locate_element(element_index)[0]

    def iter_element_symbols(
        self, start: int, stop: Optional[int] = None
    ) -> Iterator[Symbol]:
        """Element symbols ``start..stop-1`` in document order.

        The walk mirrors :func:`repro.grammar.navigation.stream_preorder`
        but skips any RHS subtree generating only elements before
        ``start`` in O(1) via the cached subtree sizes, so reaching the
        window costs O(depth · rule-width) instead of streaming the
        ``start`` preceding elements -- this is the indexed range
        iterator behind :meth:`repro.api.CompressedXml.tags`.
        """
        # From-the-end indices are ambiguous under concurrent updates;
        # reject negative bounds uniformly instead of silently yielding an
        # empty window for a negative ``stop`` (slicing-like callers
        # would misread that as "window past the end").
        check_element_index(start, "element window start")
        if stop is not None:
            check_element_index(stop, "element window stop")
        total = self.element_count  # ensures the start rule's tables
        if stop is None or stop > total:
            stop = total
        kernel = self.active_kernel()
        if kernel is not None:
            return kernel_iter_element_symbols(self, kernel, start, stop)
        return self._iter_element_symbols(start, stop)

    def _iter_element_symbols(self, start: int, stop: int) -> Iterator[Symbol]:
        if start >= stop:
            return
        grammar = self._grammar
        to_skip = start
        to_yield = stop - start
        stack: List[Tuple[Node, tuple, Dict[int, _NodeInfo]]] = [
            (grammar.rhs(grammar.start), (), self._tables[grammar.start])
        ]
        while stack:
            node, env, table = stack.pop()
            symbol = node.symbol
            if symbol.is_parameter:
                binding = env[symbol.param_index - 1]
                stack.append((binding[0], binding[1], binding[2]))
                continue
            if to_skip:
                _nodes, elems = self._sizes(node, env, table)
                if elems <= to_skip:
                    to_skip -= elems
                    continue  # window starts after this whole subtree
            if symbol.is_terminal:
                if not symbol.is_bottom:
                    if to_skip:
                        to_skip -= 1
                    else:
                        yield symbol
                        to_yield -= 1
                        if not to_yield:
                            return
                for child in reversed(node.children):
                    stack.append((child, env, table))
            else:
                if symbol not in self._tables:
                    self._ensure(symbol)
                outer_env = env
                inner_env = tuple(
                    (child, outer_env, table)
                    + self._sizes(child, outer_env, table)
                    for child in node.children
                )
                stack.append(
                    (grammar.rhs(symbol), inner_env, self._tables[symbol])
                )

    def resolve_element(
        self, element_index: int
    ) -> Tuple[int, List[PathStep]]:
        """One-descent combo for the update path: the element's binary
        preorder index *and* its derivation path, ready for
        :func:`repro.updates.path_isolation.isolate` to replay."""
        located = self._locate_element(element_index)
        return located[0], located[4]

    def resolve_preorder(self, position: int) -> List[PathStep]:
        """Derivation path to the node at binary preorder ``position``.

        Produces exactly the steps
        :func:`repro.grammar.navigation.resolve_preorder_path` would --
        but descends on the cached per-RHS-node subtree sizes, so each
        step costs O(rule width) instead of the O(generated subtree)
        node walk ``generated_size_of_subtree_with_env`` pays per child
        probe.  This is the resolver behind append targets (child-list
        terminators are *nodes*, not elements, so the element descent
        cannot address them): without it, every append to a long child
        list re-walks the list's whole compressed representation.
        """
        check_element_index(position, "preorder position")
        total = self.node_count  # ensures the start rule's tables
        if position >= total:
            raise IndexError(
                f"preorder index {position} out of range for a tree of "
                f"{total} nodes"
            )
        kernel = self.active_kernel()
        if kernel is not None:
            return kernel_resolve_preorder(self, kernel, position)
        grammar = self._grammar
        node = grammar.rhs(grammar.start)
        table = self._tables[grammar.start]
        env: Tuple[_Binding, ...] = ()
        remaining = position
        steps: List[PathStep] = []

        while True:
            symbol = node.symbol
            if symbol.is_parameter:
                binding = env[symbol.param_index - 1]
                node, env, table = binding[0], binding[1], binding[2]
                continue

            if symbol.is_terminal:
                if remaining == 0:
                    steps.append(PathStep(node, enters_rule=False))
                    return steps
                remaining -= 1  # the terminal itself
                for child in node.children:
                    child_nodes, _elems = self._sizes(child, env, table)
                    if remaining < child_nodes:
                        node = child
                        break
                    remaining -= child_nodes
                else:  # pragma: no cover - inconsistent tables
                    raise AssertionError("offset beyond subtree")
                continue

            # Nonterminal application: virtual preorder interleaves the
            # body segments with the argument subtrees (seg0, arg1,
            # seg1, ..., argk, segk); a body-segment target enters the
            # rule with ``remaining`` unchanged, an argument target is
            # descended into directly (mirrors resolve_preorder_path).
            if symbol not in self._tables:
                self._ensure(symbol)
            callee_nodes = self._node_segments[symbol]
            descend_to: Optional[Node] = None
            preceding = callee_nodes[0]
            if remaining >= preceding:
                for child_pos, child in enumerate(node.children, start=1):
                    child_nodes, _elems = self._sizes(child, env, table)
                    if remaining < preceding + child_nodes:
                        remaining -= preceding
                        descend_to = child
                        break
                    preceding += child_nodes + callee_nodes[child_pos]
                    if remaining < preceding:
                        break  # a body segment after this arg: enter
            if descend_to is not None:
                node = descend_to
                continue
            steps.append(PathStep(node, enters_rule=True))
            outer_env = env
            env = tuple(
                (child, outer_env, table)
                + self._sizes(child, outer_env, table)
                for child in node.children
            )
            node = grammar.rhs(symbol)
            table = self._tables[symbol]

    def tag_of(self, element_index: int) -> str:
        """Label of the ``element_index``-th element (document order)."""
        return self._locate_element(element_index)[1].symbol.name

    def resolve_element_with_extent(
        self, element_index: int
    ) -> Tuple[int, List[PathStep], int, int]:
        """Everything batch planning needs about an element, in one walk.

        Returns ``(binary preorder index, derivation path, unranked
        subtree extent in elements, child-list terminator's binary
        preorder index)`` -- the combination of :meth:`resolve_element`,
        :meth:`element_subtree_extent`, and
        :meth:`end_of_children_position` at the cost of a single
        ``O(depth · rule-width)`` descent.
        """
        position, node, env, table, steps, _parent, _depth = \
            self._locate_element(element_index)
        if node.symbol.rank != 2:
            raise GrammarError(
                f"element {element_index} is generated by "
                f"{node.symbol!r}; expected a binary-encoded element of rank 2"
            )
        first_nodes, first_elems = self._sizes(node.children[0], env, table)
        return position, steps, 1 + first_elems, position + first_nodes

    def element_subtree_extent(self, element_index: int) -> int:
        """Elements of the *unranked* subtree rooted at an element.

        The element itself plus all of its document descendants: in the
        first-child/next-sibling encoding these are exactly the element
        and the non-``⊥`` terminals of its first-child subtree, so the
        answer is one subtree-size lookup (``O(depth · rule-width)``).
        ``delete(element_index)`` removes exactly this many elements --
        the quantity batch planning needs to shift later targets.
        """
        _pos, node, env, table, _steps, _parent, _depth = \
            self._locate_element(element_index)
        if node.symbol.rank != 2:
            raise GrammarError(
                f"element {element_index} is generated by "
                f"{node.symbol!r}; expected a binary-encoded element of rank 2"
            )
        _nodes, elems = self._sizes(node.children[0], env, table)
        return 1 + elems

    def end_of_children_position(self, element_index: int) -> int:
        """Preorder index of the ``⊥`` terminating an element's child list.

        In the first-child/next-sibling encoding the terminator is the
        preorder-last node of the element's first-child subtree, so it sits
        exactly ``size(subtree(u.1))`` positions after the element ``u``
        itself -- one subtree-size lookup instead of a stream walk.
        """
        position, node, env, table, _steps, _parent, _depth = \
            self._locate_element(element_index)
        if node.symbol.rank != 2:
            raise GrammarError(
                f"element {element_index} is generated by "
                f"{node.symbol!r}; expected a binary-encoded element of rank 2"
            )
        first_child_nodes, _ = self._sizes(node.children[0], env, table)
        return position + first_child_nodes

    # ------------------------------------------------------------------
    # document-tree navigation (axes over element indices)
    # ------------------------------------------------------------------
    def _child_slot_elements(self, element_index: int) -> Tuple[int, int]:
        """Elements generated below the element's two binary slots:
        ``(descendants, following siblings + their descendants)``."""
        _pos, node, env, table, _steps, _parent, _depth = \
            self._locate_element(element_index)
        if node.symbol.rank != 2:
            raise GrammarError(
                f"element {element_index} is generated by "
                f"{node.symbol!r}; expected a binary-encoded element of rank 2"
            )
        _nodes, below = self._sizes(node.children[0], env, table)
        _nodes, after = self._sizes(node.children[1], env, table)
        return below, after

    def parent_of(self, element_index: int) -> Optional[int]:
        """Element index of the document parent (``None`` for the root).

        One ``O(depth · rule-width)`` descent: the parent is the last
        element from which the descent took a first-child edge.
        """
        return self._locate_element(element_index, track_axes=True)[5]

    def depth_of(self, element_index: int) -> int:
        """Document depth of an element (the root has depth 0)."""
        return self._locate_element(element_index, track_axes=True)[6]

    def first_child(self, element_index: int) -> Optional[int]:
        """Element index of the first child, or ``None`` for a leaf.

        In document order the first child immediately follows its parent,
        so the answer is ``element_index + 1`` whenever the element's
        first-child slot generates any element at all.
        """
        below, _after = self._child_slot_elements(element_index)
        return element_index + 1 if below else None

    def next_sibling(self, element_index: int) -> Optional[int]:
        """Element index of the next sibling, or ``None`` for a last child.

        The next sibling follows the element's whole subtree in document
        order: ``element_index + 1 + #descendants``, provided the
        next-sibling slot generates any element.
        """
        below, after = self._child_slot_elements(element_index)
        return element_index + 1 + below if after else None

    def children_with_tags(self, element_index: int) -> Iterator[Tuple[int, str]]:
        """``(element index, tag)`` of the direct children, document order.

        One ``O(depth · rule-width)`` descent per child: each locate
        yields the child's terminal (its tag for free) *and* the subtree
        sizes that address the next sibling -- the single-pass primitive
        child-axis query steps ride, instead of paying separate
        ``next_sibling`` + ``tag_of`` descents per sibling.
        """
        child = self.first_child(element_index)
        while child is not None:
            _pos, node, env, table, _steps, _parent, _depth = \
                self._locate_element(child)
            if node.symbol.rank != 2:
                raise GrammarError(
                    f"element {child} is generated by {node.symbol!r}; "
                    f"expected a binary-encoded element of rank 2"
                )
            yield child, node.symbol.name
            _nodes, after = self._sizes(node.children[1], env, table)
            if not after:
                return
            _nodes, below = self._sizes(node.children[0], env, table)
            child = child + 1 + below

    def children(self, element_index: int) -> Iterator[int]:
        """Element indices of the direct children, in document order.

        Each step is one derivation descent, so enumerating ``k``
        children costs ``O(k · depth · rule-width)`` -- independent of
        the subtree sizes skipped between siblings.
        """
        for child, _tag in self.children_with_tags(element_index):
            yield child

    # ------------------------------------------------------------------
    # raw table access (the query subsystem's substrate)
    # ------------------------------------------------------------------
    def rule_table(self, head: Symbol) -> Dict[int, _NodeInfo]:
        """The per-RHS-node ``(nodes, elements, parameters)`` table of a
        rule, computing it (and its callees') on demand.

        This is the read-only substrate :mod:`repro.query.engine` walks:
        the entries are keyed by ``id(rhs_node)`` and stay valid exactly
        as long as the rule is untouched -- the observer channel evicts
        the table on any mutation, so callers must re-fetch per query and
        never cache across updates.
        """
        self._ensure(head)
        return self._tables[head]

    def element_segments(self, head: Symbol) -> List[int]:
        """The rule's element-count segments ``[e0, ..., ek]``: elements
        generated by the body before the first parameter, between
        consecutive parameters (preorder), and after the last.

        The query engine uses them to hop over a rule body whose label
        census is zero without walking it: the virtual preorder is
        ``seg0, arg1, seg1, ..., argk, segk``, so the element cursor can
        advance by whole body segments while only the argument subtrees
        are visited.  Same caching/invalidation as every other table.
        """
        self._ensure(head)
        return self._elem_segments[head]
