"""Lock hierarchy for shard-scoped concurrent commits.

Shards (:mod:`repro.grammar.sharding`) are single-reference spine
subtrees -- disjoint write domains -- so two batches that touch
different shards may commit in parallel; batches that meet on a shard
must serialize, and whole-document maintenance (an explicit full
recompression, a checkpoint cutover) needs a barrier against every
in-flight commit.  Three layers, always acquired top-down:

1. the **spine gate** (:class:`SpineGate`): shared by every shard-scoped
   commit, exclusive for reshard/recompress-style barriers;
2. **per-shard locks** (:class:`ShardLockTable`): one ``threading.Lock``
   per spine rule head, acquired in sorted order (deadlock-free) for
   all shards a batch touches;
3. whatever the caller serializes below (the durable layer's commit
   lock, the document's write lock, the grammar's version lock).

The table is policy-free: it never inspects the grammar.  Mapping a
batch to its shard heads is the document layer's job
(:meth:`repro.api.CompressedXml.shard_heads_for`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator

from repro.trees.symbols import Symbol

__all__ = ["ShardLockTable", "SpineGate"]


class SpineGate:
    """A reader-writer gate over the shard spine.

    ``shared()`` admits any number of concurrent holders (shard-scoped
    commits); ``exclusive()`` waits out the holders and blocks new ones
    (reshard/recompress/checkpoint barriers).  Writers are preferred:
    once an exclusive acquisition is pending, new shared entries wait,
    so a barrier cannot starve under a steady commit stream.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._shared = 0
        self._exclusive = False

    @contextmanager
    def shared(self) -> Iterator[None]:
        with self._cond:
            while self._exclusive:
                self._cond.wait()
            self._shared += 1
        try:
            yield
        finally:
            with self._cond:
                self._shared -= 1
                if self._shared == 0:
                    self._cond.notify_all()

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        with self._cond:
            while self._exclusive:
                self._cond.wait()
            self._exclusive = True
            while self._shared:
                self._cond.wait()
        try:
            yield
        finally:
            with self._cond:
                self._exclusive = False
                self._cond.notify_all()


class ShardLockTable:
    """One lock per shard head, acquired in sorted order.

    Locks are minted on first use and never retired: a shard head that
    was merged away keeps a (cheap, uncontended) lock behind, which
    spares every acquisition a registration dance with the reshard
    policy.
    """

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._locks: Dict[Symbol, threading.Lock] = {}
        self.spine = SpineGate()

    def lock_for(self, head: Symbol) -> threading.Lock:
        with self._guard:
            return self._locks.setdefault(head, threading.Lock())

    @contextmanager
    def holding(self, heads: Iterable[Symbol]) -> Iterator[None]:
        """Hold the locks of every given shard head (sorted acquisition).

        Duplicates are collapsed; the empty set is a no-op.  Nest only
        inside :meth:`SpineGate.shared` -- never acquire the gate's
        exclusive side while holding shard locks.
        """
        ordered = sorted(set(heads), key=lambda symbol: symbol.name)
        locks = [self.lock_for(head) for head in ordered]
        for lock in locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(locks):
                lock.release()

    def __len__(self) -> int:
        with self._guard:
            return len(self._locks)
