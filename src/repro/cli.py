"""``repro-xml``: command-line front end.

Subcommands::

    repro-xml compress  doc.xml -o doc.grammar      # XML -> grammar
    repro-xml decompress doc.grammar -o doc.xml     # grammar -> XML
    repro-xml stats     doc.xml | doc.grammar       # Table III-style row
    repro-xml query     doc.grammar '/log//status'  # grammar-native select
    repro-xml update    doc.grammar rename 3 newtag [-o out.grammar]
    repro-xml durable   init store/ --xml doc.xml   # crash-safe store
    repro-xml durable   update store/ rename 3 newtag
    repro-xml durable   metrics store/ --prometheus # scrape endpoint text
    repro-xml experiment table3 figure2 ...         # regenerate results
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import CompressedXml
from repro.trees.xml_io import parse_xml


def _load(path: str, **kwargs) -> CompressedXml:
    if path.endswith(".grammar"):
        return CompressedXml.from_grammar_file(path, **kwargs)
    return CompressedXml.from_file(path, **kwargs)


def _cmd_compress(args) -> int:
    doc = CompressedXml.from_file(args.input, kin=args.kin)
    output = args.output or (args.input + ".grammar")
    doc.save_grammar(output)
    print(
        f"{args.input}: {doc.edge_count} edges -> grammar of "
        f"{doc.compressed_size} edges "
        f"({100.0 * doc.compression_ratio:.2f}%) -> {output}"
    )
    return 0


def _cmd_decompress(args) -> int:
    doc = CompressedXml.from_grammar_file(args.input)
    xml = doc.to_xml(indent=2 if args.pretty else None)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(xml)
        print(f"wrote {args.output} ({doc.element_count} elements)")
    else:
        print(xml)
    return 0


def _cmd_stats(args) -> int:
    doc = _load(args.input)
    print(f"elements:    {doc.element_count}")
    print(f"edges:       {doc.edge_count}")
    print(f"c-edges:     {doc.compressed_size}")
    print(f"ratio:       {100.0 * doc.compression_ratio:.3f}%")
    return 0


def _cmd_query(args) -> int:
    doc = _load(args.input)
    if args.count:
        print(doc.count(args.path))
        return 0
    matches = doc.select(args.path)
    shown = matches if args.limit is None else matches[: args.limit]
    for index in shown:
        if args.extract:
            print(doc.subtree_xml(index))
        else:
            print(f"{index}\t{doc.tag_of(index)}")
    if len(shown) < len(matches):
        print(f"... {len(matches) - len(shown)} more", file=sys.stderr)
    print(f"{len(matches)} match(es)", file=sys.stderr)
    return 0


def _cmd_update(args) -> int:
    doc = _load(args.input)
    operation = args.operation
    if operation == "rename":
        doc.rename(int(args.args[0]), args.args[1])
    elif operation == "delete":
        doc.delete(int(args.args[0]))
    elif operation == "insert":
        fragment = parse_xml(args.args[1])
        doc.insert(int(args.args[0]), fragment)
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(operation)
    if not args.no_recompress:
        doc.recompress()
    output = args.output or args.input
    if output.endswith(".grammar"):
        doc.save_grammar(output)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(doc.to_xml())
    print(
        f"{operation} applied; grammar size {doc.compressed_size} "
        f"-> {output}"
    )
    return 0


def _cmd_durable(args) -> int:
    from repro.storage import (
        CheckpointError,
        DurableXml,
        RecoveryError,
        StoreDegraded,
        WalWriteError,
    )

    try:
        return _run_durable(args, DurableXml)
    except (StoreDegraded, RecoveryError, CheckpointError,
            WalWriteError) as exc:
        # Typed storage failures are operator-facing conditions, not
        # programming errors: one diagnostic line and a non-zero exit
        # instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        if isinstance(exc, StoreDegraded):
            print(
                "the store is serving reads only; fix the disk and run "
                "'durable checkpoint' (or 'durable scrub --repair') to "
                "restore writes",
                file=sys.stderr,
            )
        return 1


def _run_durable(args, DurableXml) -> int:
    action = args.action
    if action == "init":
        if not args.xml:
            print("durable init needs --xml FILE", file=sys.stderr)
            return 2
        with open(args.xml, "r", encoding="utf-8") as handle:
            text = handle.read()
        with DurableXml.from_xml(
            args.store, text, overwrite=args.overwrite
        ) as store:
            print(
                f"initialized {args.store}: {store.element_count} elements, "
                f"grammar size {store.compressed_size}, generation 0"
            )
        return 0

    with DurableXml.open(args.store) as store:
        recovery = store.last_recovery
        if action == "status":
            if args.json:
                _print_json(_status_dict(store))
                return 0
            print(f"store:       {store.directory}")
            print(f"generation:  {store.generation}")
            print(f"wal bytes:   {store.wal_size}")
            print(
                f"wal chain:   {store.wal_segment_count} segment(s), "
                f"active segment {store._wal.active_segment} "
                f"({store._wal.active_segment_size} bytes)"
            )
            print(f"replayed:    {recovery.replayed} record(s)")
            if recovery.degraded:
                print("recovered:   degraded (previous snapshot generation)")
            if recovery.dropped_tail_record:
                print("recovered:   dropped unacknowledged tail record")
            print(f"degraded:    "
                  f"{'yes (read-only)' if store.degraded else 'no'}")
            print(f"elements:    {store.element_count}")
            print(f"c-edges:     {store.compressed_size}")
            mvcc = store.mvcc_info()
            print(f"epoch:       {mvcc['epoch']}")
            pins = mvcc["pinned_snapshots"]
            if pins:
                age = mvcc["oldest_pin_age_seconds"]
                print(f"snapshots:   {pins} pinned "
                      f"(oldest epoch {min(mvcc['pinned_epochs'])}, "
                      f"age {age:.1f}s)")
            else:
                print("snapshots:   0 pinned")
        elif action == "update":
            operation = args.args[0]
            if operation == "rename":
                store.rename(int(args.args[1]), args.args[2])
            elif operation == "insert":
                store.insert(int(args.args[1]), parse_xml(args.args[2]))
            elif operation == "append":
                store.append_child(int(args.args[1]), parse_xml(args.args[2]))
            elif operation == "delete":
                store.delete(int(args.args[1]))
            else:
                print(f"unknown durable update {operation!r}",
                      file=sys.stderr)
                return 2
            print(
                f"{operation} committed; generation {store.generation}, "
                f"wal {store.wal_size} bytes"
            )
        elif action == "query":
            matches = store.select(args.args[0])
            for index in matches:
                print(f"{index}\t{store.tag_of(index)}")
            print(f"{len(matches)} match(es)", file=sys.stderr)
        elif action == "checkpoint":
            generation = store.checkpoint()
            print(f"checkpointed: now at generation {generation}")
        elif action == "scrub":
            report = store.scrub(repair=args.repair)
            summary = report.summary()
            print(f"scrubbed:    {summary['checked']['snapshots']} "
                  f"snapshot(s), {summary['checked']['wal_files']} WAL "
                  f"file(s) ({summary['checked']['wal_records']} "
                  f"records), {summary['checked']['index_rules']} index "
                  f"rule(s), {summary['checked']['label_rules']} label "
                  f"census(es), {summary['checked']['elements']} "
                  f"element(s)")
            for finding in report.findings:
                state = "repaired" if finding.repaired else "FOUND"
                print(f"{state}:    [{finding.kind}] {finding.subject}: "
                      f"{finding.detail}")
            if report.repair_error:
                print(f"repair error: {report.repair_error}",
                      file=sys.stderr)
                return 1
            if report.ok:
                print("scrub:       clean")
            elif not args.repair:
                print("scrub:       findings above; re-run with "
                      "--repair to fix", file=sys.stderr)
                return 1
            return 0
        elif action == "health":
            health = store.health()
            if args.json:
                _print_json(health)
            else:
                _print_health_table(health)
        elif action == "metrics":
            registry = store.metrics_registry
            if args.prometheus:
                sys.stdout.write(registry.render_prometheus())
            else:
                sys.stdout.write(registry.render_table())
        else:  # pragma: no cover - argparse restricts choices
            raise AssertionError(action)
    return 0


def _status_dict(store) -> dict:
    """The pinned ``durable status --json`` schema."""
    wal = store._wal.to_dict()
    wal["segment_bytes_limit"] = store._wal_segment_bytes
    recovery = store.last_recovery
    return {
        "directory": store.directory,
        "generation": store.generation,
        "degraded": store.degraded,
        "element_count": store.element_count,
        "compressed_size": store.compressed_size,
        "wal": wal,
        "recovery": recovery.to_dict() if recovery is not None else None,
        "mvcc": store.mvcc_info(),
        "kernel": store.document.index.kernel_info(),
    }


def _print_json(payload: dict) -> None:
    import json

    print(json.dumps(payload, indent=2, sort_keys=True))


def _print_health_table(health: dict) -> None:
    print(f"store:       {health['directory']}")
    print(f"generation:  {health['generation']}")
    print(f"elements:    {health['element_count']}")
    print(f"degraded:    "
          f"{'yes (read-only)' if health['degraded'] else 'no'}")
    if health["degraded_cause"]:
        print(f"cause:       {health['degraded_cause']}")
    wal = health["wal"]
    print(f"wal:         {wal['size_bytes']} bytes, "
          f"{wal['segment_count']} segment(s), "
          f"{wal['rotations']} rotation(s)")
    if wal["tail_error"]:
        print(f"wal tail:    {wal['tail_error']}")
    mvcc = health["mvcc"]
    print(f"mvcc:        epoch {mvcc['epoch']}, "
          f"{mvcc['pinned_snapshots']} pinned snapshot(s), "
          f"group commit "
          f"{'on' if mvcc['group_commit'] else 'off'}")
    if health["last_checkpoint_error"]:
        print(f"checkpoint:  last error: "
              f"{health['last_checkpoint_error']}")
    scrub = health["last_scrub"]
    if scrub is not None:
        print(f"scrub:       {'clean' if scrub['ok'] else 'FINDINGS'} "
              f"({scrub['repaired']} repaired)")
    print("(full machine-readable report: durable health --json)")


def _cmd_experiment(args) -> int:
    from repro.experiments import EXPERIMENTS

    for name in args.names:
        module = EXPERIMENTS.get(name)
        if module is None:
            print(
                f"unknown experiment {name!r}; known: "
                f"{', '.join(EXPERIMENTS)}",
                file=sys.stderr,
            )
            return 2
        module.main()
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xml",
        description="Grammar-compressed XML with incremental updates "
        "(ICDE 2016 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress XML into a grammar")
    p.add_argument("input")
    p.add_argument("-o", "--output")
    p.add_argument("--kin", type=int, default=4)
    p.set_defaults(handler=_cmd_compress)

    p = sub.add_parser("decompress", help="expand a grammar back to XML")
    p.add_argument("input")
    p.add_argument("-o", "--output")
    p.add_argument("--pretty", action="store_true")
    p.set_defaults(handler=_cmd_decompress)

    p = sub.add_parser("stats", help="document/grammar statistics")
    p.add_argument("input")
    p.set_defaults(handler=_cmd_stats)

    p = sub.add_parser(
        "query",
        help="evaluate a label path on the grammar (no decompression)",
    )
    p.add_argument("input")
    p.add_argument(
        "path",
        help="label path, e.g. /log/entry, //status, /log/entry[3]/ip",
    )
    p.add_argument(
        "--count", action="store_true",
        help="print only the number of matches",
    )
    p.add_argument(
        "--extract", action="store_true",
        help="print each match's subtree XML (partial derivation) "
        "instead of index/tag lines",
    )
    p.add_argument(
        "--limit", type=int, default=None,
        help="print at most this many matches",
    )
    p.set_defaults(handler=_cmd_query)

    p = sub.add_parser("update", help="apply one update operation")
    p.add_argument("input")
    p.add_argument("operation", choices=("rename", "insert", "delete"))
    p.add_argument(
        "args",
        nargs="+",
        help="rename: INDEX NEWTAG | insert: INDEX XMLFRAGMENT | "
        "delete: INDEX (element indices in document order)",
    )
    p.add_argument("-o", "--output")
    p.add_argument("--no-recompress", action="store_true")
    p.set_defaults(handler=_cmd_update)

    p = sub.add_parser(
        "durable",
        help="crash-safe store: WAL-logged updates, snapshots, recovery",
    )
    p.add_argument(
        "action",
        choices=("init", "status", "update", "query", "checkpoint",
                 "scrub", "health", "metrics"),
    )
    p.add_argument("store", help="store directory")
    p.add_argument(
        "args",
        nargs="*",
        help="init: (with --xml) | update: rename I TAG / insert I XML / "
        "append I XML / delete I | query: LABELPATH",
    )
    p.add_argument("--xml", help="input XML file (init)")
    p.add_argument("--overwrite", action="store_true")
    p.add_argument(
        "--repair", action="store_true",
        help="scrub: rebuild drifted indexes and retire corrupt files",
    )
    p.add_argument(
        "--json", action="store_true",
        help="status/health: emit the machine-readable JSON report",
    )
    p.add_argument(
        "--prometheus", action="store_true",
        help="metrics: emit Prometheus text exposition instead of the "
        "human table",
    )
    p.set_defaults(handler=_cmd_durable)

    p = sub.add_parser("experiment", help="regenerate paper tables/figures")
    p.add_argument("names", nargs="+")
    p.set_defaults(handler=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
