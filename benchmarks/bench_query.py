"""Macro-benchmark: grammar-native queries vs decompress-then-walk.

Quantifies the PR-4 tentpole: before the query subsystem, any read beyond
``tag_of``/``tags`` meant full decompression (``to_document()``) followed
by a tree walk -- ``O(N)`` per query plus the materialization.  The
grammar-native engine evaluates the same label path directly on the
derivation, skipping every subtree whose label census is zero in O(1)
via the :class:`~repro.query.label_index.LabelIndex` count tables, so a
*selective* descendant query costs ``O(matches · depth · rule-width)``.

The headline number, though, is the *index-maintenance* story under
interleaved update traffic: each round applies a burst of updates
(renames moving the queried label around, inserts, appends, deletes;
``auto_recompress_factor=2`` so incremental recompressions interleave)
and then queries.  The LabelIndex must be *maintained* -- per-rule
evictions through the observer channel, lazy scoped recomputes -- never
rebuilt: the eviction counters assert ``wholesale_invalidations == 0``
and that the rules re-censused during the traffic phase stay far below
the rebuild-per-round volume.  Every round also cross-checks the engine's
result set against the naive evaluation, so the timings compare equal
answers.

Results are printed and written to ``BENCH_query.json`` at the repo root
as the machine-readable perf baseline for future PRs.

Run directly (``PYTHONPATH=src python benchmarks/bench_query.py``) for
the full scale -- EXI-Weblog at 50k edges -- which asserts >= 10x
per-query speedup for the selective descendant query; ``--smoke`` (the
CI job) runs a tiny scale and asserts the JSON schema, engine/naive
agreement, and the maintenance counters.  Like all ``bench_*`` modules
it is collected by pytest only via an explicit path.
"""

import json
import os
import random
import sys
import time

from repro.api import CompressedXml
from repro.obs.metrics import summarize_latencies
from repro.query.naive import naive_select
from repro.trees.unranked import XmlNode

FULL_SCALE = {
    "edges": 50_000,
    "rounds": 5,
    "updates_per_round": 40,
    "engine_queries_per_round": 20,
    "naive_queries_per_round": 2,
}
SMOKE_SCALE = {
    "edges": 2_000,
    "rounds": 2,
    "updates_per_round": 10,
    "engine_queries_per_round": 5,
    "naive_queries_per_round": 1,
}
AUTO_FACTOR = 2.0
SEED = 42
#: The selective label: planted on a handful of elements, then moved
#: around by the traffic -- the census-pruning best case the paper-level
#: claim is about.  "//status" (one per entry) is the non-selective
#: contrast also reported.
NEEDLE = "alert"
QUERY = f"//{NEEDLE}"
BROAD_QUERY = "/log/entry"

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_query.json"
)


def make_doc(edges, seed=SEED):
    from repro.datasets.synthetic import make_corpus

    return CompressedXml.from_document(
        make_corpus("EXI-Weblog", edges=edges, seed=seed),
        auto_recompress_factor=AUTO_FACTOR,
    )


def plant_needles(doc, rng, count=8):
    for _ in range(count):
        doc.rename(rng.randrange(1, doc.element_count), NEEDLE)


def apply_traffic(doc, rng, ops):
    """One burst of mixed updates; some move the needle label around."""
    for _ in range(ops):
        count = doc.element_count
        kind = rng.random()
        index = rng.randrange(1, count)
        if kind < 0.35:
            # Rename: one in three touches the queried label itself.
            tag = NEEDLE if rng.random() < 0.33 else f"t{rng.randrange(8)}"
            doc.rename(index, tag)
        elif kind < 0.6:
            doc.insert(index, XmlNode(f"t{rng.randrange(8)}"))
        elif kind < 0.8:
            doc.append_child(index, XmlNode(f"t{rng.randrange(8)}"))
        elif count > 2:
            doc.delete(index)


def run(edges, rounds, updates_per_round, engine_queries_per_round,
        naive_queries_per_round, smoke=False):
    rng = random.Random(SEED)
    doc = make_doc(edges)
    print(f"workload: EXI-Weblog {edges} edges, {rounds} rounds of "
          f"{updates_per_round} updates + queries ({QUERY!r}), "
          f"auto_recompress_factor={AUTO_FACTOR}")

    plant_needles(doc, rng)
    lindex = doc.label_index
    doc.count(QUERY)  # warm the census once; maintenance is what we measure
    initial_census = lindex.rules_censused

    engine_s = naive_s = 0.0
    engine_queries = naive_queries = 0
    engine_samples = []
    naive_samples = []
    matches = []
    for _ in range(rounds):
        apply_traffic(doc, rng, updates_per_round)

        for _ in range(engine_queries_per_round):
            started = time.perf_counter()
            matches = doc.select(QUERY)
            engine_samples.append(time.perf_counter() - started)
        engine_s += sum(engine_samples[-engine_queries_per_round:])
        engine_queries += engine_queries_per_round

        for _ in range(naive_queries_per_round):
            started = time.perf_counter()
            naive_matches = naive_select(doc.to_document(), QUERY)
            naive_samples.append(time.perf_counter() - started)
        naive_s += sum(naive_samples[-naive_queries_per_round:])
        naive_queries += naive_queries_per_round

        # Equal answers or the timing comparison is meaningless.
        assert matches == naive_matches, \
            "grammar-native select diverged from the decompressed walk"

    broad_engine = doc.select(BROAD_QUERY)
    assert broad_engine == naive_select(doc.to_document(), BROAD_QUERY)

    engine_ms = 1000.0 * engine_s / engine_queries
    naive_ms = 1000.0 * naive_s / naive_queries
    speedup = naive_ms / engine_ms if engine_ms else float("inf")
    maintenance_census = lindex.rules_censused - initial_census
    rules_now = len(doc.grammar.rules)
    rebuild_volume = rules_now * rounds  # what rebuild-per-round would cost
    cached_fraction = (
        lindex.cached_rule_count / rules_now if rules_now else 1.0
    )

    print(f"  engine : {engine_ms:8.3f} ms/query over {engine_queries} "
          f"queries ({len(matches)} matches of {doc.element_count} elements)")
    print(f"  naive  : {naive_ms:8.3f} ms/query over {naive_queries} "
          f"queries (to_document + walk)")
    print(f"  speedup: {speedup:.1f}x per query")
    print(f"  maintenance: {maintenance_census} rules re-censused across "
          f"{rounds} rounds ({rules_now} rules, {doc.recompress_runs} "
          f"recompressions interleaved), "
          f"{lindex.wholesale_invalidations} wholesale invalidations")

    report = {
        "benchmark": "bench_query",
        "workload": {
            "corpus": "EXI-Weblog",
            "edges": edges,
            "rounds": rounds,
            "updates_per_round": updates_per_round,
            "auto_recompress_factor": AUTO_FACTOR,
            "seed": SEED,
            "smoke": smoke,
        },
        "query": {
            "path": QUERY,
            "matches_final": len(matches),
            "element_count_final": doc.element_count,
            "broad_path": BROAD_QUERY,
            "broad_matches_final": len(broad_engine),
        },
        "engine": {
            "total_s": round(engine_s, 4),
            "queries": engine_queries,
            "per_query_ms": round(engine_ms, 4),
            "latency": summarize_latencies(engine_samples),
        },
        "naive": {
            "total_s": round(naive_s, 4),
            "queries": naive_queries,
            "per_query_ms": round(naive_ms, 4),
            "latency": summarize_latencies(naive_samples),
        },
        "maintenance": {
            "label_rules_censused_initial": initial_census,
            "label_rules_censused_maintenance": maintenance_census,
            "label_rules_rebuild_volume": rebuild_volume,
            "label_wholesale_invalidations": lindex.wholesale_invalidations,
            "grammar_wholesale_invalidations":
                doc.index.wholesale_invalidations,
            "label_evicted_rules": lindex.evicted_rules,
            "label_cached_rule_fraction_final": round(cached_fraction, 4),
            "grammar_rules_final": rules_now,
            "recompress_runs": doc.recompress_runs,
            "updates_applied": doc.updates_applied,
        },
        "speedup": {
            "per_query": round(speedup, 2),
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(JSON_PATH)}")
    return report


def check_schema(report):
    """The machine-readable contract future PRs regress against."""
    for section in ("workload", "query", "engine", "naive", "maintenance",
                    "speedup"):
        assert section in report, f"missing section {section!r}"
    for key in ("total_s", "queries", "per_query_ms", "latency"):
        assert key in report["engine"], f"missing engine {key!r}"
        assert key in report["naive"], f"missing naive {key!r}"
    for variant in ("engine", "naive"):
        for key in ("count", "p50_ms", "p95_ms", "p99_ms"):
            assert key in report[variant]["latency"], \
                f"{variant}: missing latency {key!r}"
        assert report[variant]["latency"]["count"] > 0
    for key in ("label_rules_censused_initial",
                "label_rules_censused_maintenance",
                "label_rules_rebuild_volume",
                "label_wholesale_invalidations",
                "label_evicted_rules",
                "label_cached_rule_fraction_final",
                "grammar_rules_final",
                "recompress_runs"):
        assert key in report["maintenance"], f"missing maintenance {key!r}"
    assert "per_query" in report["speedup"]


def check_maintenance(report):
    """The LabelIndex must be maintained, never rebuilt.

    * no wholesale invalidation, ever -- in particular the interleaved
      incremental recompressions must not reset the index;
    * per-rule evictions really fired (the index did *see* the traffic);
    * the lazily re-censused volume stays below what one full rebuild per
      round would have cost, so maintenance beats recomputation.
    """
    maintenance = report["maintenance"]
    assert maintenance["label_wholesale_invalidations"] == 0, \
        "something wholesale-invalidated the LabelIndex"
    assert maintenance["grammar_wholesale_invalidations"] == 0, \
        "something wholesale-invalidated the structural GrammarIndex"
    assert maintenance["recompress_runs"] >= 1, \
        "the workload was meant to interleave recompressions"
    assert maintenance["label_evicted_rules"] > 0, \
        "no evictions -- the index cannot have observed the updates"
    assert maintenance["label_rules_censused_maintenance"] < \
        maintenance["label_rules_rebuild_volume"], (
            "label census recomputation reached rebuild-per-round volume"
        )


def check_speedup(report, min_speedup=10.0):
    """The acceptance bound: >= 10x per selective query at full scale."""
    assert report["speedup"]["per_query"] >= min_speedup, (
        f"grammar-native select only {report['speedup']['per_query']:.1f}x "
        f"faster than decompress-then-walk (required >= {min_speedup}x)"
    )


def test_query_smoke():
    """Entry point at a CI-friendly scale (explicit-path pytest runs)."""
    report = run(smoke=True, **SMOKE_SCALE)
    check_schema(report)
    check_maintenance(report)


if __name__ == "__main__":
    try:
        from benchmarks._common import maybe_profile
    except ImportError:  # run directly: benchmarks/ itself is sys.path[0]
        from _common import maybe_profile

    smoke = "--smoke" in sys.argv
    scale = SMOKE_SCALE if smoke else FULL_SCALE
    with maybe_profile("bench_query"):
        report = run(smoke=smoke, **scale)
    check_schema(report)
    check_maintenance(report)
    if not smoke:
        check_speedup(report)
        print("bounds ok: >= 10x per-query speedup for the selective "
              "descendant query, answers equal to the decompressed walk, "
              "LabelIndex maintained (zero wholesale invalidations) across "
              "interleaved updates and recompressions")
    else:
        print("smoke ok: schema valid, engine agrees with the decompressed "
              "walk, LabelIndex maintained without wholesale invalidation")
