"""Figure 4: update sequences on the moderate-compression corpora."""

from repro.experiments import figure45

from benchmarks.conftest import BENCH_SCALES


def test_updates_moderate_corpora(benchmark):
    result = benchmark.pedantic(
        lambda: figure45.run(
            corpora=figure45.MODERATE,
            n_updates=200,
            recompress_every=50,
            scales=BENCH_SCALES,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    result.title = "Figure 4: moderate corpora under updates"
    print(result.render())

    for row in result.rows:
        name, _count, naive_ratio, gr_ratio = row
        # GrammarRePair keeps the grammar at (nearly) the udc size;
        # the paper reports overhead <= 0.8% at full scale.
        assert gr_ratio <= 1.35, (name, gr_ratio)
        # The naive grammar is never smaller than the maintained one.
        assert naive_ratio >= gr_ratio - 1e-9, (name, naive_ratio, gr_ratio)
    # And by the end of the sequence naive shows real overhead
    # (paper: around 40%).
    final_rows = result.rows[-1]
    assert final_rows[2] > 1.05

if __name__ == "__main__":
    # Profiling entry point; the shape assertions live in the pytest
    # path above.  Run from the repo root:
    #   PYTHONPATH=src python -m benchmarks.bench_figure4 [--profile]
    from benchmarks._common import maybe_profile

    with maybe_profile("bench_figure4"):
        result = figure45.run(corpora=figure45.MODERATE, n_updates=200,
                          recompress_every=50, scales=BENCH_SCALES, seed=0)
    print(result.render())
