"""Macro-benchmark: the price of durability and the speed of recovery.

Quantifies the PR-6 tentpole.  Every committed update on a
:class:`repro.storage.durable.DurableXml` pays the WAL-first protocol
-- serialize the logical operation, append + fsync, then apply in
memory, checkpointing whenever the live WAL outgrows its threshold.
This benchmark drives the *same* mixed update stream (clustered
rename/insert/append/delete bursts over an EXI-Weblog-like document)
through a plain in-memory ``CompressedXml`` and through a durable
store, and then measures cold recovery (open = newest snapshot + WAL
tail replay) of the store it just produced.

Reported per variant: wall time, sustained ops/s, mean and p95 commit
latency.  For the store: checkpoints taken, final generation, live WAL
bytes, segment rotations (the chain runs at a deliberately small
segment size so rotation + compaction are on the hot path), a timed
online scrub of the finished store (which must come back clean), and
recovery wall time with records replayed.  The acceptance gate at
full scale -- 50k edges, 500 updates -- is that durable commits sustain
at least half the in-memory throughput (the WAL tax stays under 2x; the
update work itself dominates fsyncs of small JSON records), and the
benchmark asserts the recovered document equals the live one
byte-for-byte.  ``--smoke`` (the CI job) runs a tiny scale and checks
the JSON schema, equality, and recovery only.

Results go to ``BENCH_wal.json`` at the repo root.  Like all ``bench_*``
modules this is collected by pytest only via an explicit path.
"""

import json
import os
import random
import shutil
import sys
import tempfile
import time

from repro.api import CompressedXml
from repro.obs.metrics import summarize_latencies
from repro.storage.durable import DurableXml
from repro.updates.batch import BatchAppend, BatchDelete, BatchInsert, \
    BatchRename
from repro.updates.workload import generate_clustered_element_ops

FULL_SCALE = {"edges": 50_000, "updates": 500, "bursts": 10}
SMOKE_SCALE = {"edges": 2_000, "updates": 50, "bursts": 5}
CHECKPOINT_WAL_BYTES = 16 * 1024
WAL_SEGMENT_BYTES = 1024  # several rotations even at smoke scale
SEED = 42
TAGS = ("ip", "user", "ts", "request", "status", "bytes", "extra")

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_wal.json"
)


def make_doc(edges, seed=SEED):
    from repro.datasets.synthetic import make_corpus

    return CompressedXml.from_document(
        make_corpus("EXI-Weblog", edges=edges, seed=seed)
    )


def apply_op(target, op):
    """One logical op through the facade-shaped API (both variants)."""
    if isinstance(op, BatchRename):
        target.rename(op.index, op.new_tag)
    elif isinstance(op, BatchInsert):
        target.insert(op.index, list(op.content))
    elif isinstance(op, BatchAppend):
        target.append_child(op.parent_index, list(op.content))
    else:
        target.delete(op.index)


def timed_apply(target, ops, latencies):
    for op in ops:
        started = time.perf_counter()
        apply_op(target, op)
        latencies.append(time.perf_counter() - started)


def percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def variant_report(latencies):
    total = sum(latencies)
    return {
        "total_s": round(total, 4),
        "ops_per_s": round(len(latencies) / total, 2) if total else None,
        "mean_commit_ms": round(1000.0 * total / len(latencies), 4),
        "p95_commit_ms": round(1000.0 * percentile(latencies, 0.95), 4),
        "latency": summarize_latencies(latencies),
    }


def run(edges, updates, bursts, smoke=False):
    rng = random.Random(SEED)
    memory_doc = make_doc(edges)
    store_dir = tempfile.mkdtemp(prefix="bench_wal_")
    print(f"workload: EXI-Weblog {edges} edges, {updates} mixed updates "
          f"in {bursts} bursts, checkpoint threshold "
          f"{CHECKPOINT_WAL_BYTES // 1024} KiB")
    try:
        started = time.perf_counter()
        store = DurableXml.create(
            os.path.join(store_dir, "store"), make_doc(edges),
            checkpoint_wal_bytes=CHECKPOINT_WAL_BYTES,
            wal_segment_bytes=WAL_SEGMENT_BYTES,
        )
        create_s = time.perf_counter() - started

        memory_lat, durable_lat = [], []
        per_burst = updates // bursts
        for _ in range(bursts):
            ops = generate_clustered_element_ops(
                memory_doc.element_count, per_burst, rng=rng, tags=TAGS
            )
            timed_apply(memory_doc, ops, memory_lat)
            timed_apply(store, ops, durable_lat)

        assert store.to_xml() == memory_doc.to_xml(), \
            "durable store diverged from the in-memory document"
        generation = store.generation
        wal_bytes = store.wal_size
        rotations = store.wal_rotations
        segment_count = store.wal_segment_count
        assert rotations > 0, (
            "workload never rotated the WAL; shrink WAL_SEGMENT_BYTES "
            "so segmentation stays on the benchmarked path"
        )

        started = time.perf_counter()
        scrub_report = store.scrub()
        scrub_s = time.perf_counter() - started
        assert scrub_report.ok, (
            f"scrub found inconsistencies in a healthy store: "
            f"{[f.as_dict() for f in scrub_report.findings]}"
        )
        store.close()

        started = time.perf_counter()
        reopened = DurableXml.open(os.path.join(store_dir, "store"))
        recovery_s = time.perf_counter() - started
        replayed = reopened.last_recovery.replayed
        assert reopened.to_xml() == memory_doc.to_xml(), \
            "recovery reconstructed a different document"
        reopened.close()
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    memory = variant_report(memory_lat)
    durable = variant_report(durable_lat)
    durable["checkpoints"] = generation
    durable["final_generation"] = generation
    durable["live_wal_bytes"] = wal_bytes
    durable["store_create_s"] = round(create_s, 4)
    durable["wal_segment_bytes"] = WAL_SEGMENT_BYTES
    durable["wal_rotations"] = rotations
    durable["final_segment_count"] = segment_count
    slowdown = durable["total_s"] / memory["total_s"] \
        if memory["total_s"] else 1.0

    print(f"  in-memory : {memory['total_s']:8.3f}s, "
          f"{memory['ops_per_s']} ops/s, "
          f"p95 {memory['p95_commit_ms']:.2f}ms")
    print(f"  durable   : {durable['total_s']:8.3f}s, "
          f"{durable['ops_per_s']} ops/s, "
          f"p95 {durable['p95_commit_ms']:.2f}ms, "
          f"{generation} checkpoints, {wal_bytes} live WAL bytes")
    print(f"  WAL tax   : {slowdown:.2f}x wall time")
    print(f"  segments  : {rotations} rotations at "
          f"{WAL_SEGMENT_BYTES // 1024} KiB, {segment_count} live "
          f"segment(s) at close")
    print(f"  scrub     : {scrub_s:.3f}s clean "
          f"({scrub_report.checked['wal_files']} WAL files, "
          f"{scrub_report.checked['wal_records']} records, "
          f"{scrub_report.checked['elements']} elements)")
    print(f"  recovery  : {recovery_s:.3f}s "
          f"(snapshot + {replayed} replayed records)")

    report = {
        "benchmark": "bench_wal",
        "workload": {
            "corpus": "EXI-Weblog",
            "edges": edges,
            "updates": len(memory_lat),
            "bursts": bursts,
            "checkpoint_wal_bytes": CHECKPOINT_WAL_BYTES,
            "wal_segment_bytes": WAL_SEGMENT_BYTES,
            "seed": SEED,
            "smoke": smoke,
        },
        "in_memory": memory,
        "durable": durable,
        "wal_tax_wall_time": round(slowdown, 3),
        "recovery": {
            "total_s": round(recovery_s, 4),
            "replayed_records": replayed,
        },
        "scrub": {
            "total_s": round(scrub_s, 4),
            "ok": scrub_report.ok,
            "wal_files": scrub_report.checked["wal_files"],
            "wal_records": scrub_report.checked["wal_records"],
            "elements": scrub_report.checked["elements"],
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(JSON_PATH)}")
    return report


def check_schema(report):
    """The machine-readable contract future PRs regress against."""
    for section in ("workload", "in_memory", "durable", "recovery",
                    "scrub"):
        assert section in report, f"missing section {section!r}"
    for key in ("total_s", "ops_per_s", "mean_commit_ms", "p95_commit_ms",
                "latency"):
        assert key in report["in_memory"], f"missing {key!r}"
        assert key in report["durable"], f"missing {key!r}"
    for variant in ("in_memory", "durable"):
        for key in ("count", "p50_ms", "p95_ms", "p99_ms"):
            assert key in report[variant]["latency"], \
                f"{variant}: missing latency {key!r}"
        assert report[variant]["latency"]["count"] > 0
    for key in ("checkpoints", "live_wal_bytes", "store_create_s",
                "wal_segment_bytes", "wal_rotations",
                "final_segment_count"):
        assert key in report["durable"], f"missing {key!r}"
    for key in ("total_s", "replayed_records"):
        assert key in report["recovery"], f"missing recovery {key!r}"
    for key in ("total_s", "ok", "wal_files", "wal_records", "elements"):
        assert key in report["scrub"], f"missing scrub {key!r}"
    assert report["scrub"]["ok"] is True
    assert "wal_tax_wall_time" in report


def check_wal_tax(report, max_slowdown=2.0):
    """The acceptance gate: WAL-on throughput within 2x of in-memory."""
    tax = report["wal_tax_wall_time"]
    assert tax <= max_slowdown, (
        f"durable commits are {tax:.2f}x slower than in-memory "
        f"(gate: {max_slowdown}x)"
    )


def main(argv=None):
    try:
        from benchmarks._common import maybe_profile
    except ImportError:  # run directly: benchmarks/ itself is sys.path[0]
        from _common import maybe_profile

    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    scale = SMOKE_SCALE if smoke else FULL_SCALE
    with maybe_profile("bench_wal", argv=argv):
        report = run(smoke=smoke, **scale)
    check_schema(report)
    if not smoke:
        check_wal_tax(report)
    print("bench_wal: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
