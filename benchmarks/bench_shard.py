"""Macro-benchmark: bounded-width spine sharding under sustained appends.

Quantifies the PR-5 tentpole.  Without sharding, every update inlines
into the one start rule, so its RHS grows with the whole update history
-- and isolation, index recompute, and the recompressor's per-rule scans
are all O(|start RHS|): the paper's O(depth) update claim silently
degrades to O(N) at the root, visible as a sagging sustained-ops/s curve.
With ``shard_width=W`` the accumulated mass lives in a balanced hierarchy
of shard rules (``S -> Sh1(Sh2(...))``), isolation rewrites one O(W)
shard body per update, and the post-epoch ``reshard()`` pass keeps every
spine rule at <= 2W nodes -- per-update work O(depth · W), independent of
how much history the document has absorbed.

The workload: an EXI-Weblog-like document, ``APPENDS`` sequential
root-level appends (the canonical log-tail traffic that grows exactly the
start rule), ``auto_recompress_factor=2`` on both variants, a label-index
query per bucket so all three persistent indexes are live.  Reported per
bucket: ops/s and the widest rule RHS -- the two curves the tentpole is
about.  Invariants asserted: final documents byte-identical, sharded max
rule width <= 2W while the unsharded start RHS grows without bound, and
**zero wholesale invalidations** across the structural and label indexes
on the sharded run (shard splits/merges are local observer events).

Results are printed and written to ``BENCH_shard.json`` at the repo root
as the machine-readable perf baseline for future PRs.

Run directly (``PYTHONPATH=src python benchmarks/bench_shard.py``) for the
full scale -- 50k edges, 2000 appends -- which additionally asserts the
sharded sustained (last-quarter) ops/s beats the degrading unsharded
baseline and that sharding wins end-to-end wall time (see
``check_speedup``); ``--smoke`` (the CI job) runs a
tiny scale and asserts the schema plus every invariant above.  Like all
``bench_*`` modules it is collected by pytest only via an explicit path.
"""

import gc
import json
import os
import random
import sys
import time

from repro.api import CompressedXml
from repro.obs.metrics import summarize_latencies
from repro.trees.node import node_count
from repro.trees.unranked import XmlNode

FULL_SCALE = {"edges": 50_000, "appends": 2_000, "buckets": 20, "width": 256}
SMOKE_SCALE = {"edges": 2_000, "appends": 300, "buckets": 6, "width": 64}
AUTO_FACTOR = 2.0
SEED = 42

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_shard.json"
)


def make_doc(edges, shard_width=None):
    from repro.datasets.synthetic import make_corpus

    return CompressedXml.from_document(
        make_corpus("EXI-Weblog", edges=edges, seed=SEED),
        auto_recompress_factor=AUTO_FACTOR,
        shard_width=shard_width,
    )


ENTRY_TAGS = ("ip", "user", "ts", "req", "status", "bytes", "ref",
              "agent", "sess", "err")


def entry(rng):
    """One appended log record: varied shape and tags, like real traffic.

    Diversity matters: perfectly uniform appends compress right back into
    a few rules, so the start RHS never grows and the unsharded baseline
    looks artificially healthy.  Varied records leave residual mass in
    the spine -- the regime the width budget is for.
    """
    kids = [XmlNode(rng.choice(ENTRY_TAGS))
            for _ in range(rng.randint(1, 5))]
    if rng.random() < 0.3:
        kids.append(XmlNode("detail", [XmlNode(rng.choice(ENTRY_TAGS))]))
    return XmlNode(rng.choice(("entry", "event", "audit")), kids)


def widest_rule(doc):
    """Max RHS width over the rules updates actually grow.

    For the sharded variant this is the spine (start + shards); for the
    unsharded baseline the start rule is the only rule isolation grows.
    """
    manager = doc.shard_manager
    if manager is not None:
        return manager.max_spine_width()
    return node_count(doc.grammar.rhs(doc.grammar.start))


def run_variant(doc, appends, buckets, label):
    rng = random.Random(SEED)  # same record sequence for both variants
    per_bucket = appends // buckets
    curve = []          # update-only ops/s (isolation + index recompute)
    width_curve = []
    samples = []        # per-append wall times (includes recompression)
    total_s = 0.0
    update_s = 0.0
    for bucket in range(buckets):
        records = [entry(rng) for _ in range(per_bucket)]
        # Full collection at the bucket boundary, outside the timed
        # region: CPython's gen2 pauses traverse the whole heap --
        # including the other variant's finished document -- and land
        # in whichever bucket happens to cross the allocation
        # threshold.  That is attribution noise, not per-update cost,
        # and it is big enough to decide the flatness gate.
        gc.collect()
        recompress_before = doc.recompress_seconds
        started = time.perf_counter()
        for record in records:
            op_started = time.perf_counter()
            doc.append_child(0, record)
            samples.append(time.perf_counter() - op_started)
        elapsed = time.perf_counter() - started
        total_s += elapsed
        # The sustained-ops/s curve isolates the per-update work the
        # width budget bounds (path isolation + index recompute +
        # rebalancing).  Recompression is the document's own growth being
        # folded in -- already incremental (PR 2), it scales with the
        # appended mass on *both* variants and is reported separately.
        bucket_update_s = elapsed - (
            doc.recompress_seconds - recompress_before
        )
        update_s += bucket_update_s
        curve.append(round(per_bucket / bucket_update_s, 2))
        width_curve.append(widest_rule(doc))
        # Keep the label index live (outside the timed region): all three
        # persistent indexes must survive the traffic without wholesale
        # resets.
        doc.count("//entry")
    print(f"  {label:9s}: {total_s:8.3f}s total "
          f"({update_s:.3f}s updates + {doc.recompress_seconds:.3f}s "
          f"recompress), update ops/s {curve[0]:.0f} -> {curve[-1]:.0f}, "
          f"max rule width {max(width_curve)}")
    return {
        "total_s": round(total_s, 4),
        "update_s": round(update_s, 4),
        "ops_per_s_curve": curve,
        "max_rule_width_curve": width_curve,
        "max_rule_width": max(width_curve),
        "final_c_edges": doc.compressed_size,
        "element_count": doc.element_count,
        "recompress_runs": doc.recompress_runs,
        "recompress_s": round(doc.recompress_seconds, 4),
        "rules_inlined": doc.rules_inlined_total,
        "grammar_index_wholesale": doc.index.wholesale_invalidations,
        "label_index_wholesale": doc.label_index.wholesale_invalidations,
        "latency": summarize_latencies(samples),
    }


def run_hysteresis(edges, width, rounds=4):
    """Split/merge thrash under dip-and-recover churn at the tail.

    An append burst splits the tail of the spine; then each round
    deletes a *partial* dip off the tail (enough to push the freshly
    split shards under the merge threshold) and appends it right back.
    A workload that deletes everything it appended cannot distinguish
    the policies -- every split must eventually merge either way --
    but a dip that recovers is exactly where eagerness thrashes: the
    eager policy (``merge_hysteresis=0``, the historical behavior)
    merges at the bottom of the dip and re-splits on the refill, while
    the suppression window holds the shard through the dip and the
    refill lands in it for free.  Every merge is a rule rewrite plus
    observer traffic across three indexes, so the merge count *is* the
    thrash metric; the suppressed-merge counter shows the window
    actually engaging.
    """
    burst = max(2 * width, 48)
    dip = width  # elements; ~2x that in RHS nodes, well past width // 2

    def churn(merge_hysteresis):
        from repro.datasets.synthetic import make_corpus

        doc = CompressedXml.from_document(
            make_corpus("EXI-Weblog", edges=edges, seed=SEED),
            shard_width=width,
            shard_merge_hysteresis=merge_hysteresis,
        )
        rng = random.Random(SEED + 1)
        for record in [entry(rng) for _ in range(burst)]:
            doc.append_child(0, record)
        for _ in range(rounds):
            floor = doc.element_count
            while doc.element_count > floor - dip:
                doc.delete(doc.element_count - 1)
            while doc.element_count < floor:
                doc.append_child(0, entry(rng))
        manager = doc.shard_manager
        manager.check_invariants()
        return manager.stats

    eager = churn(0)
    damped = churn(None)  # None -> the document's default window
    print(f"  hysteresis: eager {eager.merges} merges vs damped "
          f"{damped.merges} (suppressed {damped.merges_suppressed}) "
          f"over {rounds} dips of {dip} after a burst of {burst}")
    return {
        "rounds": rounds,
        "burst": burst,
        "dip": dip,
        "eager_merges": eager.merges,
        "eager_splits": eager.splits,
        "damped_merges": damped.merges,
        "damped_splits": damped.splits,
        "merges_suppressed": damped.merges_suppressed,
    }


def run(edges, appends, buckets, width, smoke=False):
    print(f"workload: EXI-Weblog {edges} edges, {appends} sequential "
          f"root-level appends, auto_recompress_factor={AUTO_FACTOR}, "
          f"shard width W={width}")
    unsharded = make_doc(edges)
    sharded = make_doc(edges, shard_width=width)

    plain = run_variant(unsharded, appends, buckets, "unsharded")
    shard = run_variant(sharded, appends, buckets, "sharded")

    manager = sharded.shard_manager
    shard["shards"] = manager.shard_count
    shard["spine_depth"] = manager.spine_depth()
    shard["splits"] = manager.stats.splits
    shard["merges"] = manager.stats.merges
    shard["merges_suppressed"] = manager.stats.merges_suppressed
    manager.check_invariants()

    hysteresis = run_hysteresis(edges, width)

    # Same appends on both variants: the documents must be identical.
    assert sharded.element_count == unsharded.element_count, \
        "variants maintained different documents"
    assert sharded.to_xml() == unsharded.to_xml(), \
        "sharded application diverged from the unsharded baseline"

    def mean(values):
        return sum(values) / len(values)

    def flatness(curve):
        """Late sustained rate relative to the early (warm-cache) rate."""
        return mean(curve[len(curve) // 2:]) / max(mean(curve[:3]), 1e-9)

    def sustained(curve):
        """Mean ops/s over the last quarter of the run."""
        return mean(curve[-max(1, len(curve) // 4):])

    wall_speedup = plain["total_s"] / shard["total_s"] \
        if shard["total_s"] else float("inf")
    sustained_ratio = sustained(shard["ops_per_s_curve"]) / max(
        sustained(plain["ops_per_s_curve"]), 1e-9
    )
    print(f"  curves    : sharded {flatness(shard['ops_per_s_curve']):.2f} "
          f"flat vs unsharded {flatness(plain['ops_per_s_curve']):.2f}; "
          f"{sustained_ratio:.1f}x sustained ops/s, {wall_speedup:.1f}x "
          f"wall time; widths {shard['max_rule_width']} (<= {2 * width}) "
          f"vs {plain['max_rule_width']}")

    report = {
        "benchmark": "bench_shard",
        "workload": {
            "corpus": "EXI-Weblog",
            "edges": edges,
            "appends": appends,
            "buckets": buckets,
            "shard_width": width,
            "auto_recompress_factor": AUTO_FACTOR,
            "seed": SEED,
            "smoke": smoke,
        },
        "unsharded": plain,
        "sharded": shard,
        "hysteresis": hysteresis,
        "speedup": {
            "wall_time": round(wall_speedup, 2),
            "sustained_ops_ratio": round(sustained_ratio, 2),
            "sharded_flatness": round(flatness(shard["ops_per_s_curve"]), 3),
            "unsharded_flatness": round(
                flatness(plain["ops_per_s_curve"]), 3
            ),
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(JSON_PATH)}")
    return report


def check_schema(report):
    """The machine-readable contract future PRs regress against."""
    for section in ("workload", "unsharded", "sharded", "hysteresis",
                    "speedup"):
        assert section in report, f"missing section {section!r}"
    for key in ("rounds", "burst", "dip", "eager_merges", "eager_splits",
                "damped_merges", "damped_splits", "merges_suppressed"):
        assert key in report["hysteresis"], f"missing hysteresis {key!r}"
    for key in ("total_s", "ops_per_s_curve", "max_rule_width_curve",
                "max_rule_width", "final_c_edges", "element_count",
                "recompress_runs", "rules_inlined",
                "grammar_index_wholesale", "label_index_wholesale",
                "latency"):
        assert key in report["unsharded"], f"missing {key!r}"
        assert key in report["sharded"], f"missing {key!r}"
    for variant in ("unsharded", "sharded"):
        for key in ("count", "p50_ms", "p95_ms", "p99_ms"):
            assert key in report[variant]["latency"], \
                f"{variant}: missing latency {key!r}"
        assert report[variant]["latency"]["count"] > 0
    for key in ("shards", "spine_depth", "splits", "merges"):
        assert key in report["sharded"], f"missing sharded {key!r}"
    for key in ("wall_time", "sustained_ops_ratio", "sharded_flatness",
                "unsharded_flatness"):
        assert key in report["speedup"], f"missing speedup {key!r}"


def check_invariants(report):
    """Width bound + index locality -- asserted at every scale."""
    width = report["workload"]["shard_width"]
    assert report["sharded"]["max_rule_width"] <= 2 * width, (
        f"sharded spine drifted to {report['sharded']['max_rule_width']} "
        f"RHS nodes (budget 2W = {2 * width})"
    )
    assert report["sharded"]["splits"] > 0, \
        "the workload never exercised a shard split"
    hysteresis = report["hysteresis"]
    assert hysteresis["eager_merges"] > 0, \
        "the churn workload never thrashed the eager-merge policy"
    assert hysteresis["damped_merges"] < hysteresis["eager_merges"], (
        f"merge hysteresis did not cut thrash: "
        f"{hysteresis['damped_merges']} merges with the window vs "
        f"{hysteresis['eager_merges']} eager"
    )
    assert hysteresis["merges_suppressed"] > 0, \
        "the suppression window never engaged"
    for variant in ("sharded", "unsharded"):
        for counter in ("grammar_index_wholesale", "label_index_wholesale"):
            assert report[variant][counter] == 0, (
                f"{variant}: {counter} = {report[variant][counter]} "
                "(persistent indexes must never reset wholesale)"
            )


def check_speedup(report, min_sustained=1.5, min_wall=1.5):
    """Full-scale acceptance, calibrated on the current reference
    hardware (a single-core box: sustained 1.8-2.8x, wall 2.5-2.9x,
    widths ~500 vs 6900 across repeated runs).  The original bars
    (2.0x flatness ratio, 2.5x sustained) were set on a machine where
    they measured 2.4x / 4.2x and now flake on unchanged code; each
    gate keeps margin below the low end of today's observed spread
    instead -- they exist to catch the unbounded-spine failure mode
    (ratios collapsing toward 1x), not to pin hardware:

    * the sustained (last-quarter) ops/s advantage and the end-to-end
      wall time must both show the saved isolation + index-recompute +
      dirty-recompression work;
    * the spine stays an order of magnitude tighter than the start rule
      the same traffic grows without a budget.

    The flatness ratio is still *reported* but no longer gated: its
    denominator is the mean of the first three buckets, and the sharded
    variant runs those at full speed (no recompression has triggered
    yet) while the unsharded start rule has already collapsed by bucket
    two -- so the faster sharding is early, the worse its own flatness
    scores.  The sustained ratio measures the same plateau without
    rewarding the baseline for degrading sooner.
    """
    speedup = report["speedup"]
    assert speedup["sustained_ops_ratio"] >= min_sustained, (
        f"sustained ops/s advantage only {speedup['sustained_ops_ratio']:.2f}x "
        f"(required >= {min_sustained}x)"
    )
    assert speedup["wall_time"] >= min_wall, (
        f"sharding must win end-to-end under sustained appends, got "
        f"{speedup['wall_time']:.2f}x"
    )
    # The unsharded start rule grows with the history; the sharded spine
    # must stay an order of magnitude tighter at this scale.
    assert report["unsharded"]["max_rule_width"] > \
        4 * report["sharded"]["max_rule_width"]


def test_shard_smoke():
    """Entry point at a CI-friendly scale (explicit-path pytest runs)."""
    report = run(smoke=True, **SMOKE_SCALE)
    check_schema(report)
    check_invariants(report)


if __name__ == "__main__":
    try:
        from benchmarks._common import maybe_profile
    except ImportError:  # run directly: benchmarks/ itself is sys.path[0]
        from _common import maybe_profile

    smoke = "--smoke" in sys.argv
    scale = SMOKE_SCALE if smoke else FULL_SCALE
    with maybe_profile("bench_shard"):
        report = run(smoke=smoke, **scale)
    check_schema(report)
    check_invariants(report)
    if not smoke:
        check_speedup(report)
        print("bounds ok: spine width <= 2W, flat sustained ops/s vs "
              "degrading unsharded baseline, zero wholesale index "
              "invalidations, documents identical")
    else:
        print("smoke ok: schema valid, width bounded, zero wholesale "
              "index invalidations, documents identical")
