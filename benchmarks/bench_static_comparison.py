"""Section V-B: TreeRePair vs GrammarRePair(tree) vs GrammarRePair(grammar)."""

from repro.experiments import static_comparison

from benchmarks.conftest import BENCH_SCALES


def test_static_compression_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: static_comparison.run(scales=BENCH_SCALES, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    for row in result.rows:
        name, _edges, dag, tree_rp, gr_tree, gr_grammar = row
        # All three RePair variants compress at least as well as the DAG
        # (within noise), reproducing "hardly a difference in the absolute
        # compression ratio" between the three (Section V-B).
        assert tree_rp <= dag * 1.2 + 4, name
        assert gr_tree <= dag * 1.2 + 4, name
        assert gr_grammar <= dag * 1.2 + 4, name
        spread = max(tree_rp, gr_tree, gr_grammar)
        assert spread <= 2.0 * min(tree_rp, gr_tree, gr_grammar) + 16, name

if __name__ == "__main__":
    # Profiling entry point; the shape assertions live in the pytest
    # path above.  Run from the repo root:
    #   PYTHONPATH=src python -m benchmarks.bench_static_comparison [--profile]
    from benchmarks._common import maybe_profile

    with maybe_profile("bench_static_comparison"):
        result = static_comparison.run(scales=BENCH_SCALES, seed=0)
    print(result.render())
