"""Micro-benchmark: indexed vs streaming element addressing.

Quantifies the tentpole claim of the grammar index: mapping a document-order
element index to its binary preorder position (the first step of every
update) used to stream the whole generated tree -- O(N) per update -- and
now descends the derivation on cached count tables -- O(depth · rule-width).

Two measurements per document size (1k-100k edges):

* **addressing**: ``element_index -> binary preorder index`` latency,
  indexed (``GrammarIndex.preorder_of_element``) vs streaming (the old
  ``stream_preorder`` scan), and
* **rename round-trip**: a full ``CompressedXml.rename`` (addressing +
  path isolation + relabel), which must stop growing linearly with N at
  fixed grammar size.

Run directly (``PYTHONPATH=src python benchmarks/bench_addressing.py``, as
the CI bench job does) or by explicit path through pytest
(``pytest benchmarks/bench_addressing.py`` -- like all ``bench_*`` modules
it is not collected by a bare ``pytest`` run).  Either way the bounds are
asserted: at 50k edges, indexed addressing is >= 10x faster than
streaming, and rename latency must scale sublinearly in document size.
"""

import random
import time

from repro.api import CompressedXml
from repro.grammar.index import GrammarIndex
from repro.grammar.navigation import stream_preorder

SIZES = (1_000, 5_000, 20_000, 50_000, 100_000)
QUERY_ROUNDS = 30
RENAME_ROUNDS = 20


def make_doc(edges, seed=0):
    """A weblog-like document: wide, shallow, highly compressible -- the
    regime where grammar size stays near-constant while N grows."""
    from repro.datasets.synthetic import make_corpus

    return CompressedXml.from_document(
        make_corpus("EXI-Weblog", edges=edges, seed=seed)
    )


def streaming_index_of_element(grammar, element_index):
    """The pre-index O(N) addressing path, kept here as the baseline."""
    seen = 0
    for position, symbol in enumerate(stream_preorder(grammar)):
        if symbol.is_bottom:
            continue
        if seen == element_index:
            return position
        seen += 1
    raise IndexError(element_index)


def bench_addressing(doc, rng, rounds=QUERY_ROUNDS):
    count = doc.element_count
    targets = [rng.randrange(count) for _ in range(rounds)]

    start = time.perf_counter()
    indexed = [doc.index.preorder_of_element(t) for t in targets]
    indexed_time = (time.perf_counter() - start) / rounds

    start = time.perf_counter()
    streamed = [streaming_index_of_element(doc.grammar, t) for t in targets]
    streaming_time = (time.perf_counter() - start) / rounds

    assert indexed == streamed, "indexed addressing diverged from baseline"
    return indexed_time, streaming_time


def bench_rename(doc, rng, rounds=RENAME_ROUNDS):
    count = doc.element_count
    start = time.perf_counter()
    for i in range(rounds):
        doc.rename(rng.randrange(1, count), f"bench{i % 4}")
    return (time.perf_counter() - start) / rounds


def run(sizes=SIZES, seed=42):
    rng = random.Random(seed)
    rows = []
    print(f"{'edges':>8} {'c-edges':>8} {'indexed':>12} {'streaming':>12} "
          f"{'speedup':>8} {'rename':>12}")
    for edges in sizes:
        doc = make_doc(edges, seed=seed)
        indexed_time, streaming_time = bench_addressing(doc, rng)
        rename_time = bench_rename(doc, rng)
        speedup = streaming_time / indexed_time if indexed_time else float("inf")
        rows.append({
            "edges": edges,
            "c_edges": doc.compressed_size,
            "indexed_s": indexed_time,
            "streaming_s": streaming_time,
            "speedup": speedup,
            "rename_s": rename_time,
        })
        print(f"{edges:>8} {doc.compressed_size:>8} "
              f"{indexed_time * 1e6:>10.1f}us {streaming_time * 1e6:>10.1f}us "
              f"{speedup:>7.1f}x {rename_time * 1e6:>10.1f}us")
    return rows


def check_bounds(rows):
    """The acceptance bounds of the index PR."""
    by_edges = {row["edges"]: row for row in rows}
    at_50k = by_edges.get(50_000)
    if at_50k is not None:
        assert at_50k["speedup"] >= 10.0, (
            f"indexed addressing only {at_50k['speedup']:.1f}x faster at 50k"
        )
    # Update latency must not scale linearly with N at fixed grammar size:
    # a 100x document growth must cost far less than 100x rename time.
    smallest, largest = rows[0], rows[-1]
    growth = largest["edges"] / smallest["edges"]
    latency_ratio = largest["rename_s"] / max(smallest["rename_s"], 1e-9)
    assert latency_ratio < growth / 4, (
        f"rename latency grew {latency_ratio:.1f}x over a {growth:.0f}x "
        "document growth -- still scaling with N"
    )


def test_indexed_addressing_speedup():
    """Entry point at a CI-friendly scale (explicit-path pytest runs)."""
    rows = run(sizes=(1_000, 50_000))
    check_bounds(rows)


if __name__ == "__main__":
    try:
        from benchmarks._common import maybe_profile
    except ImportError:  # run directly: benchmarks/ itself is sys.path[0]
        from _common import maybe_profile

    with maybe_profile("bench_addressing"):
        rows = run()
    check_bounds(rows)
    print("bounds ok: >=10x at 50k edges, sublinear rename scaling")
