"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one table/figure of the paper via the
same ``repro.experiments`` drivers the CLI uses, at a scale sized for
pure-Python macro-benchmarks.  Tables are printed to stdout (run with
``pytest benchmarks/ --benchmark-only -s`` to see them) and the shape
assertions from EXPERIMENTS.md are re-checked on every run.
"""

import pytest

#: One reduced scale set shared by the macro-benchmarks so the whole suite
#: finishes in a few minutes on a laptop.
BENCH_SCALES = {
    "EXI-Weblog": 6_000,
    "XMark": 2_500,
    "EXI-Telecomp": 6_000,
    "Treebank": 2_500,
    "Medline": 3_000,
    "NCBI": 8_000,
}


@pytest.fixture
def bench_scales():
    return dict(BENCH_SCALES)
