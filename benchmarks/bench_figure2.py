"""Figure 2: blow-up while recompressing an already-compressed grammar."""

from repro.experiments import figure2

from benchmarks.conftest import BENCH_SCALES


def test_recompression_blowup(benchmark):
    result = benchmark.pedantic(
        lambda: figure2.run(scales=BENCH_SCALES, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    blow_up = {row[0]: row[2] for row in result.rows}
    # Paper: worst just over 2 (exponentially compressing files), many
    # around a few percent above 1.
    for name, value in blow_up.items():
        assert 1.0 <= value <= 4.0, (name, value)
    worst = max(blow_up, key=blow_up.get)
    assert worst in ("NCBI", "EXI-Weblog", "EXI-Telecomp", "Medline"), (
        "the worst blow-up should come from a strongly compressing corpus"
    )

if __name__ == "__main__":
    # Profiling entry point; the shape assertions live in the pytest
    # path above.  Run from the repo root:
    #   PYTHONPATH=src python -m benchmarks.bench_figure2 [--profile]
    from benchmarks._common import maybe_profile

    with maybe_profile("bench_figure2"):
        result = figure2.run(scales=BENCH_SCALES, seed=0)
    print(result.render())
