"""Observability benchmark: instrumentation overhead and export coverage.

Quantifies the PR-9 tentpole from two sides:

1. **Overhead.**  Every hot path resolves its metric handles at wiring
   time -- a document bound to a disabled registry holds shared no-op
   handles, so instrumented code never branches on an enabled flag.
   This benchmark drives the *identical* mixed update stream through a
   document bound to a live :class:`~repro.obs.metrics.MetricsRegistry`
   and one bound to ``NULL_REGISTRY``, interleaving repeats (A B A B
   ...), taking per-op minima across repeats, and gating on the
   **median per-op** relative slowdown (see :func:`measure_overhead`
   for why that estimator and not a totals ratio).  The gate:
   enabled-vs-disabled overhead on the update path stays within
   ``MAX_OVERHEAD_PCT`` (5%).

2. **Coverage.**  After an instrumented workload that touches updates,
   batches, queries, recompression, and a durable store (commits,
   checkpoint, scrub, recovery), every family the registry declared
   must appear in the Prometheus text exposition -- a metric that was
   declared but never exported is a broken dashboard, caught here
   rather than in production.

Results go to ``BENCH_obs.json`` at the repo root.  ``--smoke`` (the CI
job) runs a reduced scale but still enforces both gates; the full scale
(50k edges, 500 updates) is the acceptance measurement.  Like all
``bench_*`` modules it is collected by pytest only via an explicit path.
"""

import gc
import json
import os
import random
import shutil
import sys
import tempfile
import time

from repro.api import CompressedXml
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    summarize_latencies,
)
from repro.trees.unranked import XmlNode

FULL_SCALE = {"edges": 50_000, "updates": 500, "repeats": 3}
SMOKE_SCALE = {"edges": 5_000, "updates": 120, "repeats": 3}
AUTO_FACTOR = 2.0
SEED = 42
TAGS = ("ip", "user", "ts", "request", "status", "bytes", "extra")
MAX_OVERHEAD_PCT = 5.0

#: Families the ISSUE names explicitly; the coverage gate additionally
#: sweeps everything ``declared_names()`` reports.
REQUIRED_FAMILIES = (
    "repro_update_seconds",
    "repro_batch_stage_seconds",
    "repro_recompress_stage_seconds",
    "repro_query_stage_seconds",
    "repro_commit_seconds",
    "repro_fsync_seconds",
    "repro_recovery_seconds",
)

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_obs.json"
)


def make_doc(edges, registry, seed=SEED):
    from repro.datasets.synthetic import make_corpus

    return CompressedXml.from_document(
        make_corpus("EXI-Weblog", edges=edges, seed=seed),
        auto_recompress_factor=AUTO_FACTOR,
        metrics=registry,
    )


def make_ops(updates, seed=SEED):
    """Fraction-addressed mixed ops; identical stream on both variants."""
    rng = random.Random(seed)
    kinds = ("rename", "rename", "rename", "insert", "insert",
             "append", "delete")
    return [
        (rng.choice(kinds), rng.random(), rng.choice(TAGS))
        for _ in range(updates)
    ]


def apply_op(doc, op):
    kind, fraction, tag = op
    count = doc.element_count
    if kind == "rename":
        doc.rename(1 + int(fraction * (count - 1)), tag)
    elif kind == "insert":
        doc.insert(1 + int(fraction * (count - 1)),
                   XmlNode("entry", [XmlNode(tag)]))
    elif kind == "append":
        doc.append_child(int(fraction * count), XmlNode(tag))
    elif kind == "delete" and count > 2:
        doc.delete(1 + int(fraction * (count - 1)))


def run_update_pass(edges, ops, registry):
    """One timed pass of the update stream on a fresh document."""
    doc = make_doc(edges, registry)
    gc.collect()  # heap noise stays outside the timed region
    samples = []
    started = time.perf_counter()
    for op in ops:
        op_started = time.perf_counter()
        apply_op(doc, op)
        samples.append(time.perf_counter() - op_started)
    return time.perf_counter() - started, samples


def measure_overhead(edges, updates, repeats):
    """Interleaved repeats, gated on the *median per-op* overhead.

    The two variants replay the identical op stream, so op *i* does the
    same logical work in every pass; ``min`` over repeats strips the GC
    and scheduler spikes a single pass folds in.  The gated number is
    the median over ops of the relative per-op slowdown: every op pays
    the same handful of ``perf_counter`` calls and handle dispatches,
    so the median is the instrumentation cost -- whereas a totals ratio
    is decided by the intrinsic run-to-run variance of the few huge
    auto-recompression ops (150ms+ each, ~1% jitter even on minima),
    which would swamp a microsecond-scale effect.  The totals ratio is
    still reported, unembellished, as ``total_overhead_pct``.
    """
    ops = make_ops(updates)
    enabled_runs, disabled_runs = [], []
    enabled_all, disabled_all = [], []
    for _ in range(repeats):
        total, samples = run_update_pass(edges, ops, MetricsRegistry())
        enabled_runs.append(total)
        enabled_all.append(samples)
        total, samples = run_update_pass(edges, ops, NULL_REGISTRY)
        disabled_runs.append(total)
        disabled_all.append(samples)
    enabled_best_ops = [min(per_op) for per_op in zip(*enabled_all)]
    disabled_best_ops = [min(per_op) for per_op in zip(*disabled_all)]
    best_enabled = sum(enabled_best_ops)
    best_disabled = sum(disabled_best_ops)
    relative = sorted(
        (e - d) / d
        for e, d in zip(enabled_best_ops, disabled_best_ops)
    )
    median_pct = 100.0 * relative[len(relative) // 2]
    total_pct = 100.0 * (best_enabled - best_disabled) / best_disabled
    return {
        "enabled_runs_s": [round(t, 4) for t in enabled_runs],
        "disabled_runs_s": [round(t, 4) for t in disabled_runs],
        "best_enabled_s": round(best_enabled, 4),
        "best_disabled_s": round(best_disabled, 4),
        "overhead_pct": round(median_pct, 3),
        "total_overhead_pct": round(total_pct, 3),
        "enabled_latency": summarize_latencies(enabled_best_ops),
        "disabled_latency": summarize_latencies(disabled_best_ops),
    }


def run_coverage(edges):
    """Drive every instrumented subsystem, then audit the export."""
    from repro.storage.durable import DurableXml

    registry = MetricsRegistry()
    store_dir = tempfile.mkdtemp(prefix="bench_obs_")
    try:
        doc = make_doc(min(edges, 5_000), registry)
        doc.rename(1, "probe")
        doc.select("//probe")
        doc.count("//ip")
        with doc.batch() as batch:
            batch.rename(2, "probe2")
            batch.append_child(0, XmlNode("tail"))
        doc.recompress()

        store = DurableXml.create(
            os.path.join(store_dir, "store"),
            make_doc(1_000, registry),
        )
        store.rename(1, "probe")
        store.checkpoint()
        store.scrub()
        store.close()
        reopened = DurableXml.open(os.path.join(store_dir, "store"),
                                   metrics=registry)
        reopened.close()
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    declared = sorted(registry.declared_names())
    exported = registry.render_prometheus()
    missing = [name for name in declared
               if f"# TYPE {name} " not in exported]
    missing += [name for name in REQUIRED_FAMILIES
                if name not in declared and name not in missing]
    return {
        "declared_families": len(declared),
        "missing_from_export": missing,
        "exposition_bytes": len(exported),
    }


def run(edges, updates, repeats, smoke=False):
    print(f"workload: EXI-Weblog {edges} edges, {updates} mixed updates, "
          f"{repeats} interleaved repeats per variant")
    overhead = measure_overhead(edges, updates, repeats)
    print(f"  enabled  : min {overhead['best_enabled_s']:.3f}s of "
          f"{overhead['enabled_runs_s']}")
    print(f"  disabled : min {overhead['best_disabled_s']:.3f}s of "
          f"{overhead['disabled_runs_s']}")
    print(f"  overhead : {overhead['overhead_pct']:+.2f}% median "
          f"per-op ({overhead['total_overhead_pct']:+.2f}% on totals; "
          f"gate <= {MAX_OVERHEAD_PCT}%)")

    coverage = run_coverage(edges)
    print(f"  coverage : {coverage['declared_families']} declared "
          f"families, {len(coverage['missing_from_export'])} missing "
          f"from the exposition "
          f"({coverage['exposition_bytes']} bytes)")

    report = {
        "benchmark": "bench_obs",
        "workload": {
            "corpus": "EXI-Weblog",
            "edges": edges,
            "updates": updates,
            "repeats": repeats,
            "auto_recompress_factor": AUTO_FACTOR,
            "seed": SEED,
            "smoke": smoke,
        },
        "overhead": overhead,
        "coverage": coverage,
        "gates": {
            "max_overhead_pct": MAX_OVERHEAD_PCT,
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(JSON_PATH)}")
    return report


def check_schema(report):
    """The machine-readable contract future PRs regress against."""
    for section in ("workload", "overhead", "coverage", "gates"):
        assert section in report, f"missing section {section!r}"
    for key in ("enabled_runs_s", "disabled_runs_s", "best_enabled_s",
                "best_disabled_s", "overhead_pct", "total_overhead_pct",
                "enabled_latency", "disabled_latency"):
        assert key in report["overhead"], f"missing overhead {key!r}"
    for variant in ("enabled_latency", "disabled_latency"):
        for key in ("count", "p50_ms", "p95_ms", "p99_ms"):
            assert key in report["overhead"][variant], \
                f"{variant}: missing latency {key!r}"
        assert report["overhead"][variant]["count"] > 0
    for key in ("declared_families", "missing_from_export",
                "exposition_bytes"):
        assert key in report["coverage"], f"missing coverage {key!r}"


def check_coverage(report):
    """Every declared family must reach the Prometheus exposition."""
    missing = report["coverage"]["missing_from_export"]
    assert not missing, (
        f"declared metrics missing from the Prometheus exposition: "
        f"{missing}"
    )
    assert report["coverage"]["declared_families"] >= \
        len(REQUIRED_FAMILIES)


def check_overhead(report):
    """The 5% gate on enabled-vs-disabled update-path overhead
    (median per-op; see :func:`measure_overhead` for why)."""
    overhead = report["overhead"]["overhead_pct"]
    assert overhead <= MAX_OVERHEAD_PCT, (
        f"metrics instrumentation costs {overhead:+.2f}% per op on the "
        f"update path (gate: {MAX_OVERHEAD_PCT}%)"
    )


def test_obs_smoke():
    """Entry point at a CI-friendly scale (explicit-path pytest runs)."""
    report = run(smoke=True, **SMOKE_SCALE)
    check_schema(report)
    check_coverage(report)
    check_overhead(report)


if __name__ == "__main__":
    try:
        from benchmarks._common import maybe_profile
    except ImportError:  # run directly: benchmarks/ itself is sys.path[0]
        from _common import maybe_profile

    smoke = "--smoke" in sys.argv
    scale = SMOKE_SCALE if smoke else FULL_SCALE
    with maybe_profile("bench_obs"):
        report = run(smoke=smoke, **scale)
    check_schema(report)
    check_coverage(report)
    check_overhead(report)
    print("bench_obs: all checks passed (declared families all exported, "
          f"instrumentation overhead within {MAX_OVERHEAD_PCT}%)")
