"""Micro-benchmarks of the core operations.

These are not paper figures; they quantify the primitives the macro
results are built from: compression throughput, path isolation latency
(the cost of a single update), streaming navigation, and decompression --
useful when tuning and when comparing against other implementations.
"""

import random

import pytest

from repro.core.grammar_repair import GrammarRePair
from repro.datasets.synthetic import make_corpus
from repro.grammar.derivation import expand
from repro.grammar.navigation import stream_preorder
from repro.repair.tree_repair import TreeRePair
from repro.trees.binary import encode_binary
from repro.trees.node import deep_copy
from repro.trees.symbols import Alphabet
from repro.updates.grammar_updates import rename
from repro.updates.path_isolation import isolate


def _prepared(name="Medline", edges=2500, seed=0):
    doc = make_corpus(name, edges=edges, seed=seed)
    alphabet = Alphabet()
    return encode_binary(doc, alphabet), alphabet


def test_tree_repair_compression(benchmark):
    tree, alphabet = _prepared()
    result = benchmark.pedantic(
        lambda: TreeRePair().compress(deep_copy(tree), alphabet,
                                      copy_input=False),
        rounds=2,
        iterations=1,
    )
    assert result.size > 0


def test_grammar_repair_on_tree(benchmark):
    tree, alphabet = _prepared()
    result = benchmark.pedantic(
        lambda: GrammarRePair().compress_tree(tree, alphabet),
        rounds=2,
        iterations=1,
    )
    assert result.size > 0


def test_path_isolation_latency(benchmark):
    tree, alphabet = _prepared()
    grammar = GrammarRePair().compress_tree(tree, alphabet)
    from repro.grammar.properties import generated_node_count

    total = generated_node_count(grammar)
    rng = random.Random(1)

    def one_isolation():
        working = grammar.copy()
        return isolate(working, rng.randrange(total))

    result = benchmark(one_isolation)
    assert result.node is not None


def test_single_rename_on_grammar(benchmark):
    tree, alphabet = _prepared()
    grammar = GrammarRePair().compress_tree(tree, alphabet)

    def one_rename():
        working = grammar.copy()
        rename(working, 1, "renamed")
        return working

    result = benchmark(one_rename)
    assert result.size >= grammar.size


def test_streaming_traversal(benchmark):
    tree, alphabet = _prepared()
    grammar = GrammarRePair().compress_tree(tree, alphabet)

    def stream_all():
        return sum(1 for _ in stream_preorder(grammar))

    count = benchmark(stream_all)
    assert count > 1000


def test_decompression(benchmark):
    tree, alphabet = _prepared()
    grammar = GrammarRePair().compress_tree(tree, alphabet)
    result = benchmark.pedantic(
        lambda: expand(grammar), rounds=3, iterations=1
    )
    from repro.trees.node import node_count

    assert node_count(result) > 1000


if __name__ == "__main__":
    # Profiling entry point over the same primitives the pytest path
    # measures.  Run from the repo root:
    #   PYTHONPATH=src python -m benchmarks.bench_micro [--profile]
    import time

    from benchmarks._common import maybe_profile

    with maybe_profile("bench_micro"):
        tree, alphabet = _prepared()
        started = time.perf_counter()
        grammar = GrammarRePair().compress_tree(deep_copy(tree), alphabet)
        print(f"compress:   {time.perf_counter() - started:7.3f} s "
              f"({grammar.size} edges)")
        rng = random.Random(1)
        from repro.grammar.properties import generated_node_count

        total = generated_node_count(grammar)
        started = time.perf_counter()
        for _ in range(20):
            working = grammar.copy()
            isolate(working, rng.randrange(total))
        print(f"isolate:    {time.perf_counter() - started:7.3f} s (20 ops)")
        started = time.perf_counter()
        streamed = sum(1 for _ in stream_preorder(grammar))
        print(f"stream:     {time.perf_counter() - started:7.3f} s "
              f"({streamed} symbols)")
        started = time.perf_counter()
        expand(grammar)
        print(f"decompress: {time.perf_counter() - started:7.3f} s")
