"""Figure 3: fragment-export optimization on the G_n family."""

from repro.experiments import figure3


def test_optimization_effect(benchmark):
    result = benchmark.pedantic(
        lambda: figure3.run(ns=(5, 6, 7, 8, 9, 10)),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    opt = result.column("blow-up opt")
    non = result.column("blow-up non-opt")
    finals = result.column("final")
    bases = result.column("|G_n|")

    # Non-optimized blow-up grows with the generated string (paper: >110
    # at their largest inputs); optimized stays far below it.
    assert non[-1] > 10
    assert non[-1] > 2.5 * opt[-1]
    growth_non = non[-1] / non[0]
    growth_opt = opt[-1] / opt[0]
    assert growth_non > 3 * growth_opt

    # Final grammars stay logarithmic: the doubling structure is found.
    for final, base in zip(finals, bases):
        assert final <= base + 2

if __name__ == "__main__":
    # Profiling entry point; the shape assertions live in the pytest
    # path above.  Run from the repo root:
    #   PYTHONPATH=src python -m benchmarks.bench_figure3 [--profile]
    from benchmarks._common import maybe_profile

    with maybe_profile("bench_figure3"):
        result = figure3.run(ns=(5, 6, 7, 8, 9, 10))
    print(result.render())
