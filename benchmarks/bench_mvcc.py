"""MVCC benchmark: pinned-reader latency under write traffic, and
disjoint-shard group-commit throughput.

Two claims, measured on the EXI-Weblog synthetic corpus:

1. **Readers don't block.**  A reader that pins a snapshot and
   navigates it sees the same p50/p99 latency whether or not a writer
   is concurrently committing rename batches -- the writer publishes
   new epochs while the reader's view stays glued to its pinned one,
   and neither waits for the other beyond the microseconds of the
   version lock.  Both distributions are reported; the contended p99
   must stay within an order of magnitude of quiet.

2. **Disjoint-shard commits overlap their durability.**  Through the
   durable layer in group-commit mode, N writer threads committing
   rename-only batches to pairwise-disjoint shards overlap the fsyncs
   that dominate commit latency; the same total work through the
   serial fsync-per-commit path is the baseline.  The speedup must
   exceed 1.3x at full scale while every batch still lands atomically
   (the final document equals the sequential oracle's).

The whole run also asserts **zero wholesale index invalidations** --
MVCC epoch traffic, snapshot pins, and group commits must never reset
the live document's persistent indexes.

Writes ``BENCH_mvcc.json`` (machine-readable; CI smoke-checks it).
"""

import json
import os
import random
import sys
import tempfile
import threading
import time

from repro.api import CompressedXml
from repro.obs.metrics import summarize_latencies
from repro.storage.durable import DurableXml
from repro.trees.unranked import XmlNode
from repro.updates.batch import BatchRename

SMOKE_SCALE = {"edges": 2_000, "reads": 80, "batches": 6, "writers": 2}
FULL_SCALE = {"edges": 50_000, "reads": 400, "batches": 24, "writers": 4}
SHARD_WIDTH = 64
OPS_PER_BATCH = 6  # rename-only, mid-sized per the update-stream model
SEED = 42

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_mvcc.json"
)


WARM_APPENDS = 6 * SHARD_WIDTH
ENTRY_TAGS = ("ip", "user", "ts", "req", "status", "bytes", "ref")


def make_doc(edges):
    """Build the corpus and grow a sharded tail.

    A freshly compressed EXI-Weblog document has a tiny spine (the
    repetitive log collapses into a few rules) and therefore *no*
    shards; the hierarchy only materializes under update traffic.  The
    warm-up appends varied records at the root until the spine splits,
    which is the regime the concurrency claims are about -- a document
    that has been absorbing a write stream.
    """
    from repro.datasets.synthetic import make_corpus

    doc = CompressedXml.from_document(
        make_corpus("EXI-Weblog", edges=edges, seed=SEED),
        shard_width=SHARD_WIDTH,
    )
    rng = random.Random(SEED + 1)
    for _ in range(WARM_APPENDS):
        kids = [XmlNode(rng.choice(ENTRY_TAGS))
                for _ in range(rng.randint(1, 4))]
        doc.append_child(0, XmlNode(rng.choice(("entry", "audit")), kids))
    assert doc.shard_manager.shard_count >= 2, \
        "warm-up did not shard the spine; raise WARM_APPENDS"
    return doc


def percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def sample_indexes(element_count, n=16):
    """Evenly spread element indexes (stable under renames)."""
    step = max(1, element_count // (n + 1))
    return [min(element_count - 1, 1 + i * step) for i in range(n)]


def writer_ranges(doc, writers):
    """Pairwise-distant contiguous index ranges, one per writer, spread
    across the warmed (sharded) tail so they land on disjoint shards."""
    count = doc.element_count
    tail = min(count - 1, WARM_APPENDS * 3)  # the appended records
    span = tail // writers
    ranges = []
    for writer in range(writers):
        start = count - tail + writer * span + span // 2
        ranges.append(range(start, start + OPS_PER_BATCH))
    return ranges


def rename_batch(indexes, stamp):
    return [BatchRename(index, f"mv{stamp}") for index in indexes]


# ----------------------------------------------------------------------
# section 1: snapshot-reader latency, quiet vs contended
# ----------------------------------------------------------------------
def measure_reads(doc, reads):
    indexes = sample_indexes(doc.element_count)
    latencies = []
    for _ in range(reads):
        started = time.perf_counter()
        with doc.snapshot() as view:
            for index in indexes:
                view.tag_of(index)
                view.first_child(index)
            view.count("/" + view.tag_of(0))
        latencies.append(time.perf_counter() - started)
    return latencies


def run_latency(edges, reads, writers):
    doc = make_doc(edges)
    quiet = measure_reads(doc, reads)

    ranges = writer_ranges(doc, writers)
    stop = threading.Event()
    committed = [0]

    def write():
        stamp = 0
        while not stop.is_set():
            for indexes in ranges:
                doc.apply_batch(rename_batch(indexes, stamp))
            committed[0] += len(ranges)
            stamp += 1

    thread = threading.Thread(target=write, daemon=True)
    thread.start()
    try:
        contended = measure_reads(doc, reads)
    finally:
        stop.set()
        thread.join()

    assert doc.mvcc_info()["pinned_snapshots"] == 0
    result = {
        "reads": reads,
        "writer_batches_during_contended": committed[0],
        "quiet_p50_us": percentile(quiet, 0.50) * 1e6,
        "quiet_p99_us": percentile(quiet, 0.99) * 1e6,
        "contended_p50_us": percentile(contended, 0.50) * 1e6,
        "contended_p99_us": percentile(contended, 0.99) * 1e6,
        "quiet": summarize_latencies(quiet),
        "contended": summarize_latencies(contended),
        "grammar_index_wholesale": doc.index.wholesale_invalidations,
        "label_index_wholesale": doc.label_index.wholesale_invalidations,
    }
    print(f"  reads     : quiet p50 {result['quiet_p50_us']:.0f}us "
          f"p99 {result['quiet_p99_us']:.0f}us | contended p50 "
          f"{result['contended_p50_us']:.0f}us p99 "
          f"{result['contended_p99_us']:.0f}us "
          f"({committed[0]} batches alongside)")
    return result


# ----------------------------------------------------------------------
# section 2: group-commit speedup on disjoint shards
# ----------------------------------------------------------------------
def build_store(directory, edges, group_commit):
    return DurableXml.create(
        directory, make_doc(edges), group_commit=group_commit,
        checkpoint_wal_bytes=10 ** 9,
    )


def run_speedup(edges, batches, writers, tmp):
    total = batches * writers

    # Baseline: the serial fsync-per-commit path, same total work.
    with build_store(os.path.join(tmp, "serial"), edges, False) as store:
        ranges = writer_ranges(store.document, writers)
        started = time.perf_counter()
        for stamp in range(batches):
            for indexes in ranges:
                store.apply_batch(rename_batch(indexes, stamp))
        serial_s = time.perf_counter() - started
        serial_xml = store.to_xml()

    # Contender: N threads, disjoint shards, pipelined group commit.
    with build_store(os.path.join(tmp, "group"), edges, True) as store:
        ranges = writer_ranges(store.document, writers)
        heads = [store.document.shard_heads_for(rename_batch(r, 0))
                 for r in ranges]
        distinct = set()
        for head_set in heads:
            distinct.update(head_set)
        disjoint = all(
            heads[i].isdisjoint(heads[j])
            for i in range(writers) for j in range(i + 1, writers)
        )
        errors = []

        def write(indexes):
            try:
                for stamp in range(batches):
                    store.apply_batch(rename_batch(indexes, stamp))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        threads = [threading.Thread(target=write, args=(r,), daemon=True)
                   for r in ranges]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        group_s = time.perf_counter() - started
        assert errors == [], errors
        group_xml = store.to_xml()
        wholesale = store.document.index.wholesale_invalidations

    assert group_xml == serial_xml, \
        "group-commit run diverged from the serial oracle"
    result = {
        "writers": writers,
        "batches_per_writer": batches,
        "total_batches": total,
        "ops_per_batch": OPS_PER_BATCH,
        "distinct_shards": len(distinct),
        "disjoint": disjoint,
        "serial_s": serial_s,
        "group_s": group_s,
        "speedup": serial_s / group_s,
        "grammar_index_wholesale": wholesale,
    }
    print(f"  commits   : {total} batches x {OPS_PER_BATCH} renames, "
          f"{writers} writers on {len(distinct)} shards "
          f"(disjoint={disjoint}): serial {serial_s:.3f}s vs group "
          f"{group_s:.3f}s -> {result['speedup']:.2f}x")
    return result


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
def run(edges, reads, batches, writers, smoke=False):
    print(f"workload: EXI-Weblog {edges} edges, shard width "
          f"W={SHARD_WIDTH}, {writers} writers")
    report = {
        "workload": {
            "dataset": "EXI-Weblog",
            "edges": edges,
            "shard_width": SHARD_WIDTH,
            "smoke": smoke,
        },
        "latency": run_latency(edges, reads, writers),
    }
    with tempfile.TemporaryDirectory() as tmp:
        report["speedup"] = run_speedup(edges, batches, writers, tmp)
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(JSON_PATH)}")
    return report


def check_schema(report):
    """The machine-readable contract future PRs regress against."""
    for section in ("workload", "latency", "speedup"):
        assert section in report, f"missing section {section!r}"
    for key in ("reads", "quiet_p50_us", "quiet_p99_us",
                "contended_p50_us", "contended_p99_us",
                "quiet", "contended",
                "writer_batches_during_contended",
                "grammar_index_wholesale", "label_index_wholesale"):
        assert key in report["latency"], f"missing latency {key!r}"
    for variant in ("quiet", "contended"):
        for key in ("count", "p50_ms", "p95_ms", "p99_ms"):
            assert key in report["latency"][variant], \
                f"{variant}: missing latency {key!r}"
        assert report["latency"][variant]["count"] > 0
    for key in ("writers", "batches_per_writer", "total_batches",
                "ops_per_batch", "distinct_shards", "disjoint",
                "serial_s", "group_s", "speedup",
                "grammar_index_wholesale"):
        assert key in report["speedup"], f"missing speedup {key!r}"


def check_invariants(report):
    """Asserted at every scale, smoke included."""
    latency = report["latency"]
    speedup = report["speedup"]
    assert latency["grammar_index_wholesale"] == 0, \
        "MVCC read/write traffic reset the grammar index wholesale"
    assert latency["label_index_wholesale"] == 0, \
        "MVCC read/write traffic reset the label index wholesale"
    assert speedup["grammar_index_wholesale"] == 0, \
        "group commits reset the grammar index wholesale"
    assert latency["writer_batches_during_contended"] > 0, \
        "the contended measurement never saw a concurrent batch"
    assert speedup["distinct_shards"] >= 2, (
        f"writers resolved to {speedup['distinct_shards']} shard(s); "
        "the speedup claim needs >= 2 disjoint shards"
    )
    assert speedup["disjoint"], \
        "writer ranges overlapped on a shard; pick wider spacing"


def check_speedup(report, min_ratio=1.3):
    """Full-scale only: the acceptance bar for pipelined group commit."""
    measured = report["speedup"]["speedup"]
    assert measured > min_ratio, (
        f"disjoint-shard group commit reached only {measured:.2f}x "
        f"over the serial path (need > {min_ratio}x)"
    )


def test_mvcc_smoke():
    """Entry point at a CI-friendly scale (explicit-path pytest runs)."""
    report = run(smoke=True, **SMOKE_SCALE)
    check_schema(report)
    check_invariants(report)


if __name__ == "__main__":
    try:
        from benchmarks._common import maybe_profile
    except ImportError:  # run directly: benchmarks/ itself is sys.path[0]
        from _common import maybe_profile

    smoke = "--smoke" in sys.argv
    scale = SMOKE_SCALE if smoke else FULL_SCALE
    with maybe_profile("bench_mvcc"):
        report = run(smoke=smoke, **scale)
    check_schema(report)
    check_invariants(report)
    if not smoke:
        check_speedup(report)
        print("bounds ok: zero wholesale invalidations, >= 2 disjoint "
              "shards, group-commit speedup above 1.3x")
    else:
        print("smoke ok: schema valid, zero wholesale invalidations, "
              "documents identical across commit paths")
