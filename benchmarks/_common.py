"""Shared helpers for the ``bench_*`` scripts.

One concern lives here: opt-in profiling.  Every benchmark's
``__main__`` block wraps its timed region in :func:`maybe_profile`, so

    PYTHONPATH=src python benchmarks/bench_query.py --smoke --profile

additionally drives cProfile over the run and drops the stats next to
the ``BENCH_*.json`` artifacts as ``profile_<bench>.pstats`` -- ready
for ``python -m pstats`` or snakeviz.  Without ``--profile`` the
context manager is free: no profiler is constructed at all, so the
recorded timings stay honest.
"""

import contextlib
import cProfile
import os
import sys

#: Artifacts land next to the BENCH_*.json files, at the repo root.
REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
)


def profile_requested(argv=None):
    """True when the benchmark was invoked with ``--profile``."""
    return "--profile" in (sys.argv if argv is None else argv)


@contextlib.contextmanager
def maybe_profile(bench_name, argv=None):
    """Wrap a benchmark's timed region in cProfile when requested.

    ``bench_name`` is the module-ish name (``"bench_query"``); the stats
    file is ``profile_<bench_name>.pstats`` at the repo root.  A no-op
    unless ``--profile`` is on the command line, so the flag can be
    adopted uniformly without taxing normal runs.
    """
    if not profile_requested(argv):
        yield None
        return
    profiler = cProfile.Profile()
    path = os.path.join(REPO_ROOT, f"profile_{bench_name}.pstats")
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        print(f"profile written to {os.path.normpath(path)} "
              f"(inspect with: python -m pstats {os.path.basename(path)})")
