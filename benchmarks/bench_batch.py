"""Macro-benchmark: batched vs sequential application of clustered updates.

Quantifies the PR-3 tentpole: a burst of operations hitting nearby
preorder indices re-pays, in the sequential loop, for everything the
targets have in common -- every op re-isolates (and, after each
interleaved auto-recompression, *re-inlines*) the shared rule prefix of
the derivation paths, dirties the start rule so the next op recomputes
the index's start tables, and triggers the maintenance policy once per
growth spurt.  ``CompressedXml.apply_batch`` plans the burst as one
program: indices are translated to one coordinate space, the union of
derivation paths is isolated in a single pass (shared prefixes inlined
once), all edits land in one mutation epoch, and the policy settles once.

The workload: an EXI-Weblog-like document, ``BATCHES`` bursts of
``OPS_PER_BATCH`` clustered rename/insert/append/delete operations
(:func:`repro.updates.workload.generate_clustered_element_ops`), with
``auto_recompress_factor=2`` on both variants.  Each burst is applied
op-by-op to one document and as one ``apply_batch`` call to the other;
the documents are equal by construction (the batch engine's equivalence
property), which the benchmark asserts via a full ``to_xml`` comparison.

Results are printed and written to ``BENCH_batch.json`` at the repo root
as the machine-readable perf baseline for future PRs.

Run directly (``PYTHONPATH=src python benchmarks/bench_batch.py``) for
the full scale -- 50k edges, 100 ops per burst -- which asserts the
batched path performs measurably fewer rule inlines than the loop, at
least 2x fewer than isolating its own groups per op (the shared-prefix
amortization), and finishes in materially less wall time (observed:
1.2x / 2.4x / 2.3x); ``--smoke`` (the CI job) runs a tiny scale and
asserts the JSON schema, document equality, and that batching never
inlines more than the loop.  Like all ``bench_*`` modules it is
collected by pytest only via an explicit path.
"""

import json
import os
import random
import sys
import time

from repro.api import CompressedXml
from repro.obs.metrics import summarize_latencies
from repro.updates.batch import (
    BatchAppend,
    BatchDelete,
    BatchInsert,
    BatchRename,
)
from repro.updates.workload import generate_clustered_element_ops

FULL_SCALE = {"edges": 50_000, "ops_per_batch": 100, "batches": 5}
SMOKE_SCALE = {"edges": 2_000, "ops_per_batch": 25, "batches": 2}
AUTO_FACTOR = 2.0
SEED = 42
TAGS = ("ip", "user", "ts", "request", "status", "bytes", "extra")

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_batch.json"
)


def make_doc(edges, seed=SEED):
    from repro.datasets.synthetic import make_corpus

    return CompressedXml.from_document(
        make_corpus("EXI-Weblog", edges=edges, seed=seed),
        auto_recompress_factor=AUTO_FACTOR,
    )


def apply_sequentially(doc, ops, samples):
    """The baseline: the same ops through the single-op API, one by one.
    Per-op wall times land in ``samples`` (seconds)."""
    for op in ops:
        started = time.perf_counter()
        if isinstance(op, BatchRename):
            doc.rename(op.index, op.new_tag)
        elif isinstance(op, BatchInsert):
            doc.insert(op.index, list(op.content))
        elif isinstance(op, BatchAppend):
            doc.append_child(op.parent_index, list(op.content))
        else:
            doc.delete(op.index)
        samples.append(time.perf_counter() - started)


def run(edges, ops_per_batch, batches, smoke=False):
    rng = random.Random(SEED)
    doc_seq = make_doc(edges)
    doc_bat = make_doc(edges)
    print(f"workload: EXI-Weblog {edges} edges, {batches} bursts of "
          f"{ops_per_batch} clustered ops, auto_recompress_factor={AUTO_FACTOR}")

    seq_s = bat_s = 0.0
    batch_stats = []
    seq_samples = []
    bat_samples = []
    for _ in range(batches):
        ops = generate_clustered_element_ops(
            doc_bat.element_count, ops_per_batch, rng=rng, tags=TAGS
        )
        started = time.perf_counter()
        apply_sequentially(doc_seq, ops, seq_samples)
        seq_s += time.perf_counter() - started
        started = time.perf_counter()
        stats = doc_bat.apply_batch(ops)
        elapsed = time.perf_counter() - started
        bat_s += elapsed
        bat_samples.append(elapsed)
        batch_stats.append(stats)

    # Same ops, sequential semantics on both paths: the documents must be
    # byte-identical -- a divergence would mean a planner/executor bug.
    assert doc_bat.element_count == doc_seq.element_count, \
        "variants maintained different documents"
    assert doc_bat.to_xml() == doc_seq.to_xml(), \
        "batched application diverged from the sequential loop"

    total_ops = ops_per_batch * batches
    groups = sum(s.groups for s in batch_stats)
    per_path = sum(s.per_path_inlines for s in batch_stats)
    inline_reduction = (
        doc_seq.rules_inlined_total / doc_bat.rules_inlined_total
        if doc_bat.rules_inlined_total else float("inf")
    )
    wall_speedup = seq_s / bat_s if bat_s else float("inf")

    def variant(doc, total_s):
        return {
            "total_s": round(total_s, 4),
            "ops_per_s": round(total_ops / total_s, 2) if total_s else None,
            "rules_inlined": doc.rules_inlined_total,
            "recompress_runs": doc.recompress_runs,
            "recompress_s": round(doc.recompress_seconds, 4),
            "final_c_edges": doc.compressed_size,
            "element_count": doc.element_count,
            "grammar_wholesale_invalidations":
                doc.index.wholesale_invalidations,
        }

    seq = variant(doc_seq, seq_s)
    bat = variant(doc_bat, bat_s)
    seq["latency"] = summarize_latencies(seq_samples)  # per single op
    bat["latency"] = summarize_latencies(bat_samples)  # per batch call
    bat["batch_groups"] = groups
    bat["per_path_inlines"] = per_path
    bat["inlines_saved"] = per_path - doc_bat.rules_inlined_total

    print(f"  sequential : {seq['total_s']:8.3f}s, "
          f"{seq['rules_inlined']} rule inlines, "
          f"{seq['recompress_runs']} recompressions, "
          f"{seq['final_c_edges']} c-edges")
    print(f"  batched    : {bat['total_s']:8.3f}s, "
          f"{bat['rules_inlined']} rule inlines "
          f"({groups} isolation passes for {total_ops} ops), "
          f"{bat['recompress_runs']} recompressions, "
          f"{bat['final_c_edges']} c-edges")
    print(f"  speedup    : {inline_reduction:.1f}x fewer rule inlines, "
          f"{wall_speedup:.1f}x wall time")

    report = {
        "benchmark": "bench_batch",
        "workload": {
            "corpus": "EXI-Weblog",
            "edges": edges,
            "ops_per_batch": ops_per_batch,
            "batches": batches,
            "auto_recompress_factor": AUTO_FACTOR,
            "seed": SEED,
            "smoke": smoke,
        },
        "sequential": seq,
        "batched": bat,
        "speedup": {
            "rule_inlines": round(inline_reduction, 2),
            "wall_time": round(wall_speedup, 2),
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(JSON_PATH)}")
    return report


def check_schema(report):
    """The machine-readable contract future PRs regress against."""
    for section in ("workload", "sequential", "batched", "speedup"):
        assert section in report, f"missing section {section!r}"
    for key in ("total_s", "ops_per_s", "rules_inlined", "recompress_runs",
                "recompress_s", "final_c_edges", "element_count",
                "grammar_wholesale_invalidations", "latency"):
        assert key in report["sequential"], f"missing {key!r}"
        assert key in report["batched"], f"missing {key!r}"
    for variant in ("sequential", "batched"):
        for key in ("count", "p50_ms", "p95_ms", "p99_ms"):
            assert key in report[variant]["latency"], \
                f"{variant}: missing latency {key!r}"
        assert report[variant]["latency"]["count"] > 0
    for key in ("batch_groups", "per_path_inlines", "inlines_saved"):
        assert key in report["batched"], f"missing {key!r}"
    for key in ("rule_inlines", "wall_time"):
        assert key in report["speedup"], f"missing speedup {key!r}"


def check_amortization(report):
    """Batching must never isolate more than the per-op loop would."""
    for variant in ("sequential", "batched"):
        assert report[variant]["grammar_wholesale_invalidations"] == 0, (
            f"{variant}: the structural index was wholesale-invalidated"
        )
    assert report["batched"]["rules_inlined"] <= \
        report["batched"]["per_path_inlines"]
    assert report["batched"]["rules_inlined"] <= \
        report["sequential"]["rules_inlined"], (
            "batched application inlined more rules than the loop"
        )
    assert report["batched"]["recompress_runs"] <= \
        report["sequential"]["recompress_runs"]


def check_speedup(report, min_inline_reduction=1.15, min_sharing=2.0,
                  min_wall=1.3):
    """The acceptance bounds, calibrated on the observed full-scale run
    (1.2x / 2.4x / 2.3x):

    * measurably fewer rule inlines than the sequential loop.  The loop
      amortizes implicitly between recompressions (an isolated spine
      stays explicit until a recompression re-rolls it), so the loop
      comparison isolates the *recompression-interleave* savings and is
      bounded low;
    * the within-batch sharing ratio -- inlines a per-op isolation of
      the same groups would have performed over inlines actually
      performed -- captures the shared-prefix amortization directly and
      must be at least 2x;
    * the saved isolation, index-recompute, and recompression work must
      show up as end-to-end wall time.
    """
    assert report["speedup"]["rule_inlines"] >= min_inline_reduction, (
        f"batching only cut rule inlines "
        f"{report['speedup']['rule_inlines']:.2f}x "
        f"(required >= {min_inline_reduction}x)"
    )
    sharing = (
        report["batched"]["per_path_inlines"]
        / max(1, report["batched"]["rules_inlined"])
    )
    assert sharing >= min_sharing, (
        f"shared-prefix isolation only amortized {sharing:.2f}x "
        f"(required >= {min_sharing}x)"
    )
    assert report["speedup"]["wall_time"] >= min_wall, (
        f"batching must be faster end-to-end, got "
        f"{report['speedup']['wall_time']:.2f}x"
    )


def test_batch_smoke():
    """Entry point at a CI-friendly scale (explicit-path pytest runs)."""
    report = run(smoke=True, **SMOKE_SCALE)
    check_schema(report)
    check_amortization(report)


if __name__ == "__main__":
    try:
        from benchmarks._common import maybe_profile
    except ImportError:  # run directly: benchmarks/ itself is sys.path[0]
        from _common import maybe_profile

    smoke = "--smoke" in sys.argv
    scale = SMOKE_SCALE if smoke else FULL_SCALE
    with maybe_profile("bench_batch"):
        report = run(smoke=smoke, **scale)
    check_schema(report)
    check_amortization(report)
    if not smoke:
        check_speedup(report)
        print("bounds ok: measurably fewer rule inlines than the loop, "
              ">= 2x shared-prefix amortization within batches, batched "
              "application faster end-to-end, documents identical")
    else:
        print("smoke ok: schema valid, documents identical, batching never "
              "inlined more than the loop")
