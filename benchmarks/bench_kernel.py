"""Macro-benchmark: flat-kernel descents/walks vs the object-graph path.

Quantifies the PR-10 tentpole: the structural descent and matching-walk
inner loops used to chase ``Node`` objects -- per-step attribute loads,
``id()`` hashing into the census tables, tuple allocation per child --
and now run over per-rule packed integer arrays
(:mod:`repro.grammar.kernel`).  Same algorithms, same pruning, same
answers; the win is pure constant-factor: array indexing instead of
pointer chasing.

Two phases, both on EXI-Weblog at 50k edges with the same corpus and
seed for both documents (kernel on vs ``use_kernel=False``):

* **descent** -- ``preorder_of_element`` over a fixed set of *distinct*
  random element indices (distinct so both sides miss the location memo
  and actually descend);
* **walks** -- ``bench_query``-style traffic rounds (renames moving the
  needle label, inserts, appends, deletes, incremental recompressions
  interleaved), each followed by a burst of timed ``select`` calls.

Every round cross-checks the two documents element-for-element, and the
maintenance story is asserted the same way the other benches do: the
kernel must be *maintained* -- per-rule pack evictions through the
observer channel, zero wholesale invalidations -- across the whole
update/recompression interleaving.

Results go to ``BENCH_kernel.json``; the full scale gates >= 3x on the
descent microbench and >= 2x on the select walks.  ``--smoke`` (the CI
job) checks schema, parity, and the maintenance counters only.
"""

import json
import os
import random
import sys
import time

from repro.api import CompressedXml
from repro.obs.metrics import summarize_latencies
from repro.trees.unranked import XmlNode

FULL_SCALE = {
    "edges": 50_000,
    "rounds": 5,
    "updates_per_round": 40,
    "selects_per_round": 20,
    "descents": 4_000,
}
SMOKE_SCALE = {
    "edges": 2_000,
    "rounds": 2,
    "updates_per_round": 10,
    "selects_per_round": 5,
    "descents": 300,
}
AUTO_FACTOR = 2.0
SEED = 42
NEEDLE = "alert"
QUERY = f"//{NEEDLE}"

MIN_DESCENT_SPEEDUP = 3.0
MIN_SELECT_SPEEDUP = 2.0

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_kernel.json"
)


def make_docs(edges, seed=SEED):
    from repro.datasets.synthetic import make_corpus

    corpus = make_corpus("EXI-Weblog", edges=edges, seed=seed)
    fast = CompressedXml.from_document(
        corpus, auto_recompress_factor=AUTO_FACTOR, use_kernel=True
    )
    corpus = make_corpus("EXI-Weblog", edges=edges, seed=seed)
    slow = CompressedXml.from_document(
        corpus, auto_recompress_factor=AUTO_FACTOR, use_kernel=False
    )
    # Smoke documents sit near the automatic small-document fallback;
    # force the kernel active so the smoke run exercises the same code
    # path the full scale measures.
    fast.index.kernel.min_doc_elements = 0
    return fast, slow


def apply_traffic(doc, rng, ops):
    """One burst of mixed updates (bench_query's recipe)."""
    for _ in range(ops):
        count = doc.element_count
        kind = rng.random()
        index = rng.randrange(1, count)
        if kind < 0.35:
            tag = NEEDLE if rng.random() < 0.33 else f"t{rng.randrange(8)}"
            doc.rename(index, tag)
        elif kind < 0.6:
            doc.insert(index, XmlNode(f"t{rng.randrange(8)}"))
        elif kind < 0.8:
            doc.append_child(index, XmlNode(f"t{rng.randrange(8)}"))
        elif count > 2:
            doc.delete(index)


def bench_descents(doc, targets):
    """Time cold descents: distinct targets, memo cleared first."""
    doc.index._locations.clear()
    samples = []
    for target in targets:
        started = time.perf_counter()
        doc.index.resolve_preorder(target)
        samples.append(time.perf_counter() - started)
    return samples


def run(edges, rounds, updates_per_round, selects_per_round, descents,
        smoke=False):
    rng = random.Random(SEED)
    fast, slow = make_docs(edges)
    print(f"workload: EXI-Weblog {edges} edges, kernel vs object path, "
          f"{rounds} rounds of {updates_per_round} updates + selects "
          f"({QUERY!r}), {descents} cold descents, "
          f"auto_recompress_factor={AUTO_FACTOR}")

    for _ in range(8):
        index = rng.randrange(1, fast.element_count)
        fast.rename(index, NEEDLE)
        slow.rename(index, NEEDLE)

    kernel = fast.index.kernel
    fast.count(QUERY)  # warm censuses (and lazily pack) once
    slow.count(QUERY)

    # Phase 1: cold structural descents over the same distinct targets.
    targets = rng.sample(range(1, fast.element_count),
                         min(descents, fast.element_count - 1))
    fast_descent = bench_descents(fast, targets)
    slow_descent = bench_descents(slow, targets)

    # Phase 2: select walks under interleaved update traffic.
    fast_select, slow_select = [], []
    matches = []
    for _ in range(rounds):
        traffic_seed = rng.randrange(2**31)
        apply_traffic(fast, random.Random(traffic_seed), updates_per_round)
        apply_traffic(slow, random.Random(traffic_seed), updates_per_round)

        for _ in range(selects_per_round):
            started = time.perf_counter()
            matches = fast.select(QUERY)
            fast_select.append(time.perf_counter() - started)
        for _ in range(selects_per_round):
            started = time.perf_counter()
            slow_matches = slow.select(QUERY)
            slow_select.append(time.perf_counter() - started)

        # Equal answers or the timing comparison is meaningless.
        assert matches == slow_matches, \
            "kernel select diverged from the object-path select"
        assert list(fast.tags()) == list(slow.tags()), \
            "kernel tags stream diverged from the object path"

    assert fast.to_xml() == slow.to_xml()

    fast_descent_us = 1e6 * sum(fast_descent) / len(fast_descent)
    slow_descent_us = 1e6 * sum(slow_descent) / len(slow_descent)
    fast_select_ms = 1e3 * sum(fast_select) / len(fast_select)
    slow_select_ms = 1e3 * sum(slow_select) / len(slow_select)
    descent_speedup = (slow_descent_us / fast_descent_us
                       if fast_descent_us else float("inf"))
    select_speedup = (slow_select_ms / fast_select_ms
                      if fast_select_ms else float("inf"))

    print(f"  descent: kernel {fast_descent_us:8.2f} us/op, object "
          f"{slow_descent_us:8.2f} us/op -> {descent_speedup:.1f}x "
          f"({len(targets)} cold descents)")
    print(f"  select : kernel {fast_select_ms:8.3f} ms/query, object "
          f"{slow_select_ms:8.3f} ms/query -> {select_speedup:.1f}x "
          f"({len(matches)} matches of {fast.element_count} elements)")
    print(f"  kernel : {kernel.rules_packed} rules packed "
          f"({kernel.bytes_packed} bytes), {kernel.builds} builds, "
          f"{kernel.evictions} evictions, {kernel.hits} hits, "
          f"{kernel.wholesale_invalidations} wholesale invalidations, "
          f"{fast.recompress_runs} recompressions interleaved")

    report = {
        "benchmark": "bench_kernel",
        "workload": {
            "corpus": "EXI-Weblog",
            "edges": edges,
            "rounds": rounds,
            "updates_per_round": updates_per_round,
            "descents": len(targets),
            "auto_recompress_factor": AUTO_FACTOR,
            "seed": SEED,
            "smoke": smoke,
        },
        "descent": {
            "kernel_us": round(fast_descent_us, 3),
            "object_us": round(slow_descent_us, 3),
            "kernel_latency": summarize_latencies(fast_descent),
            "object_latency": summarize_latencies(slow_descent),
        },
        "select": {
            "path": QUERY,
            "matches_final": len(matches),
            "element_count_final": fast.element_count,
            "kernel_ms": round(fast_select_ms, 4),
            "object_ms": round(slow_select_ms, 4),
            "kernel_latency": summarize_latencies(fast_select),
            "object_latency": summarize_latencies(slow_select),
        },
        "maintenance": {
            "rules_packed_final": kernel.rules_packed,
            "bytes_packed_final": kernel.bytes_packed,
            "pack_builds": kernel.builds,
            "pack_evictions": kernel.evictions,
            "pack_hits": kernel.hits,
            "kernel_wholesale_invalidations":
                kernel.wholesale_invalidations,
            "grammar_wholesale_invalidations_kernel_doc":
                fast.index.wholesale_invalidations,
            "grammar_wholesale_invalidations_object_doc":
                slow.index.wholesale_invalidations,
            "recompress_runs": fast.recompress_runs,
            "updates_applied": fast.updates_applied,
        },
        "speedup": {
            "descent": round(descent_speedup, 2),
            "select": round(select_speedup, 2),
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(JSON_PATH)}")
    return report


def check_schema(report):
    """The machine-readable contract future PRs regress against."""
    for section in ("workload", "descent", "select", "maintenance",
                    "speedup"):
        assert section in report, f"missing section {section!r}"
    for key in ("kernel_us", "object_us", "kernel_latency",
                "object_latency"):
        assert key in report["descent"], f"missing descent {key!r}"
    for key in ("kernel_ms", "object_ms", "kernel_latency",
                "object_latency", "matches_final"):
        assert key in report["select"], f"missing select {key!r}"
    for side in ("kernel_latency", "object_latency"):
        for key in ("count", "p50_ms", "p95_ms", "p99_ms"):
            assert key in report["descent"][side], (side, key)
        assert report["descent"][side]["count"] > 0
    for key in ("rules_packed_final", "bytes_packed_final", "pack_builds",
                "pack_evictions", "pack_hits",
                "kernel_wholesale_invalidations", "recompress_runs"):
        assert key in report["maintenance"], f"missing maintenance {key!r}"
    for key in ("descent", "select"):
        assert key in report["speedup"], f"missing speedup {key!r}"


def check_maintenance(report):
    """The kernel must be maintained, never rebuilt wholesale.

    * zero wholesale invalidations on the kernel *and* on both
      structural indexes -- the interleaved incremental recompressions
      must evict packs rule-by-rule, not reset anything;
    * per-rule pack evictions really fired (the kernel saw the traffic);
    * packs were rebuilt lazily afterwards and served hits.
    """
    maintenance = report["maintenance"]
    assert maintenance["kernel_wholesale_invalidations"] == 0, \
        "something wholesale-invalidated the kernel"
    assert maintenance["grammar_wholesale_invalidations_kernel_doc"] == 0
    assert maintenance["grammar_wholesale_invalidations_object_doc"] == 0
    assert maintenance["recompress_runs"] >= 1, \
        "the workload was meant to interleave recompressions"
    assert maintenance["pack_evictions"] > 0, \
        "no pack evictions -- the kernel cannot have observed the updates"
    assert maintenance["rules_packed_final"] > 0
    assert maintenance["pack_hits"] > 0


def check_speedup(report,
                  min_descent=MIN_DESCENT_SPEEDUP,
                  min_select=MIN_SELECT_SPEEDUP):
    """The acceptance bounds: >= 3x descents, >= 2x selects, full scale."""
    assert report["speedup"]["descent"] >= min_descent, (
        f"kernel descents only {report['speedup']['descent']:.1f}x faster "
        f"than the object path (required >= {min_descent}x)"
    )
    assert report["speedup"]["select"] >= min_select, (
        f"kernel selects only {report['speedup']['select']:.1f}x faster "
        f"than the object path (required >= {min_select}x)"
    )


def test_kernel_smoke():
    """Entry point at a CI-friendly scale (explicit-path pytest runs)."""
    report = run(smoke=True, **SMOKE_SCALE)
    check_schema(report)
    check_maintenance(report)


if __name__ == "__main__":
    try:
        from benchmarks._common import maybe_profile
    except ImportError:  # run directly: benchmarks/ itself is sys.path[0]
        from _common import maybe_profile

    smoke = "--smoke" in sys.argv
    scale = SMOKE_SCALE if smoke else FULL_SCALE
    with maybe_profile("bench_kernel"):
        report = run(smoke=smoke, **scale)
    check_schema(report)
    check_maintenance(report)
    if not smoke:
        check_speedup(report)
        print("bounds ok: >= 3x cold descents, >= 2x selects under "
              "traffic, answers identical to the object path, kernel "
              "maintained (zero wholesale invalidations) across "
              "interleaved updates and recompressions")
    else:
        print("smoke ok: schema valid, kernel agrees with the object "
              "path, kernel maintained without wholesale invalidation")
