"""Table III: GrammarRePair static compression over the six corpora."""

from repro.experiments import table3

from benchmarks.conftest import BENCH_SCALES


def test_table3_compression(benchmark):
    result = benchmark.pedantic(
        lambda: table3.run(scales=BENCH_SCALES, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    ratio = {row[0]: row[4] for row in result.rows}
    # Shape of Table III: the three list-like corpora compress orders of
    # magnitude better than the three moderate ones, Treebank is worst.
    for extreme in ("EXI-Weblog", "EXI-Telecomp", "NCBI"):
        assert ratio[extreme] < 1.0
    assert ratio["Treebank"] == max(ratio.values())
    assert ratio["Medline"] < ratio["XMark"] < ratio["Treebank"]

    # The extreme corpora's grammars are tiny constants (paper: 42/107/59).
    c_edges = {row[0]: row[3] for row in result.rows}
    for extreme in ("EXI-Weblog", "EXI-Telecomp", "NCBI"):
        assert c_edges[extreme] < 150

if __name__ == "__main__":
    # Profiling entry point; the shape assertions live in the pytest
    # path above.  Run from the repo root:
    #   PYTHONPATH=src python -m benchmarks.bench_table3 [--profile]
    from benchmarks._common import maybe_profile

    with maybe_profile("bench_table3"):
        result = table3.run(scales=BENCH_SCALES, seed=0)
    print(result.render())
