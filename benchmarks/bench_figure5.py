"""Figure 5: update sequences on the extreme-compression corpora."""

from repro.experiments import figure45

from benchmarks.conftest import BENCH_SCALES


def test_updates_extreme_corpora(benchmark):
    result = benchmark.pedantic(
        lambda: figure45.run(
            corpora=figure45.EXTREME,
            n_updates=200,
            recompress_every=50,
            scales=BENCH_SCALES,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    result.title = "Figure 5: extreme corpora under updates"
    print(result.render())

    worst_naive = max(row[2] for row in result.rows)
    worst_gr = max(row[3] for row in result.rows)
    # Paper: naive updates blow exponentially compressed grammars up by
    # factors in the hundreds, while GrammarRePair stays within ~5x of the
    # from-scratch result (whose absolute size is a few dozen edges here,
    # so a couple of extra rules already register as ~1x).
    assert worst_naive > 2.0
    assert worst_gr <= 10.0
    assert worst_naive > 1.5 * worst_gr

if __name__ == "__main__":
    # Profiling entry point; the shape assertions live in the pytest
    # path above.  Run from the repo root:
    #   PYTHONPATH=src python -m benchmarks.bench_figure5 [--profile]
    from benchmarks._common import maybe_profile

    with maybe_profile("bench_figure5"):
        result = figure45.run(corpora=figure45.EXTREME, n_updates=200,
                          recompress_every=50, scales=BENCH_SCALES, seed=0)
    print(result.render())
